#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the extension
# experiments. Output CSVs land in results/.
set -euo pipefail
cd "$(dirname "$0")"
BINS=(fig1 fig3 fig6 fig7 fig8 fig9 fig_b1 fig_c1
      table1 table2 table3 table_d
      ablation_parallel ablation_overlap baseline_pp serving
      extension_act_quant netsim_check check_claims)
for b in "${BINS[@]}"; do
    echo "=== $b ==="
    cargo run --release -q -p esti-bench --bin "$b"
    echo
done
