//! `esti` — *Efficiently Scaling Transformer Inference* (Pope et al.,
//! MLSYS 2023), reproduced as a Rust workspace.
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`hal`] | `esti-hal` | chip specs (TPU v4 default), dtypes |
//! | [`topology`] | `esti-topology` | 3D torus, axes, chip groups |
//! | [`tensor`] | `esti-tensor` | dense tensors, matmul, softmax, int8, sampling |
//! | [`netsim`] | `esti-netsim` | discrete-event collective simulator |
//! | [`collectives`] | `esti-collectives` | shared-memory collectives + traffic ledger |
//! | [`model`] | `esti-model` | PaLM/MT-NLG configs, reference Transformer |
//! | [`core`] | `esti-core` | partitioning layouts, performance model, planner |
//! | [`runtime`] | `esti-runtime` | partitioned multi-chip execution engine |
//!
//! # Quickstart
//!
//! ```
//! use esti::core::planner::plan_inference;
//! use esti::core::Machine;
//! use esti::hal::DType;
//! use esti::model::ModelConfig;
//!
//! // How should PaLM 540B serve a chatbot on 64 chips?
//! let machine = Machine::tpu_v4_slice(64).unwrap();
//! let model = ModelConfig::palm_540b_padded();
//! let plan = plan_inference(&model, &machine, 64, 2048, 64, DType::Int8);
//! println!(
//!     "prefill {} + decode {} -> {:.2}s end to end",
//!     plan.prefill.describe(),
//!     plan.decode.describe(),
//!     plan.total_latency
//! );
//! ```

pub use esti_collectives as collectives;
pub use esti_core as core;
pub use esti_hal as hal;
pub use esti_model as model;
pub use esti_netsim as netsim;
pub use esti_runtime as runtime;
pub use esti_tensor as tensor;
pub use esti_topology as topology;
