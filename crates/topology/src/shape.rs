//! Torus slice shapes and chip-group enumeration.

use std::fmt;

use crate::{Axis, AxisSet, ChipCoord};

/// The shape of a 3D-torus slice, `X × Y × Z` chips.
///
/// The catalog in [`TorusShape::for_chip_count`] mirrors realistic TPU v4
/// slice shapes (Section 4 benchmarks use 8 to 256 chips). Axis sizes of 1
/// are allowed and simply mean the slice does not extend along that axis.
///
/// # Examples
///
/// ```
/// use esti_topology::{Axis, AxisSet, TorusShape};
///
/// let t = TorusShape::new(4, 4, 4);
/// assert_eq!(t.chip_count(), 64);
/// assert_eq!(t.size(Axis::X), 4);
/// let chips: Vec<_> = t.chips().collect();
/// assert_eq!(chips.len(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusShape {
    x: usize,
    y: usize,
    z: usize,
}

impl TorusShape {
    /// Creates a torus shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be positive");
        TorusShape { x, y, z }
    }

    /// The canonical slice shape for a chip count, if one exists in the
    /// catalog. Shapes follow TPU v4 slice construction: near-cubic, with
    /// every axis a power of two and at least 4 where possible (the minimum
    /// torus-axis size with wraparound links; see Section D "minimum size of
    /// a TPU v4 torus axis").
    ///
    /// Returns `None` for chip counts without a catalog entry.
    #[must_use]
    pub fn for_chip_count(n: usize) -> Option<Self> {
        let (x, y, z) = match n {
            1 => (1, 1, 1),
            2 => (1, 1, 2),
            4 => (1, 1, 4),
            8 => (1, 2, 4),
            16 => (1, 4, 4),
            32 => (2, 4, 4),
            64 => (4, 4, 4),
            128 => (4, 4, 8),
            256 => (4, 8, 8),
            512 => (8, 8, 8),
            1024 => (8, 8, 16),
            _ => return None,
        };
        Some(TorusShape::new(x, y, z))
    }

    /// Chip counts present in the slice catalog, ascending.
    #[must_use]
    pub fn catalog_chip_counts() -> &'static [usize] {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    }

    /// Total number of chips in the slice.
    #[must_use]
    pub const fn chip_count(self) -> usize {
        self.x * self.y * self.z
    }

    /// Size of the slice along one axis.
    #[must_use]
    pub const fn size(self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Product of the axis sizes in `axes` — the number of chips a
    /// collective over those axes spans (its "group size").
    #[must_use]
    pub fn group_size(self, axes: AxisSet) -> usize {
        axes.iter().map(|a| self.size(a)).product()
    }

    /// Number of disjoint groups a collective over `axes` partitions the
    /// slice into. `group_size(axes) * group_count(axes) == chip_count()`.
    #[must_use]
    pub fn group_count(self, axes: AxisSet) -> usize {
        self.chip_count() / self.group_size(axes)
    }

    /// Whether `coord` lies inside the slice.
    #[must_use]
    pub const fn contains(self, coord: ChipCoord) -> bool {
        coord.x < self.x && coord.y < self.y && coord.z < self.z
    }

    /// Linearizes a coordinate to a chip id in `0..chip_count()`, row-major
    /// with `x` slowest and `z` fastest.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the slice.
    #[must_use]
    pub fn chip_id(self, coord: ChipCoord) -> usize {
        assert!(self.contains(coord), "coordinate {coord} outside torus {self}");
        (coord.x * self.y + coord.y) * self.z + coord.z
    }

    /// Inverse of [`TorusShape::chip_id`].
    ///
    /// # Panics
    ///
    /// Panics if `id >= chip_count()`.
    #[must_use]
    pub fn coord_of(self, id: usize) -> ChipCoord {
        assert!(id < self.chip_count(), "chip id {id} out of range");
        let z = id % self.z;
        let y = (id / self.z) % self.y;
        let x = id / (self.z * self.y);
        ChipCoord::new(x, y, z)
    }

    /// Iterates all chip coordinates in chip-id order.
    pub fn chips(self) -> impl Iterator<Item = ChipCoord> {
        (0..self.chip_count()).map(move |id| self.coord_of(id))
    }

    /// The ring successor of `coord` along `axis` (with wraparound).
    #[must_use]
    pub fn ring_next(self, coord: ChipCoord, axis: Axis) -> ChipCoord {
        let n = self.size(axis);
        coord.with_axis(axis, (coord.along(axis) + 1) % n)
    }

    /// The ring predecessor of `coord` along `axis` (with wraparound).
    #[must_use]
    pub fn ring_prev(self, coord: ChipCoord, axis: Axis) -> ChipCoord {
        let n = self.size(axis);
        coord.with_axis(axis, (coord.along(axis) + n - 1) % n)
    }

    /// The chips forming the group of `coord` under a collective over
    /// `axes`: all chips agreeing with `coord` on every axis *not* in
    /// `axes`. The result is ordered so that members trace a ring
    /// (lexicographic order over the member axes).
    #[must_use]
    pub fn group_of(self, coord: ChipCoord, axes: AxisSet) -> Vec<ChipCoord> {
        let mut members = Vec::with_capacity(self.group_size(axes));
        // Iterate member-axis positions lexicographically.
        let ax: Vec<Axis> = axes.iter().collect();
        let sizes: Vec<usize> = ax.iter().map(|&a| self.size(a)).collect();
        let total: usize = sizes.iter().product::<usize>().max(1);
        for idx in 0..total {
            let mut c = coord;
            let mut rem = idx;
            for (k, &a) in ax.iter().enumerate().rev() {
                c = c.with_axis(a, rem % sizes[k]);
                rem /= sizes[k];
            }
            members.push(c);
        }
        members
    }

    /// Enumerates every group (as ordered member lists) induced by a
    /// collective over `axes`. Groups are disjoint and cover the slice.
    #[must_use]
    pub fn groups(self, axes: AxisSet) -> Vec<Vec<ChipCoord>> {
        let mut seen = vec![false; self.chip_count()];
        let mut out = Vec::with_capacity(self.group_count(axes));
        for c in self.chips() {
            if seen[self.chip_id(c)] {
                continue;
            }
            let group = self.group_of(c, axes);
            for &m in &group {
                seen[self.chip_id(m)] = true;
            }
            out.push(group);
        }
        out
    }

    /// Splits the slice into a differently factored *logical* shape with the
    /// same chip count, e.g. viewing a `4×4×4` slice as `8×8×1` for a layout
    /// that wants `X = 8`. Returns `None` if `n_x * n_y * n_z` does not
    /// equal the chip count.
    #[must_use]
    pub fn refactor(self, n_x: usize, n_y: usize, n_z: usize) -> Option<TorusShape> {
        if n_x * n_y * n_z == self.chip_count() && n_x > 0 && n_y > 0 && n_z > 0 {
            Some(TorusShape::new(n_x, n_y, n_z))
        } else {
            None
        }
    }
}

impl fmt::Display for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn catalog_chip_counts_match() {
        for &n in TorusShape::catalog_chip_counts() {
            let t = TorusShape::for_chip_count(n).unwrap();
            assert_eq!(t.chip_count(), n, "catalog shape for {n} chips");
        }
        assert!(TorusShape::for_chip_count(3).is_none());
        assert!(TorusShape::for_chip_count(96).is_none());
    }

    #[test]
    fn sixty_four_chips_is_cubic() {
        let t = TorusShape::for_chip_count(64).unwrap();
        assert_eq!((t.size(Axis::X), t.size(Axis::Y), t.size(Axis::Z)), (4, 4, 4));
    }

    #[test]
    fn chip_id_roundtrip() {
        let t = TorusShape::new(3, 4, 5);
        for id in 0..t.chip_count() {
            assert_eq!(t.chip_id(t.coord_of(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "outside torus")]
    fn chip_id_rejects_out_of_bounds() {
        let _ = TorusShape::new(2, 2, 2).chip_id(ChipCoord::new(2, 0, 0));
    }

    #[test]
    fn ring_next_wraps() {
        let t = TorusShape::new(4, 4, 4);
        let c = ChipCoord::new(3, 1, 1);
        assert_eq!(t.ring_next(c, Axis::X), ChipCoord::new(0, 1, 1));
        assert_eq!(t.ring_prev(ChipCoord::new(0, 1, 1), Axis::X), c);
    }

    #[test]
    fn group_sizes_multiply() {
        let t = TorusShape::new(2, 4, 8);
        let xy = AxisSet::of(&[Axis::X, Axis::Y]);
        assert_eq!(t.group_size(xy), 8);
        assert_eq!(t.group_count(xy), 8);
        assert_eq!(t.group_size(AxisSet::empty()), 1);
        assert_eq!(t.group_count(AxisSet::empty()), t.chip_count());
    }

    #[test]
    fn groups_partition_the_slice() {
        let t = TorusShape::new(2, 3, 4);
        for axes in [
            AxisSet::empty(),
            AxisSet::single(Axis::X),
            AxisSet::of(&[Axis::Y, Axis::Z]),
            AxisSet::all(),
        ] {
            let groups = t.groups(axes);
            assert_eq!(groups.len(), t.group_count(axes));
            let mut seen = vec![false; t.chip_count()];
            for g in &groups {
                assert_eq!(g.len(), t.group_size(axes));
                for &c in g {
                    let id = t.chip_id(c);
                    assert!(!seen[id], "chip {c} in two groups");
                    seen[id] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn group_of_holds_other_axes_fixed() {
        let t = TorusShape::new(4, 4, 4);
        let g = t.group_of(ChipCoord::new(1, 2, 3), AxisSet::single(Axis::Y));
        assert_eq!(g.len(), 4);
        for c in g {
            assert_eq!(c.x, 1);
            assert_eq!(c.z, 3);
        }
    }

    #[test]
    fn refactor_preserves_count() {
        let t = TorusShape::new(4, 4, 4);
        assert_eq!(t.refactor(8, 8, 1), Some(TorusShape::new(8, 8, 1)));
        assert_eq!(t.refactor(5, 5, 5), None);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_ids(x in 1usize..5, y in 1usize..5, z in 1usize..5) {
            let t = TorusShape::new(x, y, z);
            for c in t.chips() {
                prop_assert_eq!(t.coord_of(t.chip_id(c)), c);
            }
        }

        #[test]
        fn prop_ring_cycles(x in 1usize..6, y in 1usize..6, z in 1usize..6, ai in 0usize..3) {
            let t = TorusShape::new(x, y, z);
            let axis = Axis::ALL[ai];
            let start = ChipCoord::new(0, 0, 0);
            let mut c = start;
            for _ in 0..t.size(axis) {
                c = t.ring_next(c, axis);
            }
            prop_assert_eq!(c, start);
        }
    }
}
