//! 3D torus topology for the `esti` inference-scaling simulator.
//!
//! TPU v4 slices are 3D tori named `X × Y × Z` (Section 3.1 of *Efficiently
//! Scaling Transformer Inference*). Partitioning layouts in the paper are
//! expressed by assigning logical tensor dimensions to subsets of the three
//! physical axes — e.g. weights laid out `E_x F_yz` are split `X` ways along
//! `d_model` and `Y·Z` ways along `d_ff`.
//!
//! This crate provides:
//!
//! * [`Axis`] and [`AxisSet`] — the physical axes `x`, `y`, `z` and subsets
//!   thereof (`xy`, `yz`, `xyz`, …) used in sharding subscripts;
//! * [`TorusShape`] — a slice shape with a catalog of realistic TPU v4
//!   slices ([`TorusShape::for_chip_count`]);
//! * [`ChipCoord`] and chip-id linearization, ring neighbours along an axis,
//!   and enumeration of the chip *groups* that a collective over an
//!   [`AxisSet`] runs within.
//!
//! # Examples
//!
//! ```
//! use esti_topology::{Axis, AxisSet, TorusShape};
//!
//! let torus = TorusShape::for_chip_count(64).unwrap(); // 4 x 4 x 4
//! assert_eq!(torus.chip_count(), 64);
//! let yz = AxisSet::of(&[Axis::Y, Axis::Z]);
//! assert_eq!(torus.group_size(yz), 16);
//! assert_eq!(torus.group_count(yz), 4);
//! ```

pub mod axis;
pub mod coord;
pub mod shape;

pub use axis::{Axis, AxisSet};
pub use coord::ChipCoord;
pub use shape::TorusShape;
