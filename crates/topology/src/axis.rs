//! Physical torus axes and axis subsets.

use std::fmt;

/// One physical axis of the 3D torus.
///
/// The paper's sharding subscripts (`E_x F_yz`, all-gather(`xy`), …) name
/// these axes directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// The torus `x` axis.
    X,
    /// The torus `y` axis.
    Y,
    /// The torus `z` axis.
    Z,
}

impl Axis {
    /// All three axes in canonical `x, y, z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Index of the axis: `x = 0`, `y = 1`, `z = 2`.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Lowercase name used in sharding notation.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A subset of the three torus axes, e.g. the `yz` in `F_yz`.
///
/// Implemented as a tiny bit set; the empty set is valid and denotes a
/// replicated (unsharded) dimension.
///
/// # Examples
///
/// ```
/// use esti_topology::{Axis, AxisSet};
///
/// let yz = AxisSet::of(&[Axis::Y, Axis::Z]);
/// assert!(yz.contains(Axis::Y));
/// assert!(!yz.contains(Axis::X));
/// assert_eq!(yz.len(), 2);
/// assert_eq!(yz.to_string(), "yz");
/// assert_eq!(AxisSet::all().without(yz), AxisSet::of(&[Axis::X]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AxisSet(u8);

impl AxisSet {
    /// The empty set (tensor dimension replicated over all chips).
    #[must_use]
    pub const fn empty() -> Self {
        AxisSet(0)
    }

    /// The full set `{x, y, z}`.
    #[must_use]
    pub const fn all() -> Self {
        AxisSet(0b111)
    }

    /// A set containing exactly one axis.
    #[must_use]
    pub const fn single(axis: Axis) -> Self {
        AxisSet(1 << axis.index() as u8)
    }

    /// Builds a set from a slice of axes. Duplicates are allowed and ignored.
    #[must_use]
    pub fn of(axes: &[Axis]) -> Self {
        let mut set = AxisSet::empty();
        for &a in axes {
            set = set.with(a);
        }
        set
    }

    /// Returns this set with `axis` inserted.
    #[must_use]
    pub const fn with(self, axis: Axis) -> Self {
        AxisSet(self.0 | (1 << axis.index() as u8))
    }

    /// Returns this set minus every axis in `other`.
    #[must_use]
    pub const fn without(self, other: AxisSet) -> Self {
        AxisSet(self.0 & !other.0)
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: AxisSet) -> Self {
        AxisSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersection(self, other: AxisSet) -> Self {
        AxisSet(self.0 & other.0)
    }

    /// Whether `axis` is a member.
    #[must_use]
    pub const fn contains(self, axis: Axis) -> bool {
        self.0 & (1 << axis.index() as u8) != 0
    }

    /// Whether the two sets share no axis.
    #[must_use]
    pub const fn is_disjoint(self, other: AxisSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether every axis of `self` is also in `other`.
    #[must_use]
    pub const fn is_subset_of(self, other: AxisSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of axes in the set (0 to 3).
    #[must_use]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the member axes in canonical `x, y, z` order.
    pub fn iter(self) -> impl Iterator<Item = Axis> {
        Axis::ALL.into_iter().filter(move |a| self.contains(*a))
    }
}

impl std::str::FromStr for Axis {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "x" => Ok(Axis::X),
            "y" => Ok(Axis::Y),
            "z" => Ok(Axis::Z),
            other => Err(format!("unknown torus axis {other:?} (expected x, y or z)")),
        }
    }
}

impl std::str::FromStr for AxisSet {
    /// Parses the subscript notation: `"xyz"`, `"yz"`, `"x"`, or `"-"` for
    /// the empty set — the inverse of [`AxisSet`]'s `Display`.
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "-" {
            return Ok(AxisSet::empty());
        }
        if s.is_empty() {
            return Err("empty axis set (write \"-\" for the empty set)".to_string());
        }
        let mut set = AxisSet::empty();
        for c in s.chars() {
            let axis: Axis = c.to_string().parse()?;
            if set.contains(axis) {
                return Err(format!("repeated axis {c} in axis set {s:?}"));
            }
            set = set.with(axis);
        }
        Ok(set)
    }
}

impl fmt::Display for AxisSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        for a in self.iter() {
            f.write_str(a.name())?;
        }
        Ok(())
    }
}

impl From<Axis> for AxisSet {
    fn from(axis: Axis) -> Self {
        AxisSet::single(axis)
    }
}

impl FromIterator<Axis> for AxisSet {
    fn from_iter<I: IntoIterator<Item = Axis>>(iter: I) -> Self {
        let mut set = AxisSet::empty();
        for a in iter {
            set = set.with(a);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_all() {
        assert_eq!(AxisSet::empty().len(), 0);
        assert!(AxisSet::empty().is_empty());
        assert_eq!(AxisSet::all().len(), 3);
        for a in Axis::ALL {
            assert!(AxisSet::all().contains(a));
            assert!(!AxisSet::empty().contains(a));
        }
    }

    #[test]
    fn of_ignores_duplicates() {
        let s = AxisSet::of(&[Axis::X, Axis::X, Axis::Y]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn without_removes_members() {
        let s = AxisSet::all().without(AxisSet::single(Axis::Y));
        assert_eq!(s, AxisSet::of(&[Axis::X, Axis::Z]));
    }

    #[test]
    fn display_notation() {
        assert_eq!(AxisSet::empty().to_string(), "-");
        assert_eq!(AxisSet::all().to_string(), "xyz");
        assert_eq!(AxisSet::of(&[Axis::Z, Axis::X]).to_string(), "xz");
    }

    #[test]
    fn from_str_parses_subscript_notation() {
        assert_eq!("xyz".parse::<AxisSet>().unwrap(), AxisSet::all());
        assert_eq!("yz".parse::<AxisSet>().unwrap(), AxisSet::of(&[Axis::Y, Axis::Z]));
        assert_eq!("-".parse::<AxisSet>().unwrap(), AxisSet::empty());
        // Order does not matter; the set canonicalizes.
        assert_eq!("zx".parse::<AxisSet>().unwrap(), AxisSet::of(&[Axis::X, Axis::Z]));
    }

    #[test]
    fn from_str_rejects_bad_input() {
        assert!("".parse::<AxisSet>().unwrap_err().contains("empty"));
        assert!("xx".parse::<AxisSet>().unwrap_err().contains("repeated axis"));
        assert!("xw".parse::<AxisSet>().unwrap_err().contains("unknown torus axis"));
    }

    #[test]
    fn from_str_round_trips_display() {
        for bits in 0..8u8 {
            let set: AxisSet = Axis::ALL
                .into_iter()
                .filter(|a| bits & (1 << a.index()) != 0)
                .collect();
            assert_eq!(set.to_string().parse::<AxisSet>().unwrap(), set);
        }
    }

    #[test]
    fn iter_is_canonical_order() {
        let s = AxisSet::of(&[Axis::Z, Axis::X]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![Axis::X, Axis::Z]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: AxisSet = [Axis::Y, Axis::Z].into_iter().collect();
        assert_eq!(s, AxisSet::of(&[Axis::Y, Axis::Z]));
    }

    fn arb_axis_set() -> impl Strategy<Value = AxisSet> {
        (0u8..8).prop_map(AxisSet)
    }

    proptest! {
        #[test]
        fn union_intersection_laws(a in arb_axis_set(), b in arb_axis_set()) {
            prop_assert_eq!(a.union(b), b.union(a));
            prop_assert_eq!(a.intersection(b), b.intersection(a));
            prop_assert_eq!(a.union(a), a);
            prop_assert_eq!(a.intersection(a), a);
            prop_assert_eq!(a.union(b).intersection(a), a);
        }

        #[test]
        fn without_makes_disjoint(a in arb_axis_set(), b in arb_axis_set()) {
            prop_assert!(a.without(b).is_disjoint(b));
        }

        #[test]
        fn len_counts_members(a in arb_axis_set()) {
            prop_assert_eq!(a.len() as usize, a.iter().count());
        }
    }
}
