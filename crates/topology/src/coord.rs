//! Chip coordinates on the torus.

use std::fmt;

use crate::Axis;

/// The coordinate of one chip in an `X × Y × Z` torus.
///
/// # Examples
///
/// ```
/// use esti_topology::{Axis, ChipCoord};
///
/// let c = ChipCoord::new(1, 2, 3);
/// assert_eq!(c.along(Axis::Y), 2);
/// assert_eq!(c.with_axis(Axis::Y, 0), ChipCoord::new(1, 0, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ChipCoord {
    /// Position along the torus `x` axis.
    pub x: usize,
    /// Position along the torus `y` axis.
    pub y: usize,
    /// Position along the torus `z` axis.
    pub z: usize,
}

impl ChipCoord {
    /// Creates a coordinate. Bounds are checked by [`crate::TorusShape`]
    /// methods, not here.
    #[must_use]
    pub const fn new(x: usize, y: usize, z: usize) -> Self {
        ChipCoord { x, y, z }
    }

    /// The component along `axis`.
    #[must_use]
    pub const fn along(self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Returns a copy with the component along `axis` replaced by `value`.
    #[must_use]
    pub const fn with_axis(self, axis: Axis, value: usize) -> Self {
        let mut c = self;
        match axis {
            Axis::X => c.x = value,
            Axis::Y => c.y = value,
            Axis::Z => c.z = value,
        }
        c
    }
}

impl fmt::Display for ChipCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

impl From<(usize, usize, usize)> for ChipCoord {
    fn from((x, y, z): (usize, usize, usize)) -> Self {
        ChipCoord::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn along_and_with_axis_roundtrip() {
        let c = ChipCoord::new(4, 5, 6);
        for a in Axis::ALL {
            assert_eq!(c.with_axis(a, c.along(a)), c);
            assert_eq!(c.with_axis(a, 9).along(a), 9);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(ChipCoord::new(0, 1, 2).to_string(), "(0,1,2)");
    }

    #[test]
    fn tuple_conversion() {
        assert_eq!(ChipCoord::from((1, 2, 3)), ChipCoord::new(1, 2, 3));
    }
}
