//! Kernel-core conformance: the AVX2 SIMD tier and the banded worker-pool
//! execution must be **bit-identical** to the serial scalar oracle for
//! every GEMM entry point, at every shape — including shapes that exercise
//! the m/n/k remainder paths (NR = 16 column lanes, MR = 4 row tiles).
//!
//! Bit-identity is the contract that keeps `set_matmul_kernel` a pure
//! performance knob: every element is one serial mul-then-add chain in
//! ascending `k`, regardless of SIMD width, tile shape, or worker count.

use std::sync::{Arc, Mutex, OnceLock};

use esti_tensor::ops::{self, MatmulKernel};
use esti_tensor::pool::{active_workers, with_worker_pool, ChipPool};
use esti_tensor::{QuantizedMatrix, Tensor};
use proptest::prelude::*;

/// The kernel knob is process-global; every test that toggles it holds
/// this lock so parallel test threads cannot observe each other's state.
fn knob_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with the kernel knob pinned to `kernel`, restoring the SIMD
/// default afterwards (on panic too, so a failing assertion cannot leak a
/// scalar knob into sibling tests).
fn with_kernel<R>(kernel: MatmulKernel, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            ops::set_matmul_kernel(MatmulKernel::Simd);
        }
    }
    let _restore = Restore;
    ops::set_matmul_kernel(kernel);
    f()
}

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let x = (i as u64).wrapping_mul(6_364_136_223_846_793_005).wrapping_add(seed);
            ((x >> 33) % 2003) as f32 / 251.0 - 4.0
        })
        .collect();
    Tensor::from_vec(vec![rows, cols], data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul` under the SIMD tier equals the naive oracle bitwise at
    /// every shape, including m % MR, n % NR and odd-k remainders.
    #[test]
    fn simd_matmul_equals_naive_oracle_bitwise(
        // Spans below, at, and beyond one SIMD column block (NR = 16) and
        // one row tile (MR = 4), so every remainder path is exercised.
        m in 1usize..14,
        k in 1usize..38,
        n in 1usize..42,
        seed in 0u64..1000,
    ) {
        let _guard = knob_lock().lock().unwrap();
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 0xABCD);
        let oracle = ops::matmul_naive(&a, &b);
        let got = with_kernel(MatmulKernel::Simd, || ops::matmul(&a, &b));
        prop_assert_eq!(got.data(), oracle.data());
    }

    /// The chunked f32 entry points (`matmul_cols` column windows,
    /// `matmul_acc_rows` contraction chunks) stay bitwise equal to the
    /// monolithic naive product under the SIMD tier.
    #[test]
    fn simd_chunked_f32_entry_points_match_monolithic(
        m in 1usize..14,
        k in 2usize..38,
        n in 2usize..42,
        split in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let _guard = knob_lock().lock().unwrap();
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 0x5EED);
        let oracle = ops::matmul_naive(&a, &b);
        with_kernel(MatmulKernel::Simd, || {
            // Column chunking: two windows split at an arbitrary column.
            let c = 1 + ((split * (n - 1) as f64) as usize).min(n - 1);
            let lo = ops::matmul_cols(&a, &b, 0, c);
            let hi = ops::matmul_cols(&a, &b, c, n - c);
            for r in 0..m {
                prop_assert_eq!(&lo.data()[r * c..(r + 1) * c], &oracle.data()[r * n..r * n + c]);
                prop_assert_eq!(
                    &hi.data()[r * (n - c)..(r + 1) * (n - c)],
                    &oracle.data()[r * n + c..(r + 1) * n]
                );
            }
            // Contraction chunking: ascending row chunks of b accumulate
            // to the monolithic result bit-for-bit.
            let kc = 1 + ((split * (k - 1) as f64) as usize).min(k - 1);
            let mut acc = Tensor::zeros(vec![m, n]);
            let a_lo = tensor_cols(&a, 0, kc);
            let a_hi = tensor_cols(&a, kc, k - kc);
            ops::matmul_acc_rows(&a_lo, &b, 0, &mut acc);
            ops::matmul_acc_rows(&a_hi, &b, kc, &mut acc);
            prop_assert_eq!(acc.data(), oracle.data());
        });
    }

    /// Int8 entry points under the SIMD tier equal the scalar oracle
    /// (knob = `Naive`) bitwise: monolithic, column-window, into-cols, and
    /// the unscaled row-accumulate + deferred `apply_scales` path.
    #[test]
    fn simd_int8_entry_points_equal_scalar_oracle_bitwise(
        m in 1usize..14,
        k in 2usize..38,
        n in 2usize..42,
        split in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let _guard = knob_lock().lock().unwrap();
        let x = tensor(m, k, seed);
        let q = QuantizedMatrix::quantize(&tensor(k, n, seed ^ 0xFACE));
        let oracle = with_kernel(MatmulKernel::Naive, || q.matmul(&x));
        let c = 1 + ((split * (n - 1) as f64) as usize).min(n - 1);
        with_kernel(MatmulKernel::Simd, || {
            prop_assert_eq!(q.matmul(&x).data(), oracle.data());
            // Column window.
            let win = q.matmul_cols(&x, c, n - c);
            for r in 0..m {
                prop_assert_eq!(
                    &win.data()[r * (n - c)..(r + 1) * (n - c)],
                    &oracle.data()[r * n + c..(r + 1) * n]
                );
            }
            // Scale-on-arrival into a wider zeroed target.
            let mut wide = Tensor::zeros(vec![m, n + 5]);
            q.matmul_into_cols(&x, &mut wide, 3);
            for r in 0..m {
                prop_assert_eq!(
                    &wide.data()[r * (n + 5) + 3..r * (n + 5) + 3 + n],
                    &oracle.data()[r * n..(r + 1) * n]
                );
            }
            // Unscaled contraction chunks + one deferred scale pass.
            let kc = 1 + ((split * (k - 1) as f64) as usize).min(k - 1);
            let mut acc = Tensor::zeros(vec![m, n]);
            q.matmul_acc_rows(&tensor_cols(&x, 0, kc), 0, &mut acc);
            q.matmul_acc_rows(&tensor_cols(&x, kc, k - kc), kc, &mut acc);
            q.apply_scales(&mut acc);
            prop_assert_eq!(acc.data(), oracle.data());
        });
    }

    /// Worker-pool banding is invisible in the bits: the same product at
    /// 1 (no pool), 2, and 5 workers is bitwise identical, f32 and int8.
    /// Shapes are sized past the banding cutoff so the pool really splits.
    #[test]
    fn worker_count_never_changes_the_bits(
        workers in prop::sample::select(vec![2usize, 3, 5]),
        seed in 0u64..1000,
    ) {
        let _guard = knob_lock().lock().unwrap();
        let (m, k, n) = (37, 64, 96); // m·k·n ≫ the banding cutoff
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 0xBEEF);
        let q = QuantizedMatrix::quantize(&b);
        let serial = (ops::matmul(&a, &b), q.matmul(&a));
        let pooled = with_worker_pool(Some(Arc::new(ChipPool::new(workers))), || {
            assert_eq!(active_workers(), workers);
            (ops::matmul(&a, &b), q.matmul(&a))
        });
        prop_assert_eq!(serial.0.data(), pooled.0.data());
        prop_assert_eq!(serial.1.data(), pooled.1.data());
    }
}

/// Column slice of a rank-2 tensor (test-local helper; the library slices
/// via strides internally).
fn tensor_cols(t: &Tensor, c0: usize, cn: usize) -> Tensor {
    let (m, n) = (t.dim(0), t.dim(1));
    let mut data = Vec::with_capacity(m * cn);
    for r in 0..m {
        data.extend_from_slice(&t.data()[r * n + c0..r * n + c0 + cn]);
    }
    Tensor::from_vec(vec![m, cn], data)
}

/// Disabling SIMD at runtime (the `ESTI_DISABLE_SIMD` escape hatch's
/// programmatic twin) must drop to the blocked scalar kernel and still
/// produce bit-identical results.
#[test]
fn forced_scalar_fallback_is_bit_identical() {
    let _guard = knob_lock().lock().unwrap();
    let a = tensor(11, 29, 7);
    let b = tensor(29, 33, 13);
    let q = QuantizedMatrix::quantize(&b);
    let initial = ops::simd_active();
    let with_simd = (ops::matmul(&a, &b), q.matmul(&a));
    ops::set_simd_enabled(false);
    assert!(!ops::simd_active(), "fallback must disable the SIMD tier");
    let fallback = (ops::matmul(&a, &b), q.matmul(&a));
    ops::set_simd_enabled(initial);
    assert_eq!(with_simd.0.data(), fallback.0.data());
    assert_eq!(with_simd.1.data(), fallback.1.data());
}
