// Release-mode timing sanity check for the blocked kernel (ignored by default;
// the tracked numbers live in esti-bench / BENCH_runtime.json).
use esti_tensor::{ops::{matmul, matmul_naive}, Tensor};
use std::time::Instant;

fn fill(n: usize, scale: f32) -> Tensor {
    let data: Vec<f32> = (0..n * n).map(|i| scale * ((i % 17) as f32 - 8.0)).collect();
    Tensor::from_vec(vec![n, n], data)
}

#[test]
#[ignore]
fn speed_check() {
    let n = 256;
    let a = fill(n, 0.1);
    let b = fill(n, 0.05);
    let _ = matmul(&a, &b);
    let _ = matmul_naive(&a, &b);
    let t0 = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(matmul(std::hint::black_box(&a), std::hint::black_box(&b)));
    }
    let blocked = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(matmul_naive(std::hint::black_box(&a), std::hint::black_box(&b)));
    }
    let naive = t1.elapsed();
    eprintln!(
        "blocked {blocked:?} naive {naive:?} speedup {:.2}",
        naive.as_secs_f64() / blocked.as_secs_f64()
    );
}
