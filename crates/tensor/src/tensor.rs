//! The dense row-major `f32` tensor.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use rand::distributions::Distribution;
use rand::Rng;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are dynamic (`Vec<usize>`); rank 0 through 4 are exercised in
/// practice. The last dimension is contiguous.
///
/// # Examples
///
/// ```
/// use esti_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.shape(), &[2, 2]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    #[must_use]
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// An all-zeros tensor.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Tensor { shape, data: vec![0.0; numel] }
    }

    /// An all-ones tensor.
    #[must_use]
    pub fn ones(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Tensor { shape, data: vec![1.0; numel] }
    }

    /// A tensor filled with a constant.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let numel = shape.iter().product();
        Tensor { shape, data: vec![value; numel] }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor of i.i.d. normal samples with the given standard deviation.
    #[must_use]
    pub fn randn<R: Rng>(rng: &mut R, shape: Vec<usize>, std: f32) -> Self {
        let normal = rand::distributions::Standard;
        let numel: usize = shape.iter().product();
        // Box-Muller on uniform samples keeps us independent of rand_distr.
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = normal.sample(rng);
            let u2: f32 = normal.sample(rng);
            let r = (-2.0 * (u1.max(1e-10)).ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[must_use]
    pub fn dim(&self, dim: usize) -> usize {
        self.shape[dim]
    }

    /// Immutable view of the backing data, row-major.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of range.
    #[must_use]
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &sz)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < sz, "index {ix} out of bounds for dim {i} of size {sz}");
            off = off * sz + ix;
        }
        off
    }

    /// Element at a multi-index.
    #[must_use]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    #[must_use]
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Consuming reshape that avoids copying the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    #[must_use]
    pub fn into_reshape(self, shape: Vec<usize>) -> Tensor {
        Tensor::from_vec(shape, self.data)
    }

    /// Extracts the contiguous sub-tensor `[start, start+len)` along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dimension size.
    #[must_use]
    pub fn slice(&self, dim: usize, start: usize, len: usize) -> Tensor {
        assert!(dim < self.rank(), "slice dim out of range");
        assert!(start + len <= self.shape[dim], "slice range out of bounds");
        let outer: usize = self.shape[..dim].iter().product();
        let inner: usize = self.shape[dim + 1..].iter().product();
        let mut out = Vec::with_capacity(outer * len * inner);
        let stride = self.shape[dim] * inner;
        for o in 0..outer {
            let base = o * stride + start * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut shape = self.shape.clone();
        shape[dim] = len;
        Tensor::from_vec(shape, out)
    }

    /// Concatenates tensors along `dim`. All other dimensions must agree.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes disagree off-`dim`.
    #[must_use]
    pub fn concat(parts: &[&Tensor], dim: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let first = parts[0];
        let rank = first.rank();
        assert!(dim < rank, "concat dim out of range");
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != dim {
                    assert_eq!(p.shape[d], first.shape[d], "concat shape mismatch at dim {d}");
                }
            }
        }
        let outer: usize = first.shape[..dim].iter().product();
        let inner: usize = first.shape[dim + 1..].iter().product();
        let total_dim: usize = parts.iter().map(|p| p.shape[dim]).sum();
        let mut out = Vec::with_capacity(outer * total_dim * inner);
        for o in 0..outer {
            for p in parts {
                let stride = p.shape[dim] * inner;
                let base = o * stride;
                out.extend_from_slice(&p.data[base..base + stride]);
            }
        }
        let mut shape = first.shape.clone();
        shape[dim] = total_dim;
        Tensor::from_vec(shape, out)
    }

    /// Splits the tensor into `n` equal parts along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension is not divisible by `n`.
    #[must_use]
    pub fn split(&self, dim: usize, n: usize) -> Vec<Tensor> {
        assert!(n > 0 && self.shape[dim].is_multiple_of(n), "dim {} of size {} not divisible by {n}", dim, self.shape[dim]);
        let part = self.shape[dim] / n;
        (0..n).map(|i| self.slice(dim, i * part, part)).collect()
    }

    /// Repeats each index of dimension `dim` `k` times in place
    /// (`[a, b] → [a, a, b, b]` for `k = 2`), growing that dimension by a
    /// factor of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `dim` is out of range.
    #[must_use]
    pub fn repeat_interleave(&self, dim: usize, k: usize) -> Tensor {
        assert!(k > 0, "repeat factor must be positive");
        assert!(dim < self.rank(), "repeat dim out of range");
        if k == 1 {
            return self.clone();
        }
        let parts: Vec<Tensor> = (0..self.shape[dim])
            .flat_map(|i| std::iter::repeat_n(i, k))
            .map(|i| self.slice(dim, i, 1))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat(&refs, dim)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank-2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Maximum absolute difference between two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether every element differs from `other` by at most `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Applies `f` element-wise, returning a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise binary combination with a same-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_with");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Scales every element by a constant.
    #[must_use]
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(f, ", data=[{} elements]", self.numel())?;
        }
        write!(f, ")")
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_checks_bounds() {
        let t = Tensor::zeros(vec![2, 2]);
        let _ = t.at(&[0, 2]);
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn slice_middle_dim() {
        let t = Tensor::from_vec(vec![2, 4, 2], (0..16).map(|v| v as f32).collect());
        let s = t.slice(1, 1, 2);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 1]), t.at(&[1, 2, 1]));
    }

    #[test]
    fn split_then_concat_roundtrips() {
        let t = Tensor::from_vec(vec![2, 6], (0..12).map(|v| v as f32).collect());
        for dim in 0..2 {
            let parts = t.split(dim, 2);
            let refs: Vec<&Tensor> = parts.iter().collect();
            assert_eq!(Tensor::concat(&refs, dim), t);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn split_requires_divisibility() {
        let _ = Tensor::zeros(vec![2, 3]).split(1, 2);
    }

    #[test]
    fn repeat_interleave_orders_copies_adjacently() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.repeat_interleave(0, 2);
        assert_eq!(r.shape(), &[4, 2]);
        assert_eq!(r.data(), &[1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 3.0, 4.0]);
        assert_eq!(t.repeat_interleave(1, 1), t);
        let c = t.repeat_interleave(1, 2);
        assert_eq!(c.data(), &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, vec![3, 5], 1.0);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().at(&[4, 2]), t.at(&[2, 4]));
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, vec![10_000], 2.0);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![3.0, 4.0]);
        assert_eq!((&a + &b).data(), &[4.0, 6.0]);
        assert_eq!((&b - &a).data(), &[2.0, 2.0]);
        assert_eq!((&a * &b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![1.0, 2.0 + 1e-4]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(vec![100]);
        let s = format!("{t:?}");
        assert!(s.contains("100"));
    }

    proptest! {
        #[test]
        fn prop_split_concat_identity(
            rows in 1usize..5,
            cols_half in 1usize..5,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::randn(&mut rng, vec![rows, cols_half * 2], 1.0);
            let parts = t.split(1, 2);
            let refs: Vec<&Tensor> = parts.iter().collect();
            prop_assert_eq!(Tensor::concat(&refs, 1), t);
        }

        #[test]
        fn prop_offset_bijective(dims in proptest::collection::vec(1usize..4, 1..4)) {
            let t = Tensor::zeros(dims.clone());
            let mut seen = std::collections::HashSet::new();
            // enumerate all indices
            let mut idx = vec![0usize; dims.len()];
            loop {
                prop_assert!(seen.insert(t.offset(&idx)));
                // increment odometer
                let mut d = dims.len();
                loop {
                    if d == 0 { break; }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < dims[d] { break; }
                    idx[d] = 0;
                    if d == 0 { break; }
                }
                if idx.iter().all(|&v| v == 0) { break; }
            }
            prop_assert_eq!(seen.len(), t.numel());
        }
    }
}
