//! bfloat16 storage emulation.
//!
//! The modeled chip stores weights and activations in bfloat16 (Section 2).
//! We emulate bf16 *storage* by truncating an `f32` to its top 16 bits
//! (with round-to-nearest-even), while arithmetic stays in f32 — exactly the
//! situation on the real hardware, where the MXU accumulates in higher
//! precision.

use crate::Tensor;

/// Rounds an `f32` to the nearest bfloat16 value (round-to-nearest-even),
/// returned as an `f32`.
///
/// # Examples
///
/// ```
/// let x = esti_tensor::bf16::round_to_bf16(1.0 + 1e-5);
/// assert_eq!(x, 1.0); // 1e-5 is below bf16 resolution near 1.0
/// ```
#[must_use]
pub fn round_to_bf16(v: f32) -> f32 {
    if v.is_nan() {
        return v;
    }
    let bits = v.to_bits();
    // Round to nearest even on the truncated 16 bits.
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7fff + lsb);
    f32::from_bits(rounded & 0xffff_0000)
}

/// Packs an `f32` into its 16-bit bfloat16 representation.
#[must_use]
pub fn to_bits(v: f32) -> u16 {
    (round_to_bf16(v).to_bits() >> 16) as u16
}

/// Expands a 16-bit bfloat16 representation back to `f32` exactly.
#[must_use]
pub fn from_bits(bits: u16) -> f32 {
    f32::from_bits(u32::from(bits) << 16)
}

/// Applies bf16 rounding to every element, simulating a tensor that was
/// stored to HBM in bf16 and loaded back.
#[must_use]
pub fn quantize_tensor(t: &Tensor) -> Tensor {
    t.map(round_to_bf16)
}

/// Maximum relative error introduced by bf16 rounding of a normal value:
/// half a unit in the last place of an 8-bit mantissa.
pub const MAX_RELATIVE_ERROR: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_values_are_preserved() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 1.5] {
            assert_eq!(round_to_bf16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn bits_roundtrip() {
        for v in [0.0f32, 1.0, -3.5, 123.0, -0.0078125] {
            assert_eq!(from_bits(to_bits(v)), v);
        }
    }

    #[test]
    fn nan_and_inf_pass_through() {
        assert!(round_to_bf16(f32::NAN).is_nan());
        assert_eq!(round_to_bf16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_to_bf16(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn rounds_to_nearest() {
        // bf16 has a 7-bit stored mantissa, so the step above 1.0 is 2^-7.
        // 1.0 + 2^-8 is exactly halfway; round-to-even picks 1.0.
        let halfway = 1.0 + f32::powi(2.0, -8);
        assert_eq!(round_to_bf16(halfway), 1.0);
        // Just above halfway rounds up to the next representable value.
        let above = 1.0 + f32::powi(2.0, -8) + f32::powi(2.0, -11);
        assert_eq!(round_to_bf16(above), 1.0 + f32::powi(2.0, -7));
    }

    #[test]
    fn quantize_tensor_applies_elementwise() {
        let t = Tensor::from_vec(vec![2], vec![1.0 + 1e-5, 2.0]);
        let q = quantize_tensor(&t);
        assert_eq!(q.data(), &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_relative_error_bounded(v in -1e6f32..1e6) {
            let q = round_to_bf16(v);
            if v != 0.0 && v.is_normal() {
                let rel = ((q - v) / v).abs();
                prop_assert!(rel <= MAX_RELATIVE_ERROR, "v={v} q={q} rel={rel}");
            }
        }

        #[test]
        fn prop_idempotent(v in -1e6f32..1e6) {
            let q = round_to_bf16(v);
            prop_assert_eq!(round_to_bf16(q), q);
        }

        #[test]
        fn prop_monotone(a in -1e5f32..1e5, b in -1e5f32..1e5) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(round_to_bf16(lo) <= round_to_bf16(hi));
        }
    }
}
