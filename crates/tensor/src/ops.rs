//! Numeric operators for Transformer inference.
//!
//! Includes the low-level optimizations called out in Section 3.5 of the
//! paper: a log-base-2 softmax ([`softmax_base2`]) and log-base-2 swish
//! ([`swish_base2`]) that replace `exp` with the cheaper `exp2`, exploiting
//! `e^x = 2^(x·log2 e)`.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::Tensor;

/// Which inner matmul kernel [`matmul`] dispatches to.
///
/// `Simd` is the default and resolves at dispatch time: the AVX2 kernels
/// run when the host supports them and SIMD has not been disabled
/// ([`set_simd_enabled`] / `ESTI_DISABLE_SIMD=1`), otherwise execution
/// falls back to the blocked tier. The blocked and naive kernels are kept
/// as the bitwise oracles and so benchmarks can measure the older tiers
/// in the same binary. Every tier accumulates every output element by one
/// serial chain of mul-then-add steps in strictly ascending `k` order, so
/// for inputs without exact zeros all three produce bit-identical results
/// (the naive tier's `av == 0.0` skip is the only divergence, and only on
/// exact-zero activations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKernel {
    /// Explicit AVX2 SIMD kernel with runtime feature detection; falls
    /// back to `Blocked` on hosts without AVX2.
    Simd,
    /// Cache-blocked, 4×-unrolled scalar kernel (the bitwise oracle).
    Blocked,
    /// Scalar i-k-j kernel with the historical `av == 0.0` skip.
    Naive,
}

static MATMUL_KERNEL: AtomicU8 = AtomicU8::new(0);

/// Serializes tests (here, in `quant`, and the kernel conformance suite)
/// that flip the process-wide kernel knob, so concurrently running tests
/// never observe a mid-test setting.
#[cfg(test)]
pub(crate) static KNOB_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Selects the kernel used by [`matmul`] / [`batched_matmul`] process-wide.
/// All kernels are correct; this is a benchmarking and oracle escape hatch.
pub fn set_matmul_kernel(kernel: MatmulKernel) {
    let v = match kernel {
        MatmulKernel::Simd => 0,
        MatmulKernel::Blocked => 1,
        MatmulKernel::Naive => 2,
    };
    MATMUL_KERNEL.store(v, Ordering::Relaxed);
}

/// The currently selected matmul kernel.
#[must_use]
pub fn matmul_kernel() -> MatmulKernel {
    match MATMUL_KERNEL.load(Ordering::Relaxed) {
        0 => MatmulKernel::Simd,
        1 => MatmulKernel::Blocked,
        _ => MatmulKernel::Naive,
    }
}

/// SIMD enablement: 0 = undecided (consult `ESTI_DISABLE_SIMD` once),
/// 1 = enabled, 2 = disabled.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

fn simd_enabled() -> bool {
    match SIMD_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = std::env::var_os("ESTI_DISABLE_SIMD").is_some_and(|v| !v.is_empty() && v != "0");
            SIMD_STATE.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Enables or disables the AVX2 SIMD tier process-wide, overriding the
/// `ESTI_DISABLE_SIMD` environment default. With SIMD disabled the `Simd`
/// knob setting resolves to the blocked tier — the forced-scalar fallback
/// non-AVX2 hosts take automatically.
pub fn set_simd_enabled(on: bool) {
    SIMD_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// True when the GEMM entry points will actually run the AVX2 kernels:
/// the `Simd` tier is selected, SIMD is not disabled, and the host
/// supports AVX2.
#[must_use]
pub fn simd_active() -> bool {
    matmul_kernel() == MatmulKernel::Simd && simd_enabled() && crate::simd::supported()
}

/// Column width of one register tile: `MR` accumulator rows of `NR` floats
/// stay resident in vector registers across the entire `k` loop.
const NR: usize = 32;
/// Row count of one register tile: independent accumulator chains per lane.
const MR: usize = 4;

/// Full-tile microkernel: `out[i..i+MR, j..j+NR] += a[i..i+MR, :] × b[:, j..j+NR]`.
/// All loop bounds are compile-time constants so the accumulator tile is
/// promoted to registers — the `k` loop touches memory only for the `b` row
/// slice and `MR` scalars of `a`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn mm_tile_full(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    i: usize,
    j: usize,
    k: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        let o0 = (i + r) * o_stride + j;
        row.copy_from_slice(&out[o0..o0 + NR]);
    }
    for kk in 0..k {
        // Vetted: `[..NR]` fixes the slice length to NR before the
        // conversion; the microkernel is only entered on full tiles.
        #[allow(clippy::expect_used)]
        let brow: &[f32; NR] = bd[kk * b_stride + j..][..NR].try_into().expect("NR slice");
        for (r, row) in acc.iter_mut().enumerate() {
            let av = ad[(i + r) * a_stride + kk];
            // One separate add per k step — never a fused multi-term sum —
            // so every output element is a single serial chain in strictly
            // ascending k order, matching the scalar kernel bit-for-bit.
            for (x, &bv) in row.iter_mut().zip(brow) {
                *x += av * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        let o0 = (i + r) * o_stride + j;
        out[o0..o0 + NR].copy_from_slice(row);
    }
}

/// Edge-tile microkernel for the `m % MR` / `n % NR` remainders: identical
/// accumulation order to [`mm_tile_full`], with runtime tile bounds.
#[allow(clippy::too_many_arguments)]
fn mm_tile_edge(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    i: usize,
    j: usize,
    k: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        let o0 = (i + r) * o_stride + j;
        row[..nr].copy_from_slice(&out[o0..o0 + nr]);
    }
    for kk in 0..k {
        let brow = &bd[kk * b_stride + j..][..nr];
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            let av = ad[(i + r) * a_stride + kk];
            for (x, &bv) in row[..nr].iter_mut().zip(brow) {
                *x += av * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        let o0 = (i + r) * o_stride + j;
        out[o0..o0 + nr].copy_from_slice(&row[..nr]);
    }
}

/// Register-tiled matmul core accumulating `out += a × b`, with explicit row
/// strides so callers can address sub-blocks of larger matrices without
/// copying. Tiles the output into `MR × NR` register blocks; the `j`-outer
/// loop keeps the active `k × NR` panel of `b` hot in L1/L2 across row
/// tiles. Each output element is accumulated by a single serial chain of
/// additions in strictly ascending `k` order — the property the
/// chunked/looped collective paths rely on for bit-identical results
/// regardless of how the contraction is split.
#[allow(clippy::too_many_arguments)]
fn mm_kernel(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut j = 0;
    while j + NR <= n {
        let mut i = 0;
        while i + MR <= m {
            mm_tile_full(ad, a_stride, bd, b_stride, out, o_stride, i, j, k);
            i += MR;
        }
        if i < m {
            mm_tile_edge(ad, a_stride, bd, b_stride, out, o_stride, i, j, k, m - i, NR);
        }
        j += NR;
    }
    if j < n {
        let nr = n - j;
        let mut i = 0;
        while i < m {
            let mr = MR.min(m - i);
            mm_tile_edge(ad, a_stride, bd, b_stride, out, o_stride, i, j, k, mr, nr);
            i += mr;
        }
    }
}

/// Strided GEMM core with kernel dispatch and deterministic row-banded
/// parallelism: resolves the process-wide knob (AVX2 SIMD when active,
/// blocked scalar otherwise) and, when the calling thread has a chip
/// worker pool installed ([`crate::pool::with_worker_pool`]), splits the
/// `m` output rows into disjoint bands — one per worker. Both the kernel
/// tiers and the banding are bit-identity preserving: every output
/// element is one ascending-`k` mul+add chain computed by exactly one
/// worker, so any knob/worker-count combination produces identical bits.
#[allow(clippy::too_many_arguments)]
fn mm_dispatch(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let simd = simd_active();
    crate::pool::partition_rows(m, k, n, out, o_stride, |r0, rows, band| {
        let a = &ad[r0 * a_stride..];
        if simd {
            crate::simd::mm_f32(a, a_stride, bd, b_stride, band, o_stride, rows, k, n);
        } else {
            mm_kernel(a, a_stride, bd, b_stride, band, o_stride, rows, k, n);
        }
    });
}

/// The historical scalar kernel (i-k-j with a zero-skip), on raw slices.
fn mm_naive_kernel(ad: &[f32], bd: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Matrix product of rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
///
/// Dispatches to the AVX2 SIMD kernel when active, falling back to the
/// cache-blocked scalar kernel (see [`set_matmul_kernel`] and
/// [`set_simd_enabled`] for the escape hatches back to the oracles).
/// Every output element is accumulated in strictly ascending `k` order, so
/// splitting the contraction into chunks and accumulating the chunks in
/// order reproduces the monolithic result bit-for-bit.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use esti_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0]);
/// assert_eq!(ops::matmul(&a, &b).data(), &[11.0]);
/// ```
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    if matmul_kernel() == MatmulKernel::Naive {
        return matmul_naive(a, b);
    }
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    mm_dispatch(a.data(), k, b.data(), n, &mut out, n, m, k, n);
    Tensor::from_vec(vec![m, n], out)
}

/// The pre-optimization scalar matmul, kept as a correctness oracle: i-k-j
/// loop order with an `av == 0.0` skip. Bit-identical to [`matmul`] for
/// inputs without exact zeros (both accumulate in ascending `k` order).
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
#[must_use]
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    mm_naive_kernel(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(vec![m, n], out)
}

/// `a × b[:, c0..c0+cn]` without materializing the column slice of `b`:
/// the looped-collective building block for output-dim chunked einsums.
/// Equals `matmul(a, b)` restricted to those columns, bit-for-bit.
///
/// # Panics
///
/// Panics on rank/shape mismatch or if the column range exceeds `b`.
#[must_use]
pub fn matmul_cols(a: &Tensor, b: &Tensor, c0: usize, cn: usize) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_cols lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_cols rhs must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n_full) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_cols inner dimension mismatch: {k} vs {k2}");
    assert!(c0 + cn <= n_full, "column range {c0}+{cn} exceeds {n_full}");
    let mut out = vec![0.0f32; m * cn];
    mm_dispatch(a.data(), k, &b.data()[c0..], n_full, &mut out, cn, m, k, cn);
    Tensor::from_vec(vec![m, cn], out)
}

/// Accumulates `out += a × b[r0..r0+a.dim(1), :]` — a contraction-chunk
/// update against a row range of `b`, used to stream all-gathered chunks
/// through an einsum. Accumulation stays in ascending `k` order within the
/// chunk, so chunk-by-chunk accumulation over an ascending range equals a
/// single matmul over the whole range bit-for-bit.
///
/// # Panics
///
/// Panics on rank/shape mismatch or if the row range exceeds `b`.
pub fn matmul_acc_rows(a: &Tensor, b: &Tensor, r0: usize, out: &mut Tensor) {
    assert_eq!(a.rank(), 2, "matmul_acc_rows lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_acc_rows rhs must be rank-2");
    assert_eq!(out.rank(), 2, "matmul_acc_rows out must be rank-2");
    let (m, kc) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    assert!(r0 + kc <= b.dim(0), "row range {r0}+{kc} exceeds {}", b.dim(0));
    assert_eq!(out.shape(), &[m, n], "matmul_acc_rows output shape mismatch");
    let bd = &b.data()[r0 * n..];
    mm_dispatch(a.data(), kc, bd, n, out.data_mut(), n, m, kc, n);
}

/// Writes `a × b` into columns `[c0, c0 + b.dim(1))` of `out`
/// (accumulating; the target region is normally zero-initialized). Lets a
/// streamed weight-gather assemble its output column block by column block.
///
/// # Panics
///
/// Panics on rank/shape mismatch or if the column range exceeds `out`.
pub fn matmul_into_cols(a: &Tensor, b: &Tensor, out: &mut Tensor, c0: usize) {
    assert_eq!(a.rank(), 2, "matmul_into_cols lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_into_cols rhs must be rank-2");
    assert_eq!(out.rank(), 2, "matmul_into_cols out must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, cn) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_into_cols inner dimension mismatch: {k} vs {k2}");
    assert_eq!(out.dim(0), m, "matmul_into_cols row count mismatch");
    let n_out = out.dim(1);
    assert!(c0 + cn <= n_out, "column range {c0}+{cn} exceeds {n_out}");
    mm_dispatch(a.data(), k, b.data(), cn, &mut out.data_mut()[c0..], n_out, m, k, cn);
}

/// Copies a `w`-column window of rank-2 `src` starting at column `sc0`
/// into `out` starting at column `dc0`. Lets chunked collective loops
/// assemble a gathered matrix in a preallocated output instead of
/// `concat`-ing per-chunk allocations.
///
/// # Panics
///
/// Panics on rank mismatch, row-count mismatch, or out-of-range windows.
pub fn copy_cols(src: &Tensor, sc0: usize, w: usize, out: &mut Tensor, dc0: usize) {
    let (rows, sn, dn) = col_window_dims(src, sc0, w, out, dc0);
    let (sd, dd) = (src.data(), out.data_mut());
    for r in 0..rows {
        dd[r * dn + dc0..r * dn + dc0 + w].copy_from_slice(&sd[r * sn + sc0..r * sn + sc0 + w]);
    }
}

/// Adds a `w`-column window of rank-2 `src` starting at column `sc0` into
/// `out` starting at column `dc0`, element by element in row-major order.
/// Used by the overlap loops to fold collected partials in place; the add
/// order per element is identical to the allocating `&a + &b` path, so
/// chunk-by-chunk folding stays bit-identical to the monolithic reduction.
///
/// # Panics
///
/// Panics on rank mismatch, row-count mismatch, or out-of-range windows.
pub fn add_cols(src: &Tensor, sc0: usize, w: usize, out: &mut Tensor, dc0: usize) {
    let (rows, sn, dn) = col_window_dims(src, sc0, w, out, dc0);
    let (sd, dd) = (src.data(), out.data_mut());
    for r in 0..rows {
        for c in 0..w {
            dd[r * dn + dc0 + c] += sd[r * sn + sc0 + c];
        }
    }
}

fn col_window_dims(
    src: &Tensor,
    sc0: usize,
    w: usize,
    out: &Tensor,
    dc0: usize,
) -> (usize, usize, usize) {
    assert_eq!(src.rank(), 2, "column window src must be rank-2");
    assert_eq!(out.rank(), 2, "column window out must be rank-2");
    assert_eq!(src.dim(0), out.dim(0), "column window row count mismatch");
    let (sn, dn) = (src.dim(1), out.dim(1));
    assert!(sc0 + w <= sn, "source window {sc0}+{w} exceeds {sn}");
    assert!(dc0 + w <= dn, "dest window {dc0}+{w} exceeds {dn}");
    (src.dim(0), sn, dn)
}

/// In-place elementwise `out += src` in flat index order — the same serial
/// per-element add as the allocating `&out + &src`, without the allocation.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add_assign(out: &mut Tensor, src: &Tensor) {
    assert_eq!(out.shape(), src.shape(), "add_assign shape mismatch");
    for (o, s) in out.data_mut().iter_mut().zip(src.data()) {
        *o += s;
    }
}

/// Batched matrix product: `[b, m, k] × [b, k, n] → [b, m, n]`.
///
/// Writes every batch element directly into one preallocated output buffer
/// — no per-batch slice/reshape/concat allocations on the attention hot
/// path.
///
/// # Panics
///
/// Panics if inputs are not rank 3 or batch/inner dimensions disagree.
#[must_use]
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "batched_matmul lhs must be rank-3");
    assert_eq!(b.rank(), 3, "batched_matmul rhs must be rank-3");
    assert_eq!(a.dim(0), b.dim(0), "batch dimension mismatch");
    let (batch, m, k) = (a.dim(0), a.dim(1), a.dim(2));
    let (k2, n) = (b.dim(1), b.dim(2));
    assert_eq!(k, k2, "batched_matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; batch * m * n];
    let (ad, bd) = (a.data(), b.data());
    let naive = matmul_kernel() == MatmulKernel::Naive;
    for i in 0..batch {
        let a_i = &ad[i * m * k..(i + 1) * m * k];
        let b_i = &bd[i * k * n..(i + 1) * k * n];
        let o_i = &mut out[i * m * n..(i + 1) * m * n];
        if naive {
            mm_naive_kernel(a_i, b_i, o_i, m, k, n);
        } else {
            mm_dispatch(a_i, k, b_i, n, o_i, n, m, k, n);
        }
    }
    Tensor::from_vec(vec![batch, m, n], out)
}

/// Numerically-stable softmax along the last dimension.
#[must_use]
pub fn softmax(t: &Tensor) -> Tensor {
    softmax_impl(t, f32::exp)
}

/// Softmax computed in base 2 (Section 3.5's "faster log-base-2
/// implementations of Softmax").
///
/// Mathematically identical to [`softmax`] because the base cancels in the
/// normalization after rescaling logits by `log2(e)`; on real hardware
/// `exp2` is cheaper than `exp`.
#[must_use]
pub fn softmax_base2(t: &Tensor) -> Tensor {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    softmax_impl(t, |v| (v * LOG2_E).exp2())
}

fn softmax_impl(t: &Tensor, exp: impl Fn(f32) -> f32) -> Tensor {
    // Vetted: the documented shape-check panic for rank-0 input — an
    // assert with a message, not a swallowed runtime fault.
    #[allow(clippy::expect_used)]
    let last = *t.shape().last().expect("softmax of rank-0 tensor");
    assert!(last > 0, "softmax over empty dimension");
    let rows = t.numel() / last;
    let mut out = vec![0.0f32; t.numel()];
    for r in 0..rows {
        let row = &t.data()[r * last..(r + 1) * last];
        let orow = &mut out[r * last..(r + 1) * last];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in orow.iter_mut().zip(row) {
            *o = exp(v - max);
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    Tensor::from_vec(t.shape().to_vec(), out)
}

/// Layer normalization along the last dimension with learned `gain`
/// (PaLM-style: no bias, epsilon inside the square root).
///
/// # Panics
///
/// Panics if `gain` is not rank 1 matching the last dimension of `t`.
#[must_use]
pub fn layernorm(t: &Tensor, gain: &Tensor, eps: f32) -> Tensor {
    // Vetted: the documented shape-check panic for rank-0 input — an
    // assert with a message, not a swallowed runtime fault.
    #[allow(clippy::expect_used)]
    let last = *t.shape().last().expect("layernorm of rank-0 tensor");
    assert_eq!(gain.shape(), &[last], "layernorm gain shape mismatch");
    let rows = t.numel() / last;
    let mut out = vec![0.0f32; t.numel()];
    for r in 0..rows {
        let row = &t.data()[r * last..(r + 1) * last];
        let orow = &mut out[r * last..(r + 1) * last];
        let mean: f32 = row.iter().sum::<f32>() / last as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / last as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for ((o, &v), &g) in orow.iter_mut().zip(row).zip(gain.data()) {
            *o = (v - mean) * inv * g;
        }
    }
    Tensor::from_vec(t.shape().to_vec(), out)
}

/// The swish / SiLU activation `x · sigmoid(x)` used inside PaLM's SwiGLU.
#[must_use]
pub fn swish(t: &Tensor) -> Tensor {
    t.map(|v| v / (1.0 + (-v).exp()))
}

/// Swish computed with `exp2` (Section 3.5). Identical to [`swish`] up to
/// floating-point rounding.
#[must_use]
pub fn swish_base2(t: &Tensor) -> Tensor {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    t.map(|v| v / (1.0 + (-v * LOG2_E).exp2()))
}

/// SwiGLU combination: `swish(gate) ⊙ up`, the element-wise product at the
/// heart of PaLM's feedforward block.
///
/// # Panics
///
/// Panics if the two tensors have different shapes.
#[must_use]
pub fn swiglu(gate: &Tensor, up: &Tensor) -> Tensor {
    &swish(gate) * up
}

/// Applies a lower-triangular causal mask to attention scores shaped
/// `[..., l_q, l_k]`, where query position `i` may attend to key positions
/// `0..=i + (l_k - l_q)` (the offset handles decode steps where cached keys
/// precede the queries).
///
/// # Panics
///
/// Panics if `l_k < l_q` interpreted from the final two dimensions.
#[must_use]
pub fn causal_mask(scores: &Tensor) -> Tensor {
    let rank = scores.rank();
    assert!(rank >= 2, "causal_mask needs rank >= 2");
    let l_q = scores.dim(rank - 2);
    let l_k = scores.dim(rank - 1);
    assert!(l_k >= l_q, "key length {l_k} shorter than query length {l_q}");
    let offset = l_k - l_q;
    let mats = scores.numel() / (l_q * l_k);
    let mut out = scores.data().to_vec();
    for m in 0..mats {
        for i in 0..l_q {
            for j in (offset + i + 1)..l_k {
                out[(m * l_q + i) * l_k + j] = f32::NEG_INFINITY;
            }
        }
    }
    Tensor::from_vec(scores.shape().to_vec(), out)
}

/// Rotary positional embedding (RoPE; Su et al. 2021, used by PaLM).
///
/// `t` is `[B, L, H·d_head]`; each head's dimension pairs `(2i, 2i+1)` are
/// rotated by angle `p / 10000^(2i/d_head)` where `p = base_pos + l` is the
/// token's absolute position. `base_pos` carries the KV-cache offset so
/// incremental prefill and decode rotate consistently with a single-shot
/// prefill.
///
/// The rotation is local to each head's dimensions and depends only on the
/// absolute position, so it commutes with head sharding and batch sharding
/// — the property the partitioned runtime relies on.
///
/// # Panics
///
/// Panics if `t` is not rank 3, `d_head` is odd, or the last dimension is
/// not a multiple of `d_head`.
#[must_use]
pub fn rope(t: &Tensor, d_head: usize, base_pos: usize) -> Tensor {
    assert_eq!(t.rank(), 3, "rope expects [B, L, H*d_head]");
    assert!(d_head.is_multiple_of(2), "rope requires an even d_head");
    let (b, l, hd) = (t.dim(0), t.dim(1), t.dim(2));
    assert!(hd % d_head == 0, "last dimension must be a multiple of d_head");
    let heads = hd / d_head;
    let half = d_head / 2;
    // Precompute inverse frequencies and per-(position, i) sin/cos.
    let inv_freq: Vec<f32> = (0..half)
        .map(|i| 1.0 / 10000f32.powf(2.0 * i as f32 / d_head as f32))
        .collect();
    let mut out = t.data().to_vec();
    for li in 0..l {
        let p = (base_pos + li) as f32;
        for (i, &f) in inv_freq.iter().enumerate() {
            let (sin, cos) = (p * f).sin_cos();
            for bi in 0..b {
                for h in 0..heads {
                    let off = ((bi * l + li) * hd) + h * d_head + 2 * i;
                    let (x0, x1) = (out[off], out[off + 1]);
                    out[off] = x0 * cos - x1 * sin;
                    out[off + 1] = x0 * sin + x1 * cos;
                }
            }
        }
    }
    Tensor::from_vec(vec![b, l, hd], out)
}

/// Per-row-base variant of [`rope`]: batch row `bi`'s positions start at
/// `bases[bi]` instead of one shared `base_pos`, so sequences of different
/// ages can share a batch (continuous batching). Each element's rotation
/// depends only on its own row's absolute position, so for uniform `bases`
/// this is bit-identical to [`rope`].
///
/// # Panics
///
/// Panics if `t` is not rank 3, `d_head` is odd, the last dimension is not
/// a multiple of `d_head`, or `bases` disagrees with the batch dim.
#[must_use]
pub fn rope_rows(t: &Tensor, d_head: usize, bases: &[usize]) -> Tensor {
    assert_eq!(t.rank(), 3, "rope expects [B, L, H*d_head]");
    assert!(d_head.is_multiple_of(2), "rope requires an even d_head");
    let (b, l, hd) = (t.dim(0), t.dim(1), t.dim(2));
    assert!(hd % d_head == 0, "last dimension must be a multiple of d_head");
    assert_eq!(bases.len(), b, "one position base per batch row");
    let heads = hd / d_head;
    let half = d_head / 2;
    let inv_freq: Vec<f32> = (0..half)
        .map(|i| 1.0 / 10000f32.powf(2.0 * i as f32 / d_head as f32))
        .collect();
    let mut out = t.data().to_vec();
    for (bi, &base) in bases.iter().enumerate() {
        for li in 0..l {
            let p = (base + li) as f32;
            for (i, &f) in inv_freq.iter().enumerate() {
                let (sin, cos) = (p * f).sin_cos();
                for h in 0..heads {
                    let off = ((bi * l + li) * hd) + h * d_head + 2 * i;
                    let (x0, x1) = (out[off], out[off + 1]);
                    out[off] = x0 * cos - x1 * sin;
                    out[off + 1] = x0 * sin + x1 * cos;
                }
            }
        }
    }
    Tensor::from_vec(vec![b, l, hd], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&mut rng, vec![4, 6], 1.0);
        assert!(matmul(&a, &Tensor::eye(6)).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_checks_dims() {
        let _ = matmul(&Tensor::zeros(vec![2, 3]), &Tensor::zeros(vec![4, 2]));
    }

    #[test]
    fn batched_matmul_matches_loop() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&mut rng, vec![3, 2, 4], 1.0);
        let b = Tensor::randn(&mut rng, vec![3, 4, 5], 1.0);
        let c = batched_matmul(&a, &b);
        assert_eq!(c.shape(), &[3, 2, 5]);
        for i in 0..3 {
            let ai = a.slice(0, i, 1).into_reshape(vec![2, 4]);
            let bi = b.slice(0, i, 1).into_reshape(vec![4, 5]);
            let ci = c.slice(0, i, 1).into_reshape(vec![2, 5]);
            assert!(matmul(&ai, &bi).approx_eq(&ci, 1e-6));
        }
    }

    #[test]
    fn column_windows_copy_add_and_fold_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&mut rng, vec![3, 4], 1.0);
        let b = Tensor::randn(&mut rng, vec![3, 4], 1.0);
        // copy_cols then add_cols into a window equals slice arithmetic.
        let mut out = Tensor::zeros(vec![3, 6]);
        copy_cols(&a, 1, 2, &mut out, 3);
        add_cols(&b, 1, 2, &mut out, 3);
        let expect = &a.slice(1, 1, 2) + &b.slice(1, 1, 2);
        assert_eq!(out.slice(1, 3, 2).data(), expect.data());
        // add_assign is bit-identical to the allocating elementwise add.
        let mut acc = a.clone();
        add_assign(&mut acc, &b);
        assert_eq!(acc.data(), (&a + &b).data());
    }

    #[test]
    #[should_panic(expected = "dest window")]
    fn add_cols_checks_window() {
        let src = Tensor::zeros(vec![2, 4]);
        let mut out = Tensor::zeros(vec![2, 3]);
        add_cols(&src, 0, 3, &mut out, 2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax(&t);
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(vec![1, 2], vec![1000.0, 1000.0]);
        let s = softmax(&t);
        assert!((s.at(&[0, 0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_base2_matches_softmax() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::randn(&mut rng, vec![5, 17], 3.0);
        assert!(softmax(&t).approx_eq(&softmax_base2(&t), 1e-5));
    }

    #[test]
    fn swish_base2_matches_swish() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::randn(&mut rng, vec![64], 2.0);
        assert!(swish(&t).approx_eq(&swish_base2(&t), 1e-5));
    }

    #[test]
    fn layernorm_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Tensor::randn(&mut rng, vec![3, 32], 4.0);
        let n = layernorm(&t, &Tensor::ones(vec![32]), 1e-6);
        for r in 0..3 {
            let row = &n.data()[r * 32..(r + 1) * 32];
            let mean: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 32.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layernorm_applies_gain() {
        let t = Tensor::from_vec(vec![1, 2], vec![-1.0, 1.0]);
        let n = layernorm(&t, &Tensor::from_vec(vec![2], vec![2.0, 3.0]), 0.0);
        assert!((n.at(&[0, 0]) + 2.0).abs() < 1e-5);
        assert!((n.at(&[0, 1]) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn causal_mask_prefill_shape() {
        let s = Tensor::zeros(vec![1, 3, 3]);
        let m = causal_mask(&s);
        // row i can see columns 0..=i
        assert_eq!(m.at(&[0, 0, 1]), f32::NEG_INFINITY);
        assert_eq!(m.at(&[0, 1, 1]), 0.0);
        assert_eq!(m.at(&[0, 1, 2]), f32::NEG_INFINITY);
        assert_eq!(m.at(&[0, 2, 2]), 0.0);
    }

    #[test]
    fn causal_mask_decode_offset() {
        // one query attending over 4 cached keys: nothing masked
        let s = Tensor::zeros(vec![1, 1, 4]);
        let m = causal_mask(&s);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn swiglu_zero_gate_kills_output() {
        let gate = Tensor::zeros(vec![4]);
        let up = Tensor::ones(vec![4]);
        assert!(swiglu(&gate, &up).data().iter().all(|&v| v == 0.0));
    }

    proptest! {
        #[test]
        fn prop_matmul_distributes_over_addition(seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&mut rng, vec![3, 4], 1.0);
            let b = Tensor::randn(&mut rng, vec![4, 2], 1.0);
            let c = Tensor::randn(&mut rng, vec![4, 2], 1.0);
            let lhs = matmul(&a, &(&b + &c));
            let rhs = &matmul(&a, &b) + &matmul(&a, &c);
            prop_assert!(lhs.approx_eq(&rhs, 1e-4));
        }

        #[test]
        fn prop_matmul_transpose_identity(seed in 0u64..100) {
            // (A B)^T == B^T A^T
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&mut rng, vec![3, 5], 1.0);
            let b = Tensor::randn(&mut rng, vec![5, 2], 1.0);
            let lhs = matmul(&a, &b).transpose();
            let rhs = matmul(&b.transpose(), &a.transpose());
            prop_assert!(lhs.approx_eq(&rhs, 1e-4));
        }

        #[test]
        fn prop_softmax_invariant_to_shift(seed in 0u64..100, shift in -10.0f32..10.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::randn(&mut rng, vec![2, 9], 1.0);
            let shifted = t.map(|v| v + shift);
            prop_assert!(softmax(&t).approx_eq(&softmax(&shifted), 1e-5));
        }

        #[test]
        fn prop_rope_preserves_norm(seed in 0u64..100, base in 0usize..64) {
            // Rotation is an isometry on every (2i, 2i+1) pair.
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::randn(&mut rng, vec![2, 3, 8], 1.0);
            let r = rope(&t, 4, base);
            let norm = |x: &Tensor| x.data().iter().map(|v| v * v).sum::<f32>();
            prop_assert!((norm(&t) - norm(&r)).abs() / norm(&t) < 1e-4);
        }

        #[test]
        fn prop_rope_dot_product_is_relative(seed in 0u64..50, shift in 0usize..32) {
            // The defining property: <rope(q, p+s), rope(k, p'+s)> depends
            // only on p - p', so shifting both positions leaves attention
            // scores unchanged.
            let mut rng = StdRng::seed_from_u64(seed);
            let q = Tensor::randn(&mut rng, vec![1, 1, 8], 1.0);
            let k = Tensor::randn(&mut rng, vec![1, 1, 8], 1.0);
            let dot = |a: &Tensor, b: &Tensor| -> f32 {
                a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum()
            };
            let d0 = dot(&rope(&q, 8, 5), &rope(&k, 8, 2));
            let d1 = dot(&rope(&q, 8, 5 + shift), &rope(&k, 8, 2 + shift));
            prop_assert!((d0 - d1).abs() < 1e-3, "{d0} vs {d1}");
        }
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = Tensor::randn(&mut rng, vec![1, 1, 8], 1.0);
        assert!(rope(&t, 8, 0).approx_eq(&t, 1e-6));
    }

    #[test]
    fn rope_base_offset_matches_position() {
        // rope over [L=2] at base 3 must equal per-row rope at bases 3, 4.
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, vec![1, 2, 8], 1.0);
        let whole = rope(&t, 4, 3);
        let row0 = rope(&t.slice(1, 0, 1), 4, 3);
        let row1 = rope(&t.slice(1, 1, 1), 4, 4);
        assert!(whole.slice(1, 0, 1).approx_eq(&row0, 1e-6));
        assert!(whole.slice(1, 1, 1).approx_eq(&row1, 1e-6));
    }

    #[test]
    fn rope_rows_uniform_bases_bitwise_equals_rope() {
        let mut rng = StdRng::seed_from_u64(12);
        let t = Tensor::randn(&mut rng, vec![3, 2, 8], 1.0);
        let uniform = rope_rows(&t, 4, &[7, 7, 7]);
        assert_eq!(uniform.data(), rope(&t, 4, 7).data());
    }

    #[test]
    fn rope_rows_rotates_each_row_at_its_own_base() {
        // Ragged bases must match slicing each row out and applying the
        // uniform rope at that row's base — bitwise, since per-element
        // arithmetic is identical.
        let mut rng = StdRng::seed_from_u64(13);
        let t = Tensor::randn(&mut rng, vec![2, 3, 8], 1.0);
        let ragged = rope_rows(&t, 4, &[0, 11]);
        for (bi, base) in [(0usize, 0usize), (1, 11)] {
            let row = rope(&t.slice(0, bi, 1), 4, base);
            assert_eq!(ragged.slice(0, bi, 1).data(), row.data(), "row {bi}");
        }
    }

    #[test]
    #[should_panic(expected = "one position base per batch row")]
    fn rope_rows_checks_base_count() {
        let _ = rope_rows(&Tensor::zeros(vec![2, 1, 4]), 4, &[0]);
    }

    #[test]
    fn rope_is_head_local() {
        // Rotating a two-head tensor equals rotating each head separately.
        let mut rng = StdRng::seed_from_u64(8);
        let t = Tensor::randn(&mut rng, vec![1, 2, 8], 1.0);
        let both = rope(&t, 4, 9);
        let h0 = rope(&t.slice(2, 0, 4), 4, 9);
        let h1 = rope(&t.slice(2, 4, 4), 4, 9);
        assert!(both.slice(2, 0, 4).approx_eq(&h0, 1e-6));
        assert!(both.slice(2, 4, 4).approx_eq(&h1, 1e-6));
    }

    #[test]
    #[should_panic(expected = "even d_head")]
    fn rope_rejects_odd_head_dim() {
        let _ = rope(&Tensor::zeros(vec![1, 1, 3]), 3, 0);
    }

    #[test]
    fn blocked_matches_naive_oracle_bitwise() {
        // Sizes crossing the NB/MR tile boundaries and k % 4 remainders.
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 13, 9), (4, 4, 129), (5, 130, 131), (33, 17, 257)] {
            let a = Tensor::randn(&mut rng, vec![m, k], 1.0);
            let b = Tensor::randn(&mut rng, vec![k, n], 1.0);
            let blocked = matmul(&a, &b);
            let naive = matmul_naive(&a, &b);
            assert_eq!(blocked.max_abs_diff(&naive), 0.0, "({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_cols_matches_full_product() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Tensor::randn(&mut rng, vec![6, 10], 1.0);
        let b = Tensor::randn(&mut rng, vec![10, 12], 1.0);
        let full = matmul(&a, &b);
        for (c0, cn) in [(0, 12), (0, 3), (5, 7), (11, 1)] {
            let cols = matmul_cols(&a, &b, c0, cn);
            assert_eq!(cols.max_abs_diff(&full.slice(1, c0, cn)), 0.0, "cols {c0}+{cn}");
        }
    }

    #[test]
    fn matmul_acc_rows_chunked_contraction_is_bitwise_exact() {
        // Accumulating ascending k-chunks must reproduce the monolithic
        // product bit-for-bit — the invariant the looped collectives use.
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn(&mut rng, vec![5, 12], 1.0);
        let b = Tensor::randn(&mut rng, vec![12, 7], 1.0);
        let full = matmul(&a, &b);
        for chunk in [1usize, 2, 3, 4, 6, 12] {
            let mut acc = Tensor::zeros(vec![5, 7]);
            let mut k0 = 0;
            while k0 < 12 {
                let kc = chunk.min(12 - k0);
                matmul_acc_rows(&a.slice(1, k0, kc), &b, k0, &mut acc);
                k0 += kc;
            }
            assert_eq!(acc.max_abs_diff(&full), 0.0, "chunk {chunk}");
        }
    }

    #[test]
    fn matmul_into_cols_assembles_column_blocks() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = Tensor::randn(&mut rng, vec![4, 9], 1.0);
        let b = Tensor::randn(&mut rng, vec![9, 10], 1.0);
        let full = matmul(&a, &b);
        let mut out = Tensor::zeros(vec![4, 10]);
        for c0 in [6, 0, 3] {
            matmul_into_cols(&a, &b.slice(1, c0, 3), &mut out, c0);
        }
        matmul_into_cols(&a, &b.slice(1, 9, 1), &mut out, 9);
        assert_eq!(out.max_abs_diff(&full), 0.0);
    }

    #[test]
    fn kernel_knob_roundtrips() {
        let _guard = KNOB_TEST_LOCK.lock().unwrap();
        assert_eq!(matmul_kernel(), MatmulKernel::Simd, "Simd is the default tier");
        for kernel in [MatmulKernel::Blocked, MatmulKernel::Naive, MatmulKernel::Simd] {
            set_matmul_kernel(kernel);
            assert_eq!(matmul_kernel(), kernel);
        }
    }

    #[test]
    fn simd_toggle_forces_the_blocked_fallback() {
        let _guard = KNOB_TEST_LOCK.lock().unwrap();
        let initial = simd_enabled();
        set_simd_enabled(false);
        assert!(!simd_active(), "disabled SIMD must not be active");
        set_simd_enabled(true);
        assert_eq!(simd_active(), crate::simd::supported());
        // Restore the ESTI_DISABLE_SIMD-derived state for later tests.
        set_simd_enabled(initial);
    }

    proptest! {
        #[test]
        fn prop_blocked_equals_naive(seed in 0u64..200, m in 1usize..9, k in 1usize..40, n in 1usize..40) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&mut rng, vec![m, k], 1.0);
            let b = Tensor::randn(&mut rng, vec![k, n], 1.0);
            prop_assert_eq!(matmul(&a, &b).max_abs_diff(&matmul_naive(&a, &b)), 0.0);
        }
    }
}
