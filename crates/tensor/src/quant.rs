//! AQT-style int8 weight quantization (Section 3.6).
//!
//! Weights are stored as `i8` with one symmetric `f32` scale per *output
//! channel* (matrix column). This halves weight bytes relative to bf16 —
//! the memory-time saving that drives the paper's low-latency int8 results —
//! while matmul arithmetic stays in floating point, matching "the matmuls
//! still use bfloat16 arithmetic" (Section 4.4).
//!
//! The GEMM family here mirrors the f32 kernels in [`crate::ops`]: an
//! AVX2 SIMD tier that widens int8 panels with vector converts and folds
//! the per-column scale once at tile store, a register-tiled blocked core
//! with f32 accumulators (int8 values widened to f32 one rhs panel at a
//! time), a scalar oracle kernel — all selectable through the same
//! [`crate::ops::set_matmul_kernel`] knob — and chunk-safe
//! `matmul_cols` / `matmul_acc_rows` / `matmul_into_cols` variants so
//! quantized weights compose with the looped-collective overlap paths.
//! Every kernel accumulates each output element by one serial chain of adds
//! in strictly ascending `k` order, and the per-column scale is applied
//! exactly once after the full contraction (folding it at tile store over a
//! zeroed target is the same arithmetic) — so splitting the contraction
//! (or the column range) into chunks, switching kernel tiers, or splitting
//! output rows across chip workers reproduces the monolithic result
//! bit-for-bit.

use crate::ops::{matmul_kernel, MatmulKernel};
use crate::Tensor;

/// A rank-2 weight matrix stored as int8 with per-column scales.
///
/// # Examples
///
/// ```
/// use esti_tensor::{QuantizedMatrix, Tensor};
///
/// let w = Tensor::from_vec(vec![2, 2], vec![0.1, -2.0, 0.2, 1.0]);
/// let q = QuantizedMatrix::quantize(&w);
/// assert!(q.dequantize().approx_eq(&w, 0.02));
/// assert_eq!(q.storage_bytes(), 2 * 2 + 2 * 4); // i8 data + f32 scales
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major int8 values.
    values: Vec<i8>,
    /// One scale per column; `w[i][j] ≈ values[i][j] * scales[j]`.
    scales: Vec<f32>,
}

/// Column width of one register tile (matches the f32 kernel in `ops`).
const NR: usize = 32;
/// Accumulator rows per register tile.
const MR: usize = 4;

/// Full-tile int8 microkernel over a pre-widened rhs panel:
/// `out[i..i+MR, j..j+NR] += a[i..i+MR, :] × panel`, where `panel` holds the
/// int8 block `v[:, j..j+NR]` already widened to f32 (row `kk` at
/// `panel[kk*NR..]`). Unscaled — callers apply the per-column scale once
/// after the full contraction. Accumulation order is identical to the f32
/// tile: one serial chain of adds per output element, strictly ascending `k`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn qmm_tile_full(
    ad: &[f32],
    a_stride: usize,
    panel: &[f32],
    out: &mut [f32],
    o_stride: usize,
    i: usize,
    j: usize,
    k: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        let o0 = (i + r) * o_stride + j;
        row.copy_from_slice(&out[o0..o0 + NR]);
    }
    for kk in 0..k {
        // Vetted: `[..NR]` fixes the slice length to NR before the
        // conversion; the dequant panel is packed in NR-wide rows.
        #[allow(clippy::expect_used)]
        let brow: &[f32; NR] = panel[kk * NR..][..NR].try_into().expect("NR panel row");
        for (r, row) in acc.iter_mut().enumerate() {
            let av = ad[(i + r) * a_stride + kk];
            for (x, &bv) in row.iter_mut().zip(brow) {
                *x += av * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        let o0 = (i + r) * o_stride + j;
        out[o0..o0 + NR].copy_from_slice(row);
    }
}

/// Edge-tile int8 microkernel for the `m % MR` / `n % NR` remainders:
/// identical accumulation order to [`qmm_tile_full`] with runtime bounds
/// (panel row `kk` at `panel[kk*nr..]`).
#[allow(clippy::too_many_arguments)]
fn qmm_tile_edge(
    ad: &[f32],
    a_stride: usize,
    panel: &[f32],
    out: &mut [f32],
    o_stride: usize,
    i: usize,
    j: usize,
    k: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        let o0 = (i + r) * o_stride + j;
        row[..nr].copy_from_slice(&out[o0..o0 + nr]);
    }
    for kk in 0..k {
        let brow = &panel[kk * nr..][..nr];
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            let av = ad[(i + r) * a_stride + kk];
            for (x, &bv) in row[..nr].iter_mut().zip(brow) {
                *x += av * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        let o0 = (i + r) * o_stride + j;
        out[o0..o0 + nr].copy_from_slice(&row[..nr]);
    }
}

/// Register-tiled int8 GEMM core accumulating `out += a × values` (unscaled),
/// with explicit strides so callers can address sub-blocks of larger
/// matrices without copying — the int8 twin of `ops::mm_kernel`. Each
/// `NR`-wide column block of the int8 rhs is widened to an f32 panel *once*
/// and reused by every row tile, so the i8→f32 conversion costs `O(k·n)`
/// instead of `O(m·k·n / MR)`; widening is pure precomputation, so the
/// per-element accumulation chains are unchanged.
#[allow(clippy::too_many_arguments)]
fn qmm_kernel(
    ad: &[f32],
    a_stride: usize,
    vd: &[i8],
    v_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut panel = vec![0.0f32; k * NR];
    let mut j = 0;
    while j < n {
        let nr = NR.min(n - j);
        for kk in 0..k {
            let src = &vd[kk * v_stride + j..][..nr];
            for (x, &v) in panel[kk * nr..kk * nr + nr].iter_mut().zip(src) {
                *x = f32::from(v);
            }
        }
        let panel = &panel[..k * nr];
        let mut i = 0;
        if nr == NR {
            while i + MR <= m {
                qmm_tile_full(ad, a_stride, panel, out, o_stride, i, j, k);
                i += MR;
            }
        }
        while i < m {
            let mr = MR.min(m - i);
            qmm_tile_edge(ad, a_stride, panel, out, o_stride, i, j, k, mr, nr);
            i += mr;
        }
        j += NR;
    }
}

/// The scalar oracle kernel: plain i-k-j accumulation over strided
/// sub-blocks, unscaled. Unlike the f32 oracle this has no `av == 0.0`
/// skip — the branch was near-never taken on real activations and poisoned
/// the hot loop. For dense blocks (`a_stride == k`, `v_stride == o_stride
/// == n`) this is the historical oracle's exact loop, bit for bit.
#[allow(clippy::too_many_arguments)]
fn qmm_scalar_kernel(
    ad: &[f32],
    a_stride: usize,
    vd: &[i8],
    v_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let arow = &ad[i * a_stride..i * a_stride + k];
        let orow = &mut out[i * o_stride..i * o_stride + n];
        for (kk, &av) in arow.iter().enumerate() {
            let vrow = &vd[kk * v_stride..kk * v_stride + n];
            for (o, &wv) in orow.iter_mut().zip(vrow) {
                *o += av * f32::from(wv);
            }
        }
    }
}

/// Strided int8 GEMM dispatch: resolves the process-wide kernel knob (AVX2
/// SIMD when active, blocked or scalar-oracle otherwise), splits output
/// rows across the calling thread's chip worker pool when one is installed
/// ([`crate::pool::with_worker_pool`]), and applies the per-column `scales`
/// exactly once after each element's full contraction — folded at tile
/// store on the SIMD path, as a post-pass on the scalar paths; both require
/// and assume a zeroed target, which every scaled entry point guarantees.
/// `scales: None` leaves the accumulation unscaled (the
/// [`QuantizedMatrix::matmul_acc_rows`] contraction-chunk protocol, paired
/// with one deferred [`QuantizedMatrix::apply_scales`]).
#[allow(clippy::too_many_arguments)]
fn qmm_dispatch(
    ad: &[f32],
    a_stride: usize,
    vd: &[i8],
    v_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
    scales: Option<&[f32]>,
) {
    let naive = matmul_kernel() == MatmulKernel::Naive;
    let simd = crate::ops::simd_active();
    crate::pool::partition_rows(m, k, n, out, o_stride, |r0, rows, band| {
        let a = &ad[r0 * a_stride..];
        if simd {
            crate::simd::mm_i8(a, a_stride, vd, v_stride, band, o_stride, rows, k, n, scales);
            return;
        }
        if naive {
            qmm_scalar_kernel(a, a_stride, vd, v_stride, band, o_stride, rows, k, n);
        } else {
            qmm_kernel(a, a_stride, vd, v_stride, band, o_stride, rows, k, n);
        }
        if let Some(s) = scales {
            for r in 0..rows {
                let orow = &mut band[r * o_stride..r * o_stride + n];
                for (o, &sv) in orow.iter_mut().zip(s) {
                    *o *= sv;
                }
            }
        }
    });
}

impl QuantizedMatrix {
    /// Quantizes a rank-2 tensor symmetrically per output channel (column).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2.
    #[must_use]
    pub fn quantize(w: &Tensor) -> Self {
        assert_eq!(w.rank(), 2, "quantize requires a rank-2 weight matrix");
        let (rows, cols) = (w.dim(0), w.dim(1));
        let mut scales = vec![0.0f32; cols];
        for i in 0..rows {
            for (j, s) in scales.iter_mut().enumerate() {
                *s = s.max(w.data()[i * cols + j].abs());
            }
        }
        for s in &mut scales {
            *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
        }
        let mut values = vec![0i8; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let q = (w.data()[i * cols + j] / scales[j]).round();
                values[i * cols + j] = q.clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedMatrix { rows, cols, values, scales }
    }

    /// Reassembles a matrix from raw parts — the receive side of the
    /// quantized wire format (int8 values + per-column f32 scales).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or `scales.len() != cols`.
    #[must_use]
    pub fn from_parts(rows: usize, cols: usize, values: Vec<i8>, scales: Vec<f32>) -> Self {
        assert_eq!(values.len(), rows * cols, "values length mismatch");
        assert_eq!(scales.len(), cols, "scales length mismatch");
        QuantizedMatrix { rows, cols, values, scales }
    }

    /// Number of rows (input channels).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (output channels).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-column scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The raw row-major int8 values — the payload the quantized collectives
    /// move on the wire.
    #[must_use]
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Reconstructs the floating-point matrix.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[i * self.cols + j] =
                    f32::from(self.values[i * self.cols + j]) * self.scales[j];
            }
        }
        Tensor::from_vec(vec![self.rows, self.cols], out)
    }

    /// Multiplies activations by the quantized matrix: `x [m, rows] → [m, cols]`.
    ///
    /// Accumulates in f32 over the int8 values, applying the column scale
    /// once per output — the standard inference dataflow for weight-only
    /// quantization. Dispatches through [`crate::ops::matmul_kernel`]: the
    /// AVX2 SIMD kernel when active, the blocked kernel, or the scalar
    /// oracle. All accumulate in strictly ascending `k` order and are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 or its inner dimension mismatches.
    #[must_use]
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "quantized matmul lhs must be rank-2");
        assert_eq!(x.dim(1), self.rows, "quantized matmul inner dimension mismatch");
        let m = x.dim(0);
        let mut out = Tensor::zeros(vec![m, self.cols]);
        qmm_dispatch(
            x.data(),
            self.rows,
            &self.values,
            self.cols,
            out.data_mut(),
            self.cols,
            m,
            self.rows,
            self.cols,
            Some(&self.scales),
        );
        out
    }

    /// [`Self::matmul`] writing into a preallocated `[m, cols]` output,
    /// overwriting its contents — avoids the per-call allocation in steady
    /// state decode loops.
    ///
    /// # Panics
    ///
    /// Panics on rank or shape mismatch between `x`, `self`, and `out`.
    pub fn matmul_into(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.rank(), 2, "quantized matmul lhs must be rank-2");
        assert_eq!(x.dim(1), self.rows, "quantized matmul inner dimension mismatch");
        let m = x.dim(0);
        assert_eq!(out.rank(), 2, "matmul_into output must be rank-2");
        assert_eq!(out.dim(0), m, "matmul_into output row mismatch");
        assert_eq!(out.dim(1), self.cols, "matmul_into output col mismatch");
        out.data_mut().fill(0.0);
        qmm_dispatch(
            x.data(),
            self.rows,
            &self.values,
            self.cols,
            out.data_mut(),
            self.cols,
            m,
            self.rows,
            self.cols,
            Some(&self.scales),
        );
    }

    /// Rank-3 batched product: `x [b, l, rows] → [b, l, cols]`, contracting
    /// the trailing dim against the matrix without reshape copies. The
    /// batched form the runtime's `[batch, seq, features]` einsums use.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 3 or its trailing dimension mismatches.
    #[must_use]
    pub fn matmul3(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 3, "matmul3 lhs must be rank-3");
        assert_eq!(x.dim(2), self.rows, "matmul3 inner dimension mismatch");
        let (b, l) = (x.dim(0), x.dim(1));
        let m = b * l;
        let mut out = Tensor::zeros(vec![b, l, self.cols]);
        // Scaled over the flat [m, cols] view.
        qmm_dispatch(
            x.data(),
            self.rows,
            &self.values,
            self.cols,
            out.data_mut(),
            self.cols,
            m,
            self.rows,
            self.cols,
            Some(&self.scales),
        );
        out
    }

    /// `x × self[:, c0..c0+cn]` without materializing the column slice:
    /// equals [`Self::matmul`] restricted to those columns, bit-for-bit
    /// (scales are per-column, so a column chunk is self-contained).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if the column range exceeds `cols`.
    #[must_use]
    pub fn matmul_cols(&self, x: &Tensor, c0: usize, cn: usize) -> Tensor {
        assert_eq!(x.rank(), 2, "matmul_cols lhs must be rank-2");
        assert_eq!(x.dim(1), self.rows, "matmul_cols inner dimension mismatch");
        assert!(c0 + cn <= self.cols, "column range {c0}+{cn} exceeds {}", self.cols);
        let m = x.dim(0);
        let mut out = vec![0.0f32; m * cn];
        qmm_dispatch(
            x.data(),
            self.rows,
            &self.values[c0..],
            self.cols,
            &mut out,
            cn,
            m,
            self.rows,
            cn,
            Some(&self.scales[c0..c0 + cn]),
        );
        Tensor::from_vec(vec![m, cn], out)
    }

    /// Writes the *scaled* product `x × self` into columns
    /// `[c0, c0 + cols)` of a wider output, in place — the fused
    /// scale-on-arrival step of the weight-gathered overlap loop. The target
    /// column range must contain zeros (the scale is applied in place after
    /// the unscaled accumulation).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if the column range exceeds the output.
    pub fn matmul_into_cols(&self, x: &Tensor, out: &mut Tensor, c0: usize) {
        assert_eq!(x.rank(), 2, "matmul_into_cols lhs must be rank-2");
        assert_eq!(x.dim(1), self.rows, "matmul_into_cols inner dimension mismatch");
        assert_eq!(out.rank(), 2, "matmul_into_cols output must be rank-2");
        assert_eq!(out.dim(0), x.dim(0), "matmul_into_cols output row mismatch");
        let n_out = out.dim(1);
        assert!(c0 + self.cols <= n_out, "column range {c0}+{} exceeds {n_out}", self.cols);
        let m = x.dim(0);
        qmm_dispatch(
            x.data(),
            self.rows,
            &self.values,
            self.cols,
            &mut out.data_mut()[c0..],
            n_out,
            m,
            self.rows,
            self.cols,
            Some(&self.scales),
        );
    }

    /// Accumulates the **unscaled** partial product of `x` against the row
    /// block `self[r0..r0+x.cols, :]` into `out` — the contraction-dim
    /// chunking primitive. Because every kernel accumulates in ascending `k`
    /// order, running consecutive row chunks in order and then applying
    /// [`Self::apply_scales`] once reproduces the monolithic
    /// [`Self::matmul`] bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if the row range exceeds `rows`.
    pub fn matmul_acc_rows(&self, x: &Tensor, r0: usize, out: &mut Tensor) {
        assert_eq!(x.rank(), 2, "matmul_acc_rows lhs must be rank-2");
        let kc = x.dim(1);
        assert!(r0 + kc <= self.rows, "row range {r0}+{kc} exceeds {}", self.rows);
        assert_eq!(out.rank(), 2, "matmul_acc_rows output must be rank-2");
        assert_eq!(out.dim(0), x.dim(0), "matmul_acc_rows output row mismatch");
        assert_eq!(out.dim(1), self.cols, "matmul_acc_rows output col mismatch");
        let m = x.dim(0);
        qmm_dispatch(
            x.data(),
            kc,
            &self.values[r0 * self.cols..],
            self.cols,
            out.data_mut(),
            self.cols,
            m,
            kc,
            self.cols,
            None,
        );
    }

    /// Multiplies each column `j` of a `[*, cols]` tensor by `scales[j]` in
    /// place — the single deferred scale application paired with the
    /// unscaled [`Self::matmul_acc_rows`] accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimension of `out` is not `cols`.
    pub fn apply_scales(&self, out: &mut Tensor) {
        assert_eq!(out.dim(out.rank() - 1), self.cols, "apply_scales trailing dim mismatch");
        for row in out.data_mut().chunks_exact_mut(self.cols) {
            for (o, &s) in row.iter_mut().zip(&self.scales) {
                *o *= s;
            }
        }
    }

    /// The column block `self[:, c0..c0+cn]` as a standalone quantized
    /// matrix (values and the matching scale slice) — the chunked wire unit
    /// for column-streamed weight gathers.
    ///
    /// # Panics
    ///
    /// Panics if the column range exceeds `cols`.
    #[must_use]
    pub fn slice_cols(&self, c0: usize, cn: usize) -> Self {
        assert!(c0 + cn <= self.cols, "column range {c0}+{cn} exceeds {}", self.cols);
        let mut values = Vec::with_capacity(self.rows * cn);
        for i in 0..self.rows {
            values.extend_from_slice(&self.values[i * self.cols + c0..i * self.cols + c0 + cn]);
        }
        QuantizedMatrix { rows: self.rows, cols: cn, values, scales: self.scales[c0..c0 + cn].to_vec() }
    }

    /// The row block `self[r0..r0+rn, :]` as a standalone quantized matrix.
    /// All row blocks share the full per-column scale vector.
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds `rows`.
    #[must_use]
    pub fn slice_rows(&self, r0: usize, rn: usize) -> Self {
        assert!(r0 + rn <= self.rows, "row range {r0}+{rn} exceeds {}", self.rows);
        QuantizedMatrix {
            rows: rn,
            cols: self.cols,
            values: self.values[r0 * self.cols..(r0 + rn) * self.cols].to_vec(),
            scales: self.scales.clone(),
        }
    }

    /// Concatenates column blocks (same row count) back into one matrix —
    /// the inverse of slicing a column-sharded weight, values and scales
    /// both exact.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts disagree.
    #[must_use]
    pub fn concat_cols(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut values = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for p in parts {
                values.extend_from_slice(&p.values[i * p.cols..(i + 1) * p.cols]);
            }
        }
        let mut scales = Vec::with_capacity(cols);
        for p in parts {
            scales.extend_from_slice(&p.scales);
        }
        QuantizedMatrix { rows, cols, values, scales }
    }

    /// Concatenates row blocks that share one per-column scale vector —
    /// the inverse of [`Self::slice_rows`], used to reassemble a rank's
    /// shard from row-streamed chunks.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, column counts disagree, or the parts do
    /// not carry bit-identical scales (row blocks of one matrix always do).
    #[must_use]
    pub fn concat_rows(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "concat_rows col mismatch");
        assert!(
            parts.iter().all(|p| p.scales == parts[0].scales),
            "concat_rows requires identical per-column scales"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut values = Vec::with_capacity(rows * cols);
        for p in parts {
            values.extend_from_slice(&p.values);
        }
        QuantizedMatrix { rows, cols, values, scales: parts[0].scales.clone() }
    }

    /// Bytes occupied by the quantized representation (int8 values plus
    /// f32 scales), the quantity the memory-time model charges for.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + self.scales.len() * 4
    }

    /// Worst-case absolute quantization error for column `j`: half a step.
    #[must_use]
    pub fn max_error(&self, col: usize) -> f32 {
        self.scales[col] * 0.5
    }
}

/// Quantizes, then immediately multiplies — convenience for tests comparing
/// against the unquantized [`crate::ops::matmul`].
#[must_use]
pub fn quantized_matmul(x: &Tensor, w: &Tensor) -> Tensor {
    QuantizedMatrix::quantize(w).matmul(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_bounded_per_column() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = Tensor::randn(&mut rng, vec![16, 8], 2.0);
        let q = QuantizedMatrix::quantize(&w);
        let d = q.dequantize();
        for i in 0..16 {
            for j in 0..8 {
                let err = (w.at(&[i, j]) - d.at(&[i, j])).abs();
                assert!(err <= q.max_error(j) + 1e-6, "err {err} > bound {}", q.max_error(j));
            }
        }
    }

    #[test]
    fn zero_column_is_stable() {
        let w = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 0.0, -1.0]);
        let q = QuantizedMatrix::quantize(&w);
        assert!(q.dequantize().approx_eq(&w, 1e-6));
    }

    #[test]
    fn extreme_values_hit_127() {
        let w = Tensor::from_vec(vec![1, 1], vec![-5.0]);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.values, vec![-127]);
        assert!((q.dequantize().at(&[0, 0]) + 5.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_matches_dequantized_matmul() {
        let mut rng = StdRng::seed_from_u64(12);
        let w = Tensor::randn(&mut rng, vec![12, 6], 1.0);
        let x = Tensor::randn(&mut rng, vec![4, 12], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let fused = q.matmul(&x);
        let explicit = ops::matmul(&x, &q.dequantize());
        assert!(fused.approx_eq(&explicit, 1e-4));
    }

    #[test]
    fn quantized_matmul_close_to_fp() {
        let mut rng = StdRng::seed_from_u64(13);
        let w = Tensor::randn(&mut rng, vec![64, 32], 0.05);
        let x = Tensor::randn(&mut rng, vec![2, 64], 1.0);
        let exact = ops::matmul(&x, &w);
        let quant = quantized_matmul(&x, &w);
        // int8 noise on 64-term dot products of ~N(0, 0.05) weights.
        let scale: f32 = exact.data().iter().map(|v| v.abs()).fold(0.0, f32::max);
        assert!(quant.max_abs_diff(&exact) < 0.02 * scale.max(1.0));
    }

    #[test]
    fn storage_is_half_of_bf16_plus_scales() {
        let w = Tensor::zeros(vec![128, 64]);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.storage_bytes(), 128 * 64 + 64 * 4);
        assert!(q.storage_bytes() < 128 * 64 * 2); // beats bf16
    }

    #[test]
    fn blocked_matches_scalar_oracle_bitwise() {
        let _guard = ops::KNOB_TEST_LOCK.lock().unwrap();
        // Odd sizes exercise both edge-tile paths.
        let mut rng = StdRng::seed_from_u64(21);
        for (m, k, n) in [(1, 64, 96), (7, 33, 67), (4, 128, 32), (13, 5, 130)] {
            let w = Tensor::randn(&mut rng, vec![k, n], 0.7);
            let x = Tensor::randn(&mut rng, vec![m, k], 1.0);
            let q = QuantizedMatrix::quantize(&w);
            ops::set_matmul_kernel(ops::MatmulKernel::Naive);
            let oracle = q.matmul(&x);
            ops::set_matmul_kernel(ops::MatmulKernel::Blocked);
            let blocked = q.matmul(&x);
            assert_eq!(blocked.data(), oracle.data(), "kernel divergence at {m}x{k}x{n}");
        }
        ops::set_matmul_kernel(ops::MatmulKernel::Simd);
    }

    #[test]
    fn matmul_handles_exact_zero_activations() {
        // The old scalar loop skipped zero activations; both kernels must
        // now produce the identical (and correct) result on sparse input.
        let _guard = ops::KNOB_TEST_LOCK.lock().unwrap();
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.0, 4.0]);
        let x = Tensor::from_vec(vec![1, 2], vec![0.0, 2.0]);
        let q = QuantizedMatrix::quantize(&w);
        let full = ops::matmul(&x, &q.dequantize());
        ops::set_matmul_kernel(ops::MatmulKernel::Naive);
        let oracle = q.matmul(&x);
        ops::set_matmul_kernel(ops::MatmulKernel::Blocked);
        let blocked = q.matmul(&x);
        ops::set_matmul_kernel(ops::MatmulKernel::Simd);
        assert!(oracle.approx_eq(&full, 1e-6));
        assert_eq!(oracle.data(), blocked.data());
    }

    #[test]
    fn matmul_into_matches_matmul_and_overwrites() {
        let mut rng = StdRng::seed_from_u64(22);
        let w = Tensor::randn(&mut rng, vec![40, 24], 0.5);
        let x = Tensor::randn(&mut rng, vec![3, 40], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let expect = q.matmul(&x);
        let mut out = Tensor::from_vec(vec![3, 24], vec![7.0; 3 * 24]); // stale garbage
        q.matmul_into(&x, &mut out);
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn matmul3_matches_flattened_matmul() {
        let mut rng = StdRng::seed_from_u64(23);
        let w = Tensor::randn(&mut rng, vec![17, 39], 0.6);
        let x = Tensor::randn(&mut rng, vec![2, 3, 17], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let out3 = q.matmul3(&x);
        let flat = x.reshape(vec![6, 17]);
        let out2 = q.matmul(&flat);
        assert_eq!(out3.shape(), &[2, 3, 39]);
        assert_eq!(out3.data(), out2.data());
    }

    #[test]
    fn matmul_cols_is_bitwise_slice_of_matmul() {
        let mut rng = StdRng::seed_from_u64(24);
        let w = Tensor::randn(&mut rng, vec![19, 70], 0.8);
        let x = Tensor::randn(&mut rng, vec![5, 19], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let full = q.matmul(&x);
        for (c0, cn) in [(0, 70), (0, 35), (35, 35), (3, 64), (69, 1)] {
            let part = q.matmul_cols(&x, c0, cn);
            let reference = full.slice(1, c0, cn);
            assert_eq!(part.data(), reference.data(), "cols {c0}+{cn}");
        }
    }

    #[test]
    fn matmul_into_cols_assembles_full_product() {
        let mut rng = StdRng::seed_from_u64(25);
        let wa = Tensor::randn(&mut rng, vec![16, 33], 0.5);
        let wb = Tensor::randn(&mut rng, vec![16, 31], 0.5);
        let x = Tensor::randn(&mut rng, vec![4, 16], 1.0);
        let (qa, qb) = (QuantizedMatrix::quantize(&wa), QuantizedMatrix::quantize(&wb));
        let mut out = Tensor::zeros(vec![4, 64]);
        qa.matmul_into_cols(&x, &mut out, 0);
        qb.matmul_into_cols(&x, &mut out, 33);
        let expect = Tensor::concat(&[&qa.matmul(&x), &qb.matmul(&x)], 1);
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn acc_rows_chunked_contraction_is_bitwise_exact() {
        // Split the contraction dim at every chunking granularity; ascending
        // accumulation + one deferred scale must equal the monolithic path
        // bit-for-bit.
        let mut rng = StdRng::seed_from_u64(26);
        let w = Tensor::randn(&mut rng, vec![48, 37], 0.9);
        let x = Tensor::randn(&mut rng, vec![3, 48], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let mono = q.matmul(&x);
        for chunks in [1usize, 2, 3, 4, 6, 8] {
            let step = 48 / chunks;
            let mut acc = Tensor::zeros(vec![3, 37]);
            for c in 0..chunks {
                q.matmul_acc_rows(&x.slice(1, c * step, step), c * step, &mut acc);
            }
            q.apply_scales(&mut acc);
            assert_eq!(acc.data(), mono.data(), "chunks={chunks}");
        }
    }

    #[test]
    fn slice_and_concat_round_trip_exactly() {
        let mut rng = StdRng::seed_from_u64(27);
        let w = Tensor::randn(&mut rng, vec![10, 12], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let (ca, cb) = (q.slice_cols(0, 5), q.slice_cols(5, 7));
        let back = QuantizedMatrix::concat_cols(&[&ca, &cb]);
        assert_eq!(back, q);
        let (ra, rb) = (q.slice_rows(0, 4), q.slice_rows(4, 6));
        let rback = QuantizedMatrix::concat_rows(&[&ra, &rb]);
        assert_eq!(rback, q);
    }

    #[test]
    fn sliced_matmul_matches_sliced_dense() {
        // A column block behaves exactly like quantizing that block alone.
        let mut rng = StdRng::seed_from_u64(28);
        let w = Tensor::randn(&mut rng, vec![20, 44], 0.4);
        let x = Tensor::randn(&mut rng, vec![2, 20], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let block = q.slice_cols(8, 20);
        assert_eq!(block.matmul(&x).data(), q.matmul_cols(&x, 8, 20).data());
    }

    proptest! {
        #[test]
        fn prop_dequantize_bounded(seed in 0u64..200, std in 0.01f32..4.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::randn(&mut rng, vec![8, 5], std);
            let q = QuantizedMatrix::quantize(&w);
            let d = q.dequantize();
            for j in 0..5 {
                for i in 0..8 {
                    let err = (w.at(&[i, j]) - d.at(&[i, j])).abs();
                    prop_assert!(err <= q.max_error(j) + 1e-5);
                }
            }
        }

        #[test]
        fn prop_quantize_idempotent_on_grid(seed in 0u64..100) {
            // Quantizing an already-dequantized matrix is exact.
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::randn(&mut rng, vec![6, 3], 1.0);
            let d = QuantizedMatrix::quantize(&w).dequantize();
            let d2 = QuantizedMatrix::quantize(&d).dequantize();
            prop_assert!(d.approx_eq(&d2, 1e-5));
        }

        #[test]
        fn prop_blocked_equals_oracle(seed in 0u64..60, m in 1usize..9, k in 1usize..70, n in 1usize..70) {
            let _guard = ops::KNOB_TEST_LOCK.lock().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::randn(&mut rng, vec![k, n], 0.8);
            let x = Tensor::randn(&mut rng, vec![m, k], 1.0);
            let q = QuantizedMatrix::quantize(&w);
            ops::set_matmul_kernel(ops::MatmulKernel::Naive);
            let oracle = q.matmul(&x);
            ops::set_matmul_kernel(ops::MatmulKernel::Blocked);
            let blocked = q.matmul(&x);
            ops::set_matmul_kernel(ops::MatmulKernel::Simd);
            prop_assert_eq!(blocked.data(), oracle.data());
        }
    }
}
