//! AQT-style int8 weight quantization (Section 3.6).
//!
//! Weights are stored as `i8` with one symmetric `f32` scale per *output
//! channel* (matrix column). This halves weight bytes relative to bf16 —
//! the memory-time saving that drives the paper's low-latency int8 results —
//! while matmul arithmetic stays in floating point, matching "the matmuls
//! still use bfloat16 arithmetic" (Section 4.4).

use crate::Tensor;

/// A rank-2 weight matrix stored as int8 with per-column scales.
///
/// # Examples
///
/// ```
/// use esti_tensor::{QuantizedMatrix, Tensor};
///
/// let w = Tensor::from_vec(vec![2, 2], vec![0.1, -2.0, 0.2, 1.0]);
/// let q = QuantizedMatrix::quantize(&w);
/// assert!(q.dequantize().approx_eq(&w, 0.02));
/// assert_eq!(q.storage_bytes(), 2 * 2 + 2 * 4); // i8 data + f32 scales
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major int8 values.
    values: Vec<i8>,
    /// One scale per column; `w[i][j] ≈ values[i][j] * scales[j]`.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a rank-2 tensor symmetrically per output channel (column).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2.
    #[must_use]
    pub fn quantize(w: &Tensor) -> Self {
        assert_eq!(w.rank(), 2, "quantize requires a rank-2 weight matrix");
        let (rows, cols) = (w.dim(0), w.dim(1));
        let mut scales = vec![0.0f32; cols];
        for i in 0..rows {
            for (j, s) in scales.iter_mut().enumerate() {
                *s = s.max(w.data()[i * cols + j].abs());
            }
        }
        for s in &mut scales {
            *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
        }
        let mut values = vec![0i8; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let q = (w.data()[i * cols + j] / scales[j]).round();
                values[i * cols + j] = q.clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedMatrix { rows, cols, values, scales }
    }

    /// Number of rows (input channels).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (output channels).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-column scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the floating-point matrix.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[i * self.cols + j] =
                    f32::from(self.values[i * self.cols + j]) * self.scales[j];
            }
        }
        Tensor::from_vec(vec![self.rows, self.cols], out)
    }

    /// Multiplies activations by the quantized matrix: `x [m, rows] → [m, cols]`.
    ///
    /// Accumulates in f32 over the int8 values, applying the column scale
    /// once per output — the standard inference dataflow for weight-only
    /// quantization.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 or its inner dimension mismatches.
    #[must_use]
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "quantized matmul lhs must be rank-2");
        assert_eq!(x.dim(1), self.rows, "quantized matmul inner dimension mismatch");
        let m = x.dim(0);
        let mut out = vec![0.0f32; m * self.cols];
        for i in 0..m {
            let xrow = &x.data()[i * self.rows..(i + 1) * self.rows];
            let orow = &mut out[i * self.cols..(i + 1) * self.cols];
            for (k, &xv) in xrow.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let wrow = &self.values[k * self.cols..(k + 1) * self.cols];
                for (o, &wv) in orow.iter_mut().zip(wrow) {
                    *o += xv * f32::from(wv);
                }
            }
            for (o, &s) in orow.iter_mut().zip(&self.scales) {
                *o *= s;
            }
        }
        Tensor::from_vec(vec![m, self.cols], out)
    }

    /// Bytes occupied by the quantized representation (int8 values plus
    /// f32 scales), the quantity the memory-time model charges for.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + self.scales.len() * 4
    }

    /// Worst-case absolute quantization error for column `j`: half a step.
    #[must_use]
    pub fn max_error(&self, col: usize) -> f32 {
        self.scales[col] * 0.5
    }
}

/// Quantizes, then immediately multiplies — convenience for tests comparing
/// against the unquantized [`crate::ops::matmul`].
#[must_use]
pub fn quantized_matmul(x: &Tensor, w: &Tensor) -> Tensor {
    QuantizedMatrix::quantize(w).matmul(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_bounded_per_column() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = Tensor::randn(&mut rng, vec![16, 8], 2.0);
        let q = QuantizedMatrix::quantize(&w);
        let d = q.dequantize();
        for i in 0..16 {
            for j in 0..8 {
                let err = (w.at(&[i, j]) - d.at(&[i, j])).abs();
                assert!(err <= q.max_error(j) + 1e-6, "err {err} > bound {}", q.max_error(j));
            }
        }
    }

    #[test]
    fn zero_column_is_stable() {
        let w = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 0.0, -1.0]);
        let q = QuantizedMatrix::quantize(&w);
        assert!(q.dequantize().approx_eq(&w, 1e-6));
    }

    #[test]
    fn extreme_values_hit_127() {
        let w = Tensor::from_vec(vec![1, 1], vec![-5.0]);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.values, vec![-127]);
        assert!((q.dequantize().at(&[0, 0]) + 5.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_matches_dequantized_matmul() {
        let mut rng = StdRng::seed_from_u64(12);
        let w = Tensor::randn(&mut rng, vec![12, 6], 1.0);
        let x = Tensor::randn(&mut rng, vec![4, 12], 1.0);
        let q = QuantizedMatrix::quantize(&w);
        let fused = q.matmul(&x);
        let explicit = ops::matmul(&x, &q.dequantize());
        assert!(fused.approx_eq(&explicit, 1e-4));
    }

    #[test]
    fn quantized_matmul_close_to_fp() {
        let mut rng = StdRng::seed_from_u64(13);
        let w = Tensor::randn(&mut rng, vec![64, 32], 0.05);
        let x = Tensor::randn(&mut rng, vec![2, 64], 1.0);
        let exact = ops::matmul(&x, &w);
        let quant = quantized_matmul(&x, &w);
        // int8 noise on 64-term dot products of ~N(0, 0.05) weights.
        let scale: f32 = exact.data().iter().map(|v| v.abs()).fold(0.0, f32::max);
        assert!(quant.max_abs_diff(&exact) < 0.02 * scale.max(1.0));
    }

    #[test]
    fn storage_is_half_of_bf16_plus_scales() {
        let w = Tensor::zeros(vec![128, 64]);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.storage_bytes(), 128 * 64 + 64 * 4);
        assert!(q.storage_bytes() < 128 * 64 * 2); // beats bf16
    }

    proptest! {
        #[test]
        fn prop_dequantize_bounded(seed in 0u64..200, std in 0.01f32..4.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::randn(&mut rng, vec![8, 5], std);
            let q = QuantizedMatrix::quantize(&w);
            let d = q.dequantize();
            for j in 0..5 {
                for i in 0..8 {
                    let err = (w.at(&[i, j]) - d.at(&[i, j])).abs();
                    prop_assert!(err <= q.max_error(j) + 1e-5);
                }
            }
        }

        #[test]
        fn prop_quantize_idempotent_on_grid(seed in 0u64..100) {
            // Quantizing an already-dequantized matrix is exact.
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::randn(&mut rng, vec![6, 3], 1.0);
            let d = QuantizedMatrix::quantize(&w).dequantize();
            let d2 = QuantizedMatrix::quantize(&d).dequantize();
            prop_assert!(d.approx_eq(&d2, 1e-5));
        }
    }
}
