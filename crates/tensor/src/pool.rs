//! Deterministic intra-chip worker pool (ROADMAP item 5).
//!
//! A [`ChipPool`] is a small set of persistent OS threads that one
//! *simulated chip* uses to parallelize its GEMM kernels. The runtime
//! installs a chip's pool on the chip's executor thread
//! ([`with_worker_pool`]); the kernel dispatchers in [`crate::ops`] and
//! [`crate::quant`] then split each matmul's **output rows** into disjoint
//! bands, one band per worker.
//!
//! # Determinism contract
//!
//! Row-banded partitioning never changes arithmetic: every output element
//! is computed by exactly one worker, running exactly the serial kernel on
//! its band — the same single chain of mul-then-add steps in strictly
//! ascending `k` order the serial path runs. Band boundaries only decide
//! *who* computes an element, never *how*, so results are bit-identical
//! for every worker count (including no pool at all). The conformance
//! suite asserts this for 1, 2, and N workers.
//!
//! The pool is std-only (mpsc channels plus a `Mutex`/`Condvar` latch):
//! the workspace vendors no concurrency crates.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A type-erased unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send>;

/// Completion latch for one [`ChipPool::run`] call: counts outstanding
/// tasks down to zero and carries the first panic payload, if any.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Latch {
        Latch { state: Mutex::new(LatchState { remaining, panic: None }), cv: Condvar::new() }
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.remaining -= 1;
        if s.panic.is_none() {
            s.panic = panic;
        }
        if s.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while s.remaining > 0 {
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        s.panic.take()
    }
}

/// A persistent pool of worker threads owned by one simulated chip.
///
/// [`ChipPool::run`] blocks the calling (chip) thread until every task has
/// finished, so tasks may borrow the caller's stack — the scoped-pool
/// pattern — while the workers themselves live for the pool's lifetime
/// (no per-matmul thread spawns on the decode hot path).
///
/// # Examples
///
/// ```
/// use esti_tensor::pool::ChipPool;
///
/// let pool = ChipPool::new(2);
/// let mut halves = [0u64, 0u64];
/// let (a, b) = halves.split_at_mut(1);
/// pool.run(vec![
///     Box::new(|| a[0] = (0..50u64).sum()),
///     Box::new(|| b[0] = (50..100u64).sum()),
/// ]);
/// assert_eq!(halves[0] + halves[1], (0..100u64).sum());
/// ```
pub struct ChipPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ChipPool {
    /// Spawns a pool of `workers` persistent threads (`workers >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(workers: usize) -> ChipPool {
        assert!(workers >= 1, "a chip pool needs at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let builder = std::thread::Builder::new().name(format!("esti-chip-worker-{w}"));
            let handle = match builder.spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }) {
                Ok(h) => h,
                Err(e) => panic!("failed to spawn chip worker thread: {e}"),
            };
            senders.push(tx);
            handles.push(handle);
        }
        ChipPool { senders, handles }
    }

    /// Number of worker threads — the row-band count kernels split over.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Runs `tasks` across the workers (round-robin) and blocks until all
    /// of them have completed. Tasks may borrow from the caller's scope.
    ///
    /// # Panics
    ///
    /// If a task panics, the first payload is re-raised on the caller
    /// *after* every other task has finished — workers never hold borrows
    /// past this call.
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let mut lost_worker = false;
        for (i, task) in tasks.into_iter().enumerate() {
            if lost_worker {
                // Account for the undispatched task so `wait` terminates.
                latch.complete(None);
                continue;
            }
            let latch_t = Arc::clone(&latch);
            let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                latch_t.complete(result.err());
            });
            // SAFETY: the job borrows only for 'scope; this call does not
            // return until the latch has counted every dispatched job
            // complete (including the lost-worker path below), so no worker
            // can touch the borrow after `run` returns. Erasing the
            // lifetime to ship the job through the 'static channel is the
            // standard scoped-pool argument.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped)
            };
            if let Err(e) = self.senders[i % self.senders.len()].send(job) {
                // The worker's receiver is gone (thread died). The failed
                // send hands the job back inside the error; dropping it
                // without running it means completing its latch slot here.
                drop(e);
                latch.complete(None);
                lost_worker = true;
            }
        }
        let panic = latch.wait();
        assert!(!lost_worker, "chip pool lost a worker thread");
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ChipPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

thread_local! {
    /// The pool the *current thread's* kernel calls parallelize over.
    static ACTIVE: RefCell<Option<Arc<ChipPool>>> = const { RefCell::new(None) };
}

/// Runs `f` with `pool` installed as the calling thread's active worker
/// pool; kernel dispatchers ([`crate::ops::matmul`] and the int8 GEMMs)
/// split their output rows across it for the duration. The previous
/// installation is restored on exit, panic or not. `None` forces the
/// serial path (useful to scope a region back to one thread).
pub fn with_worker_pool<R>(pool: Option<Arc<ChipPool>>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<ChipPool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| a.borrow_mut().take());
    ACTIVE.with(|a| *a.borrow_mut() = pool);
    let _restore = Restore(prev);
    f()
}

/// The row-band count a kernel on this thread would split over (1 = no
/// pool installed — the serial path).
#[must_use]
pub fn active_workers() -> usize {
    ACTIVE.with(|a| a.borrow().as_ref().map_or(1, |p| p.workers()))
}

/// Multiply-accumulate ops below which a band is not worth a dispatch:
/// tiny decode-step matmuls stay serial rather than paying the latch.
const MIN_BAND_MACS: usize = 16 * 1024;

/// Splits the `m` output rows of a strided GEMM into disjoint bands — one
/// per active worker — and runs `body(r0, rows, band)` on each, where
/// `band` is the output sub-slice starting at row `r0`. With no pool
/// installed (or too little work) this is exactly one serial `body` call.
///
/// Each element of `out` is written by exactly one band, and `body` runs
/// the identical serial kernel on every band, so the result is
/// bit-identical at any worker count (see the module docs).
pub(crate) fn partition_rows<F>(m: usize, k: usize, n: usize, out: &mut [f32], o_stride: usize, body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let pool = ACTIVE.with(|a| a.borrow().clone());
    let workers = pool.as_ref().map_or(1, |p| p.workers());
    let max_bands = if k == 0 || n == 0 { 1 } else { (m * k * n / MIN_BAND_MACS).max(1) };
    let bands = workers.min(m.max(1)).min(max_bands);
    let Some(pool) = pool.filter(|_| bands > 1) else {
        body(0, m, out);
        return;
    };
    let per = m.div_ceil(bands);
    let body = &body;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bands);
    let mut rest = out;
    let mut r0 = 0;
    while r0 < m {
        let rows = per.min(m - r0);
        // A band owns rows [r0, r0 + rows); the final band keeps the
        // buffer's tail so a short last output row stays addressable.
        let take = if r0 + rows < m { rows * o_stride } else { rest.len() };
        let (band, tail) = rest.split_at_mut(take);
        rest = tail;
        tasks.push(Box::new(move || body(r0, rows, band)));
        r0 += rows;
    }
    pool.run(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_every_task_and_blocks_until_done() {
        let pool = ChipPool::new(3);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..10)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let pool = ChipPool::new(2);
        for round in 0..5 {
            let mut out = vec![0usize; 4];
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut rest = out.as_mut_slice();
            for i in 0..4 {
                let (cell, tail) = rest.split_at_mut(1);
                rest = tail;
                tasks.push(Box::new(move || cell[0] = round + i));
            }
            pool.run(tasks);
            assert_eq!(out, vec![round, round + 1, round + 2, round + 3]);
        }
    }

    #[test]
    fn panic_in_a_task_propagates_after_the_rest_finish() {
        let pool = ChipPool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let d = &done;
            pool.run(vec![
                Box::new(|| panic!("task boom")),
                Box::new(move || {
                    d.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(done.load(Ordering::SeqCst), 1, "healthy tasks still ran");
        // The pool survives a panicking task.
        let ok = AtomicUsize::new(0);
        let o = &ok;
        pool.run(vec![Box::new(move || {
            o.fetch_add(1, Ordering::SeqCst);
        })]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn with_worker_pool_installs_and_restores() {
        assert_eq!(active_workers(), 1);
        let pool = Arc::new(ChipPool::new(4));
        with_worker_pool(Some(Arc::clone(&pool)), || {
            assert_eq!(active_workers(), 4);
            // Nested install shadows, then restores, the outer pool.
            with_worker_pool(None, || assert_eq!(active_workers(), 1));
            assert_eq!(active_workers(), 4);
        });
        assert_eq!(active_workers(), 1);
    }

    #[test]
    fn partition_rows_covers_every_row_exactly_once() {
        let pool = Arc::new(ChipPool::new(3));
        with_worker_pool(Some(pool), || {
            let (m, n) = (103, 40);
            // Enough work to clear the MIN_BAND_MACS cutoff.
            let k = 8;
            let mut out = vec![0.0f32; m * n];
            partition_rows(m, k, n, &mut out, n, |r0, rows, band| {
                for r in 0..rows {
                    for c in 0..n {
                        band[r * n + c] += (r0 + r) as f32;
                    }
                }
            });
            for r in 0..m {
                for c in 0..n {
                    assert_eq!(out[r * n + c], r as f32, "row {r} col {c}");
                }
            }
        });
    }

    #[test]
    fn partition_rows_serial_without_a_pool() {
        let mut out = vec![0.0f32; 6];
        let calls = AtomicUsize::new(0);
        partition_rows(3, 100, 2, &mut out, 2, |r0, rows, _band| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!((r0, rows), (0, 3));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
