//! Minimal dense tensor library for the `esti` inference-scaling simulator.
//!
//! The functional runtime (`esti-runtime`) executes *actual* partitioned
//! Transformer forward passes to prove the paper's sharding algebra correct.
//! This crate supplies the numeric substrate for that: a row-major `f32`
//! [`Tensor`], the handful of operators a PaLM-style decoder needs
//! ([`ops`]: matmul, softmax — including the log-base-2 fast path of
//! Section 3.5 — layernorm, SwiGLU), AQT-style per-channel int8 weight
//! quantization ([`quant`], Section 3.6), bf16 storage emulation ([`bf16`]),
//! and the top-k/top-p decode samplers of Section 3.5 ([`sample`]).
//!
//! Everything is dependency-light and portable. The GEMM core dispatches
//! to explicit AVX2 SIMD kernels with runtime feature detection (scalar
//! tiers remain as bitwise oracles — see [`ops::set_matmul_kernel`]) and
//! can split output rows across a deterministic per-chip worker pool
//! ([`pool`]); both paths are bit-identical to the serial scalar kernels.
//!
//! # Examples
//!
//! ```
//! use esti_tensor::{ops, Tensor};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::eye(3);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c, a);
//! ```

// Panic discipline: library code must not `unwrap`/`expect` its way past
// conditions a caller could plausibly trigger — those get shape-checked
// asserts with messages. The vetted remainder (infallible numeric
// invariants) carries targeted, justified `allow`s at each site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bf16;
pub mod ops;
pub mod pool;
pub mod quant;
pub mod sample;
mod simd;
pub mod tensor;

pub use quant::QuantizedMatrix;
pub use tensor::Tensor;
