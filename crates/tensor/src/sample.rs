//! Decode-time token sampling: greedy, temperature, top-k and top-p.
//!
//! Section 3.5 lists "faster top-k/top-p implementations for decode
//! sampling" among the low-level optimizations. The implementations here use
//! `select_nth_unstable` for an O(V) top-k cut instead of a full O(V log V)
//! sort, and sort only the retained candidates.

use rand::Rng;

use crate::Tensor;

/// How to pick the next token from a logit row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Argmax decoding.
    Greedy,
    /// Softmax sampling at the given temperature over the full vocabulary.
    Temperature(f32),
    /// Keep the `k` highest logits, renormalize, sample at temperature 1.
    TopK(usize),
    /// Nucleus sampling: keep the smallest prefix of the sorted distribution
    /// with cumulative probability at least `p`.
    TopP(f32),
}

/// Samples one token id per row from a `[rows, vocab]` logits tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `k == 0`, `p` not in `(0, 1]`, or
/// temperature is not positive.
#[must_use]
pub fn sample_tokens<R: Rng>(rng: &mut R, logits: &Tensor, method: Sampling) -> Vec<usize> {
    assert_eq!(logits.rank(), 2, "sample_tokens expects [rows, vocab] logits");
    let vocab = logits.dim(1);
    (0..logits.dim(0))
        .map(|r| sample_row(rng, &logits.data()[r * vocab..(r + 1) * vocab], method))
        .collect()
}

/// Samples a single token id from one logit row.
///
/// # Panics
///
/// See [`sample_tokens`].
#[must_use]
pub fn sample_row<R: Rng>(rng: &mut R, logits: &[f32], method: Sampling) -> usize {
    assert!(!logits.is_empty(), "empty logit row");
    match method {
        Sampling::Greedy => argmax(logits),
        Sampling::Temperature(t) => {
            assert!(t > 0.0, "temperature must be positive");
            let ids: Vec<usize> = (0..logits.len()).collect();
            categorical(rng, logits, &ids, t)
        }
        Sampling::TopK(k) => {
            assert!(k > 0, "top-k requires k >= 1");
            let ids = top_k_indices(logits, k.min(logits.len()));
            categorical(rng, logits, &ids, 1.0)
        }
        Sampling::TopP(p) => {
            assert!(p > 0.0 && p <= 1.0, "top-p requires p in (0, 1]");
            let ids = top_p_indices(logits, p);
            categorical(rng, logits, &ids, 1.0)
        }
    }
}

/// Index of the maximum logit (first on ties).
#[must_use]
pub fn argmax(logits: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

/// Indices of the `k` largest logits, in descending logit order.
///
/// Uses a partial selection (`select_nth_unstable_by`) so cost is
/// `O(V + k log k)` rather than `O(V log V)`.
#[must_use]
pub fn top_k_indices(logits: &[f32], k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= logits.len(), "k out of range");
    let mut ids: Vec<usize> = (0..logits.len()).collect();
    if k < ids.len() {
        ids.select_nth_unstable_by(k - 1, |&a, &b| {
            logits[b].partial_cmp(&logits[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        ids.truncate(k);
    }
    ids.sort_unstable_by(|&a, &b| {
        logits[b].partial_cmp(&logits[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    ids
}

/// Indices forming the top-p nucleus, in descending probability order.
/// Always contains at least the argmax token.
#[must_use]
pub fn top_p_indices(logits: &[f32], p: f32) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..logits.len()).collect();
    ids.sort_unstable_by(|&a, &b| {
        logits[b].partial_cmp(&logits[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let max = logits[ids[0]];
    let z: f32 = logits.iter().map(|&v| (v - max).exp()).sum();
    let mut cum = 0.0;
    let mut keep = 0;
    for &id in &ids {
        cum += (logits[id] - max).exp() / z;
        keep += 1;
        if cum >= p {
            break;
        }
    }
    ids.truncate(keep.max(1));
    ids
}

fn categorical<R: Rng>(rng: &mut R, logits: &[f32], ids: &[usize], temperature: f32) -> usize {
    let max = ids.iter().map(|&i| logits[i]).fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f32> = ids.iter().map(|&i| ((logits[i] - max) / temperature).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut u = rng.gen::<f32>() * total;
    for (w, &id) in weights.iter().zip(ids) {
        if u < *w {
            return id;
        }
        u -= w;
    }
    // Vetted: callers pass the non-empty survivor set of top-k/top-p
    // filtering (`truncate(keep.max(1))` keeps at least one id); an empty
    // support is a bug in this module, not a runtime fault.
    #[allow(clippy::expect_used)]
    *ids.last().expect("categorical over empty support")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_is_argmax() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = Tensor::from_vec(vec![2, 4], vec![0.0, 5.0, 1.0, 2.0, 9.0, 0.0, 0.0, 0.0]);
        assert_eq!(sample_tokens(&mut rng, &logits, Sampling::Greedy), vec![1, 0]);
    }

    #[test]
    fn top_k_indices_sorted_descending() {
        let logits = [0.1, 3.0, -1.0, 2.0, 2.5];
        assert_eq!(top_k_indices(&logits, 3), vec![1, 4, 3]);
        assert_eq!(top_k_indices(&logits, 5).len(), 5);
    }

    #[test]
    fn top_k_one_is_greedy() {
        let logits = [0.1, 3.0, -1.0];
        assert_eq!(top_k_indices(&logits, 1), vec![argmax(&logits)]);
    }

    #[test]
    fn top_k_sampling_stays_in_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = [0.0, 10.0, 9.5, -50.0];
        for _ in 0..100 {
            let t = sample_row(&mut rng, &logits, Sampling::TopK(2));
            assert!(t == 1 || t == 2, "sampled {t} outside top-2");
        }
    }

    #[test]
    fn top_p_nucleus_minimal() {
        // One dominant token: nucleus of p=0.5 is just that token.
        let logits = [10.0, 0.0, 0.0];
        assert_eq!(top_p_indices(&logits, 0.5), vec![0]);
        // p = 1.0 keeps everything.
        assert_eq!(top_p_indices(&logits, 1.0).len(), 3);
    }

    #[test]
    fn top_p_always_keeps_argmax() {
        let logits = [1.0, 2.0, 3.0];
        let ids = top_p_indices(&logits, 1e-6);
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn temperature_sampling_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        // logits giving p = [~0.88, ~0.12]
        let logits = [2.0, 0.0];
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[sample_row(&mut rng, &logits, Sampling::Temperature(1.0))] += 1;
        }
        let p0 = counts[0] as f32 / 2000.0;
        assert!((p0 - 0.88).abs() < 0.05, "p0 {p0}");
    }

    #[test]
    fn low_temperature_concentrates() {
        let mut rng = StdRng::seed_from_u64(3);
        let logits = [1.0, 0.9, 0.0];
        for _ in 0..50 {
            assert_eq!(sample_row(&mut rng, &logits, Sampling::Temperature(0.01)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "top-p requires p")]
    fn top_p_rejects_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_row(&mut rng, &[1.0], Sampling::TopP(0.0));
    }

    proptest! {
        #[test]
        fn prop_top_k_contains_argmax(
            logits in proptest::collection::vec(-10.0f32..10.0, 1..40),
            k in 1usize..10,
        ) {
            let k = k.min(logits.len());
            let ids = top_k_indices(&logits, k);
            prop_assert_eq!(ids.len(), k);
            prop_assert!(ids.contains(&argmax(&logits)));
        }

        #[test]
        fn prop_top_k_are_the_largest(
            logits in proptest::collection::vec(-10.0f32..10.0, 2..40),
        ) {
            let k = logits.len() / 2;
            if k >= 1 {
                let ids = top_k_indices(&logits, k);
                let min_kept = ids.iter().map(|&i| logits[i]).fold(f32::INFINITY, f32::min);
                for (i, &v) in logits.iter().enumerate() {
                    if !ids.contains(&i) {
                        prop_assert!(v <= min_kept + 1e-6);
                    }
                }
            }
        }

        #[test]
        fn prop_sampled_token_in_vocab(
            logits in proptest::collection::vec(-5.0f32..5.0, 1..20),
            seed in 0u64..100,
            p in 0.01f32..1.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            for method in [Sampling::Greedy, Sampling::Temperature(0.7),
                           Sampling::TopK(3.min(logits.len())), Sampling::TopP(p)] {
                let t = sample_row(&mut rng, &logits, method);
                prop_assert!(t < logits.len());
            }
        }
    }
}
