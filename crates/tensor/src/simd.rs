//! Explicit AVX2 SIMD microkernels for the f32 and int8 GEMM families
//! (ROADMAP item 5).
//!
//! # Bit-identity by construction
//!
//! The kernels vectorize across output **columns**: each SIMD lane owns
//! one output element, and every element is accumulated by one serial
//! chain of mul-then-add steps in strictly ascending `k` order — always
//! `_mm256_mul_ps` followed by `_mm256_add_ps`, never an FMA, which
//! would fuse the intermediate rounding and change the bits. A lane
//! therefore performs exactly the scalar kernel's arithmetic, element
//! for element, and the SIMD tier is bit-identical to the blocked and
//! naive oracles regardless of tile shape (each element sees exactly one
//! full-`k` pass, so MR/NR choices only affect traversal order *between*
//! elements, never the chain *within* one).
//!
//! The int8 kernel widens `i8` panels with SIMD
//! (`_mm256_cvtepi8_epi32` + `_mm256_cvtepi32_ps`, exact — every `i8` is
//! representable in f32) and folds the per-column scale once at tile
//! store. Folding at store is bitwise identical to the scalar path's
//! post-pass multiply because the scaled entry points all start from a
//! zeroed target: `(0 + sum) * s` either way.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{
    __m128i, __m256, _mm256_add_ps, _mm256_cvtepi8_epi32, _mm256_cvtepi32_ps, _mm256_loadu_ps,
    _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm_loadl_epi64,
};

/// Columns per SIMD tile: two 8-lane ymm vectors of independent outputs.
const NR: usize = 16;
/// Rows per SIMD tile: 4 rows × 2 column vectors = 8 ymm accumulators,
/// which with the broadcast register and two b-row loads stays within
/// the 16 ymm registers AVX2 offers.
const MR: usize = 4;

/// True when the host can run the AVX2 kernels in this module.
#[must_use]
pub fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Shared bounds contract for the strided kernels below; the `unsafe`
/// pointer arithmetic inside the tiles stays within these slices.
#[allow(clippy::too_many_arguments)]
fn check_gemm_bounds(
    a_len: usize,
    a_stride: usize,
    b_len: usize,
    b_stride: usize,
    o_len: usize,
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 {
        return;
    }
    assert!(k <= a_stride || m == 1, "a rows must not overlap");
    assert!((m - 1) * a_stride + k <= a_len, "a slice too short");
    assert!(k == 0 || (k - 1) * b_stride + n <= b_len, "b slice too short");
    assert!((m - 1) * o_stride + n <= o_len, "out slice too short");
}

/// AVX2 f32 GEMM core, strided like `ops::mm_kernel`: accumulates
/// `a (m×k, row stride a_stride) · b (k×n, row stride b_stride)` into
/// `out (m×n, row stride o_stride)`. Bit-identical to the blocked and
/// naive kernels (module docs).
///
/// # Panics
///
/// Panics if the host lacks AVX2 (callers gate on [`supported`]) or the
/// slices are shorter than the dimensions imply.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mm_f32(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(supported(), "AVX2 kernel dispatched on a non-AVX2 host");
    check_gemm_bounds(ad.len(), a_stride, bd.len(), b_stride, out.len(), o_stride, m, k, n);
    #[cfg(target_arch = "x86_64")]
    // SAFETY: AVX2 availability asserted above; index arithmetic bounded
    // by check_gemm_bounds.
    unsafe {
        mm_f32_avx2(ad, a_stride, bd, b_stride, out, o_stride, m, k, n);
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("supported() is false off x86_64");
}

/// AVX2 int8 GEMM core, strided like `quant::qmm_kernel`: widens NR-wide
/// `i8` column panels once per block with SIMD, contracts with the same
/// ascending-`k` mul+add chains as [`mm_f32`], and (when `scales` is
/// given) folds the per-column scale once at tile store. The scaled form
/// requires a zeroed `out` (all scaled entry points guarantee it).
///
/// # Panics
///
/// Panics if the host lacks AVX2, the slices are shorter than the
/// dimensions imply, or `scales` is shorter than `n`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mm_i8(
    ad: &[f32],
    a_stride: usize,
    vd: &[i8],
    v_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
    scales: Option<&[f32]>,
) {
    assert!(supported(), "AVX2 kernel dispatched on a non-AVX2 host");
    check_gemm_bounds(ad.len(), a_stride, vd.len(), v_stride, out.len(), o_stride, m, k, n);
    if let Some(s) = scales {
        assert!(s.len() >= n, "scales slice shorter than the column count");
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: AVX2 availability asserted above; index arithmetic bounded
    // by check_gemm_bounds and the scales length check.
    unsafe {
        mm_i8_avx2(ad, a_stride, vd, v_stride, out, o_stride, m, k, n, scales);
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("supported() is false off x86_64");
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn mm_f32_avx2(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut j = 0;
    while j + NR <= n {
        let mut i = 0;
        while i + MR <= m {
            f32_tile::<MR>(ad, a_stride, bd, b_stride, out, o_stride, i, j, k);
            i += MR;
        }
        while i < m {
            f32_tile::<1>(ad, a_stride, bd, b_stride, out, o_stride, i, j, k);
            i += 1;
        }
        j += NR;
    }
    if j < n {
        // Column remainder (n % NR): scalar, same ascending-k chains.
        for i in 0..m {
            for jj in j..n {
                let mut acc = out[i * o_stride + jj];
                for kk in 0..k {
                    acc += ad[i * a_stride + kk] * bd[kk * b_stride + jj];
                }
                out[i * o_stride + jj] = acc;
            }
        }
    }
}

/// One `R×NR` f32 tile: 2·R ymm accumulators, each lane one output
/// element, mul-then-add per ascending-`k` step (never fused).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_tile<const R: usize>(
    ad: &[f32],
    a_stride: usize,
    bd: &[f32],
    b_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    i: usize,
    j: usize,
    k: usize,
) {
    // SAFETY (all pointer math in this fn): caller keeps i+R <= m and
    // j+NR <= n under the bounds checked in mm_f32.
    unsafe {
        let ap = ad.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for (r, a) in acc.iter_mut().enumerate() {
            let o0 = op.add((i + r) * o_stride + j);
            a[0] = _mm256_loadu_ps(o0);
            a[1] = _mm256_loadu_ps(o0.add(8));
        }
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(bp.add(kk * b_stride + j));
            let b1 = _mm256_loadu_ps(bp.add(kk * b_stride + j + 8));
            for (r, a) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((i + r) * a_stride + kk));
                a[0] = _mm256_add_ps(a[0], _mm256_mul_ps(av, b0));
                a[1] = _mm256_add_ps(a[1], _mm256_mul_ps(av, b1));
            }
        }
        for (r, a) in acc.iter().enumerate() {
            let o0 = op.add((i + r) * o_stride + j);
            _mm256_storeu_ps(o0, a[0]);
            _mm256_storeu_ps(o0.add(8), a[1]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn mm_i8_avx2(
    ad: &[f32],
    a_stride: usize,
    vd: &[i8],
    v_stride: usize,
    out: &mut [f32],
    o_stride: usize,
    m: usize,
    k: usize,
    n: usize,
    scales: Option<&[f32]>,
) {
    // k×NR f32 panel, widened once per column block and reused across
    // every row tile — the dequant cost amortizes over all m rows.
    let mut panel = vec![0.0f32; k * NR];
    let mut j = 0;
    while j + NR <= n {
        // SAFETY: j+NR <= n and the vd bounds were checked in mm_i8.
        unsafe {
            for kk in 0..k {
                let src = vd.as_ptr().add(kk * v_stride + j);
                let dst = panel.as_mut_ptr().add(kk * NR);
                // 8 i8 lanes → 8 f32 lanes, exact (i8 ⊂ f32).
                let lo = _mm_loadl_epi64(src.cast::<__m128i>());
                let hi = _mm_loadl_epi64(src.add(8).cast::<__m128i>());
                _mm256_storeu_ps(dst, _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(lo)));
                _mm256_storeu_ps(dst.add(8), _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(hi)));
            }
        }
        let sc = scales.map(|s| {
            // SAFETY: s.len() >= n >= j + NR, checked in mm_i8.
            unsafe { (_mm256_loadu_ps(s.as_ptr().add(j)), _mm256_loadu_ps(s.as_ptr().add(j + 8))) }
        });
        let mut i = 0;
        while i + MR <= m {
            i8_tile::<MR>(ad, a_stride, &panel, out, o_stride, i, j, k, sc);
            i += MR;
        }
        while i < m {
            i8_tile::<1>(ad, a_stride, &panel, out, o_stride, i, j, k, sc);
            i += 1;
        }
        j += NR;
    }
    if j < n {
        // Column remainder: scalar widen + ascending-k chains + one
        // post-contraction scale — the scalar oracle's exact arithmetic.
        for i in 0..m {
            for jj in j..n {
                let mut acc = out[i * o_stride + jj];
                for kk in 0..k {
                    acc += ad[i * a_stride + kk] * f32::from(vd[kk * v_stride + jj]);
                }
                if let Some(s) = scales {
                    acc *= s[jj];
                }
                out[i * o_stride + jj] = acc;
            }
        }
    }
}

/// One `R×NR` int8 tile over the pre-widened panel; when `sc` is given
/// the per-column scale is folded exactly once, at store, after the full
/// contraction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn i8_tile<const R: usize>(
    ad: &[f32],
    a_stride: usize,
    panel: &[f32],
    out: &mut [f32],
    o_stride: usize,
    i: usize,
    j: usize,
    k: usize,
    sc: Option<(__m256, __m256)>,
) {
    // SAFETY (all pointer math in this fn): caller keeps i+R <= m and
    // j+NR <= n under the bounds checked in mm_i8; panel is k×NR.
    unsafe {
        let ap = ad.as_ptr();
        let pp = panel.as_ptr();
        let op = out.as_mut_ptr();
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for (r, a) in acc.iter_mut().enumerate() {
            let o0 = op.add((i + r) * o_stride + j);
            a[0] = _mm256_loadu_ps(o0);
            a[1] = _mm256_loadu_ps(o0.add(8));
        }
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(pp.add(kk * NR));
            let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
            for (r, a) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((i + r) * a_stride + kk));
                a[0] = _mm256_add_ps(a[0], _mm256_mul_ps(av, b0));
                a[1] = _mm256_add_ps(a[1], _mm256_mul_ps(av, b1));
            }
        }
        for (r, a) in acc.iter().enumerate() {
            let (mut v0, mut v1) = (a[0], a[1]);
            if let Some((s0, s1)) = sc {
                v0 = _mm256_mul_ps(v0, s0);
                v1 = _mm256_mul_ps(v1, s1);
            }
            let o0 = op.add((i + r) * o_stride + j);
            _mm256_storeu_ps(o0, v0);
            _mm256_storeu_ps(o0.add(8), v1);
        }
    }
}
