//! Continuous-batching serving over the partitioned engine (Section 4.4).
//!
//! Where [`esti_core::serving`] *models* the paper's two-tier arrangement
//! analytically, this module *runs* it: a batch-1 prefill tier
//! ([`PartitionedEngine`] at the layout's minimum batch) pipelines into a
//! fixed-capacity decode tier running in slot mode
//! ([`PartitionedEngine::begin_slots`]). Variable-length prompts arrive in
//! a queue, are prefilled (optionally chunked), admitted into free decode
//! slots at step boundaries up to the cap, and evicted on completion.
//!
//! Correctness rests on two properties proved elsewhere in the workspace:
//! every op treats batch rows independently (so a request's row in a
//! padded, mixed-age batch computes bit-identically to running it alone),
//! and the canonical [`RequestKv`] form is layout-independent (so a
//! prefill-tier cache moves into any decode-tier slot exactly). The
//! conformance tests assert the visible consequence: per-request token
//! streams identical to isolated [`PartitionedEngine::generate`] runs.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use esti_core::layout::Layout;
use esti_core::serving::{RequestStats, ServingReport};
use esti_model::{PositionKind, ReferenceModel};
use esti_tensor::sample::{sample_row, Sampling};

use crate::engine::{ExecMode, PartitionedEngine, WeightFormat};

/// One queued generation request.
#[derive(Debug, Clone)]
pub struct ServingRequest {
    /// Prompt tokens (any length ≥ 1; requests in one queue may differ).
    pub prompt: Vec<usize>,
    /// Tokens to generate for this request.
    pub max_new_tokens: usize,
    /// Per-request RNG seed — sampling draws are independent streams, so a
    /// request's tokens do not depend on what else shares its batch.
    pub seed: u64,
    /// Arrival time in seconds relative to the start of serving.
    pub arrival: f64,
}

impl ServingRequest {
    /// A request arriving at `t = 0` with default generation length.
    #[must_use]
    pub fn immediate(prompt: Vec<usize>, max_new_tokens: usize) -> Self {
        ServingRequest { prompt, max_new_tokens, seed: 0, arrival: 0.0 }
    }
}

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServingOptions {
    /// Decode-tier slot count (the in-flight cap). Must satisfy the
    /// layout's batch divisibility requirements.
    pub max_decode_batch: usize,
    /// Sampling method applied to every request.
    pub sampling: Sampling,
    /// Chunked (incremental) prefill size; `None` prefills each prompt in
    /// one pass.
    pub prefill_chunk: Option<usize>,
}

impl Default for ServingOptions {
    fn default() -> Self {
        ServingOptions { max_decode_batch: 4, sampling: Sampling::Greedy, prefill_chunk: None }
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// Generated tokens per request, in request order.
    pub outputs: Vec<Vec<usize>>,
    /// Measured per-request latency/TTFT stats plus decode-tier occupancy,
    /// in the same shape the analytical simulator reports — so measured
    /// and modeled runs cross-check directly.
    pub report: ServingReport,
    /// Per decode step: live (non-idle) slots and measured wall-clock
    /// seconds — the curve to compare against analytical step times.
    pub step_log: Vec<(usize, f64)>,
    /// Total tokens generated across all requests.
    pub total_generated: usize,
}

impl ServingOutcome {
    /// Measured decode throughput in generated tokens per second.
    #[must_use]
    pub fn throughput_tokens_per_sec(&self) -> f64 {
        self.report.generated_throughput(self.total_generated)
    }
}

/// A live request occupying a decode slot.
struct Active {
    idx: usize,
    rng: StdRng,
    next_tok: usize,
}

/// The two-tier continuous-batching scheduler.
///
/// # Examples
///
/// ```
/// use esti_core::planner::decode_layout;
/// use esti_core::Machine;
/// use esti_model::{ModelConfig, ReferenceModel};
/// use esti_runtime::{ContinuousBatcher, ServingOptions, ServingRequest, WeightFormat};
///
/// let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
/// let machine = Machine::tpu_v4_slice(4).unwrap();
/// let layout = decode_layout(model.config(), &machine);
/// let mut batcher =
///     ContinuousBatcher::new(&model, layout, WeightFormat::Exact, ServingOptions::default());
/// let requests = vec![
///     ServingRequest::immediate(vec![1, 2, 3], 4),
///     ServingRequest::immediate(vec![5, 6], 4),
/// ];
/// let outcome = batcher.serve(&requests);
/// assert_eq!(outcome.outputs.len(), 2);
/// assert!(outcome.outputs.iter().all(|o| o.len() == 4));
/// ```
pub struct ContinuousBatcher {
    prefill: PartitionedEngine,
    decode: PartitionedEngine,
    opts: ServingOptions,
}

impl ContinuousBatcher {
    /// Builds both tiers from one model and layout (the common case; the
    /// paper's tiers may differ in chip count, which maps here to building
    /// with different layouts via two engines — a future extension).
    ///
    /// # Panics
    ///
    /// Panics if `opts.max_decode_batch` is zero or violates the layout's
    /// batch divisibility requirements, or on any condition
    /// [`PartitionedEngine::new`] panics on.
    #[must_use]
    pub fn new(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        opts: ServingOptions,
    ) -> Self {
        ContinuousBatcher::new_with_exec(model, layout, fmt, ExecMode::default(), opts)
    }

    /// Like [`ContinuousBatcher::new`] with an explicit execution mode.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ContinuousBatcher::new`].
    #[must_use]
    pub fn new_with_exec(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        exec: ExecMode,
        opts: ServingOptions,
    ) -> Self {
        assert!(opts.max_decode_batch > 0, "decode batch cap must be positive");
        let prefill = PartitionedEngine::new_with_exec(model, layout, fmt, exec);
        let decode = PartitionedEngine::new_with_exec(model, layout, fmt, exec);
        ContinuousBatcher { prefill, decode, opts }
    }

    /// The decode-tier engine (for inspecting traffic or comm times).
    #[must_use]
    pub fn decode_engine(&self) -> &PartitionedEngine {
        &self.decode
    }

    /// Serves `requests` (sorted by arrival) to completion and returns
    /// every request's generated tokens plus measured statistics.
    ///
    /// Admission policy: FIFO. At every step boundary, each arrived request
    /// at the queue head is prefilled (batch-1, padded to the layout's
    /// minimum batch by prompt replication) and takes the lowest free slot,
    /// until slots or arrived requests run out. The decode tier then steps
    /// the full slot batch — idle slots carry a dummy token and are
    /// re-evicted each step so they neither age nor allocate. A request
    /// leaves its slot the moment its last token is sampled.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty or not sorted by arrival, a prompt is
    /// empty, or a learned-position model would exceed `max_seq`.
    pub fn serve(&mut self, requests: &[ServingRequest]) -> ServingOutcome {
        assert!(!requests.is_empty(), "no requests to serve");
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival time"
        );
        let cfg = self.decode.config().clone();
        for r in requests {
            assert!(!r.prompt.is_empty(), "empty prompt");
            if cfg.position == PositionKind::Learned {
                assert!(
                    r.prompt.len() + r.max_new_tokens <= cfg.max_seq,
                    "request needs {} positions but max_seq is {}",
                    r.prompt.len() + r.max_new_tokens,
                    cfg.max_seq
                );
            }
        }
        let cap = self.opts.max_decode_batch;
        let reserve =
            requests.iter().map(|r| r.prompt.len() + r.max_new_tokens).max().unwrap_or(0);
        self.decode.begin_slots(cap, reserve);
        let pad = self.prefill.min_batch();

        let t0 = Instant::now();
        let now = || t0.elapsed().as_secs_f64();
        let n = requests.len();
        let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut prefilled_at = vec![0.0f64; n];
        let mut finished_at = vec![0.0f64; n];
        let mut pending: VecDeque<usize> = (0..n).collect();
        let mut active: Vec<Option<Active>> = (0..cap).map(|_| None).collect();
        let mut step_log: Vec<(usize, f64)> = Vec::new();
        let mut occupancy_sum = 0usize;

        loop {
            // Admission at the step boundary.
            while let Some(&idx) = pending.front() {
                if requests[idx].arrival > now() {
                    break;
                }
                let Some(slot) = active.iter().position(Option::is_none) else { break };
                pending.pop_front();
                let req = &requests[idx];
                let last_logits = self.prefill_padded(&req.prompt, pad);
                let mut rng = StdRng::seed_from_u64(req.seed);
                prefilled_at[idx] = now();
                if req.max_new_tokens == 0 {
                    finished_at[idx] = prefilled_at[idx];
                    continue;
                }
                // The first generated token comes from the prefill logits —
                // its sampling time is the TTFT recorded above.
                let tok = sample_row(&mut rng, &last_logits, self.opts.sampling);
                outputs[idx].push(tok);
                if req.max_new_tokens == 1 {
                    finished_at[idx] = now();
                    continue;
                }
                let kv = self.prefill.extract_kv(0);
                self.decode.insert_kv(slot, &kv);
                active[slot] = Some(Active { idx, rng, next_tok: tok });
            }

            let live = active.iter().flatten().count();
            if live == 0 {
                let Some(&idx) = pending.front() else { break };
                // Nothing in flight and the next request has not arrived:
                // nap (bounded, so a mis-scheduled wakeup self-corrects).
                let wait = requests[idx].arrival - now();
                if wait > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(wait.min(0.02)));
                }
                continue;
            }

            // Idle slots are re-evicted so their dummy appends neither age
            // their positions nor grow their slabs.
            for (s, slot) in active.iter().enumerate() {
                if slot.is_none() {
                    self.decode.evict_slot(s);
                }
            }

            // One decode step over the full slot batch.
            let tokens: Vec<usize> =
                active.iter().map(|a| a.as_ref().map_or(0, |a| a.next_tok)).collect();
            let t_step = Instant::now();
            let logits = self.decode.decode_step(&tokens); // [cap, V]
            step_log.push((live, t_step.elapsed().as_secs_f64()));
            occupancy_sum += live;

            let v = cfg.vocab;
            for (s, slot) in active.iter_mut().enumerate() {
                let Some(a) = slot else { continue };
                let row = &logits.data()[s * v..(s + 1) * v];
                let tok = sample_row(&mut a.rng, row, self.opts.sampling);
                outputs[a.idx].push(tok);
                if outputs[a.idx].len() == requests[a.idx].max_new_tokens {
                    finished_at[a.idx] = now();
                    *slot = None;
                    self.decode.evict_slot(s);
                } else {
                    a.next_tok = tok;
                }
            }
        }

        let stats: Vec<RequestStats> = requests
            .iter()
            .zip(prefilled_at.iter().zip(&finished_at))
            .map(|(r, (&prefilled, &finished))| RequestStats {
                arrival: r.arrival,
                prefilled,
                finished,
            })
            .collect();
        let total_generated = outputs.iter().map(Vec::len).sum();
        ServingOutcome {
            report: ServingReport::new(stats, step_log.len(), occupancy_sum),
            step_log,
            outputs,
            total_generated,
        }
    }

    /// Prefills one prompt on the prefill tier, padded to batch `pad` by
    /// replication (row 0 is bit-unaffected — batch rows are independent
    /// everywhere), honoring the chunked-prefill option. Returns row 0's
    /// last-position logits; the tier's cache then holds the prompt's KV
    /// for [`PartitionedEngine::extract_kv`].
    fn prefill_padded(&mut self, prompt: &[usize], pad: usize) -> Vec<f32> {
        self.prefill.reset();
        let len = prompt.len();
        let chunk = self.opts.prefill_chunk.unwrap_or(len).max(1);
        let v = self.prefill.config().vocab;
        let mut last: Option<Vec<f32>> = None;
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let chunk_tokens: Vec<Vec<usize>> =
                (0..pad).map(|_| prompt[start..end].to_vec()).collect();
            let logits = self.prefill.prefill(&chunk_tokens); // [pad, l, V]
            let l = end - start;
            last = Some(logits.slice(1, l - 1, 1).data()[..v].to_vec());
            start = end;
        }
        last.expect("at least one prefill chunk")
    }
}
