//! Continuous-batching serving over the partitioned engine (Section 4.4).
//!
//! Where [`esti_core::serving`] *models* the paper's two-tier arrangement
//! analytically, this module *runs* it: a batch-1 prefill tier
//! ([`PartitionedEngine`] at the layout's minimum batch) pipelines into a
//! fixed-capacity decode tier running in slot mode
//! ([`PartitionedEngine::begin_slots`]). Variable-length prompts arrive in
//! a queue, are prefilled (optionally chunked), admitted into free decode
//! slots at step boundaries up to the cap, and evicted on completion.
//!
//! Correctness rests on two properties proved elsewhere in the workspace:
//! every op treats batch rows independently (so a request's row in a
//! padded, mixed-age batch computes bit-identically to running it alone),
//! and the canonical [`RequestKv`](crate::RequestKv) form is
//! layout-independent (so a prefill-tier cache moves into any decode-tier
//! slot exactly). The conformance tests assert the visible consequence:
//! per-request token streams identical to isolated
//! [`PartitionedEngine::generate`] runs.
//!
//! # Self-healing
//!
//! The same two properties make the scheduler recoverable. When a decode
//! step fails (a chip died or a collective timed out — see
//! [`EngineError`]), the batcher rebuilds the decode engine and *replays*
//! every in-flight request from durable state it already holds: the prompt
//! (re-prefilled with the original chunking), the per-request RNG seed
//! (re-seeded, so the sampling stream restarts from draw zero), and the
//! recorded emitted tokens (fed back through real decode steps, each
//! replayed sample asserted equal to its recording). Because batch rows are
//! independent and the replayed computation is the original computation,
//! post-recovery token streams are **bit-identical** to a fault-free run —
//! the chaos conformance tests in `tests/faults.rs` assert exactly that for
//! every decode layout. The price paid is accounted in
//! [`ServingReport::recovery`] and cross-checked against
//! `esti_netsim::crash_recovery_cost`.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use esti_collectives::FaultPlan;
use esti_core::layout::Layout;
use esti_core::serving::{Priority, RecoveryStats, RequestStats, ServingReport};
use esti_model::{PositionKind, ReferenceModel};
use esti_tensor::sample::{sample_row, Sampling};

use crate::engine::{EngineError, ExecMode, KvBackend, PartitionedEngine, WeightFormat};

/// One queued generation request.
#[derive(Debug, Clone)]
pub struct ServingRequest {
    /// Prompt tokens (any length ≥ 1; requests in one queue may differ).
    pub prompt: Vec<usize>,
    /// Tokens to generate for this request.
    pub max_new_tokens: usize,
    /// Per-request RNG seed — sampling draws are independent streams, so a
    /// request's tokens do not depend on what else shares its batch (and a
    /// replayed request re-derives exactly its own stream).
    pub seed: u64,
    /// Arrival time in seconds relative to the start of serving.
    pub arrival: f64,
    /// Scheduling class. Higher classes are admitted (and prefilled)
    /// first; under pressure, with [`ServingOptions::preemption`], they
    /// preempt strictly lower classes out of their decode slots.
    pub priority: Priority,
}

impl ServingRequest {
    /// A request arriving at `t = 0` in the default ([`Priority::Normal`])
    /// class.
    #[must_use]
    pub fn immediate(prompt: Vec<usize>, max_new_tokens: usize) -> Self {
        ServingRequest {
            prompt,
            max_new_tokens,
            seed: 0,
            arrival: 0.0,
            priority: Priority::Normal,
        }
    }

    /// The same request in the given scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServingOptions {
    /// Decode-tier slot count (the in-flight cap). Must satisfy the
    /// layout's batch divisibility requirements.
    pub max_decode_batch: usize,
    /// Sampling method applied to every request.
    pub sampling: Sampling,
    /// Chunked (incremental) prefill size; `None` prefills each prompt in
    /// one pass.
    pub prefill_chunk: Option<usize>,
    /// Intra-chip kernel worker threads per simulated chip, applied to both
    /// tiers and to every engine rebuilt during fault recovery. `0` keeps
    /// each engine's own default (the `ESTI_CHIP_THREADS` environment
    /// knob). Thread count never changes results — the banded kernels are
    /// bit-identical at any worker count.
    pub intra_chip_threads: usize,
    /// KV-cache backend applied to both tiers (and every engine rebuilt
    /// during fault recovery). `None` keeps each engine's own default (the
    /// `ESTI_KV_PAGE_SIZE` environment knob, defaulting to paged). Backend
    /// choice never changes results — token streams are bit-identical
    /// between slab and paged caches.
    pub kv_backend: Option<KvBackend>,
    /// Decode-tier KV memory budget in canonical cache positions (one
    /// position = one token's K and V across all layers and heads).
    /// `None` is unlimited. With a paged backend, admission charges the
    /// page ledger (shared prompt-prefix pages charged once) and defers
    /// requests that would overflow; with a slab backend the budget caps
    /// the slot count at `budget / reserve`, every slot pre-charged its
    /// worst-case length — the paper-baseline policy paged serving is
    /// benchmarked against at equal memory.
    pub kv_position_budget: Option<usize>,
    /// Arrived-but-unadmitted requests the scheduler tolerates before
    /// shedding; `None` queues without bound. Shedding removes the
    /// *newest* waiting request of the *lowest* waiting class — the one
    /// whose loss costs the least — recording a typed
    /// [`ServeError::Overloaded`] in [`ServingOutcome::shed`] instead of
    /// letting the backlog grow without bound.
    pub queue_limit: Option<usize>,
    /// Per-class TTFT deadline in seconds, indexed by
    /// [`Priority::index`]: a waiting request that has already waited past
    /// its class deadline is shed (typed [`ServeError::Overloaded`])
    /// rather than served uselessly late. `None` disables the deadline
    /// for that class.
    pub ttft_deadline: [Option<f64>; 3],
    /// Preempt a strictly-lower-priority slot when a higher class is
    /// waiting and no slot is free. The victim re-enters its class queue
    /// (at the front — it keeps its FIFO standing) and, on re-admission,
    /// *replays* through the recovery machinery to a bit-identical
    /// stream. On by default: with every request in one class (the
    /// pre-priority behavior) preemption never fires.
    pub preemption: bool,
}

impl Default for ServingOptions {
    fn default() -> Self {
        ServingOptions {
            max_decode_batch: 4,
            sampling: Sampling::Greedy,
            prefill_chunk: None,
            intra_chip_threads: 0,
            kv_backend: None,
            kv_position_budget: None,
            queue_limit: None,
            ttft_deadline: [None; 3],
            preemption: true,
        }
    }
}

/// Why a serving run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request list was empty.
    NoRequests,
    /// Requests were not sorted by arrival time.
    UnsortedArrivals,
    /// A request's prompt had no tokens; rejected at admission (index is
    /// the request's position in the submitted batch).
    EmptyPrompt {
        /// Index of the offending request.
        index: usize,
    },
    /// A learned-position model cannot serve this request: prompt plus
    /// generation exceeds the position table.
    PromptTooLong {
        /// Index of the offending request.
        index: usize,
        /// Positions the request needs.
        needed: usize,
        /// Positions the model has.
        max_seq: usize,
    },
    /// A request can never fit the configured
    /// [`ServingOptions::kv_position_budget`], even with the decode tier
    /// otherwise empty.
    KvBudgetExceeded {
        /// Index of the offending request.
        index: usize,
        /// Canonical KV positions the request needs at worst case.
        needed: usize,
        /// The configured budget in canonical KV positions.
        budget: usize,
    },
    /// A request was shed by admission control under overload. Never
    /// returned as a run-level error from
    /// [`ContinuousBatcher::try_serve`] — shed requests are reported
    /// per-request in [`ServingOutcome::shed`] while the rest of the
    /// batch completes; this is the typed record of why each was refused.
    Overloaded {
        /// Index of the shed request.
        index: usize,
        /// Which overload policy triggered the shed.
        reason: OverloadShed,
    },
    /// An engine failure that recovery could not absorb (e.g. the prefill
    /// tier failed twice in a row for the same prompt).
    Engine(EngineError),
    /// More faults occurred than the configured recovery budget
    /// ([`ContinuousBatcher::set_max_recoveries`]) allows.
    RecoveryLimit {
        /// Faults seen, including the one that broke the budget.
        faults: usize,
        /// The failure that exhausted the budget.
        last: EngineError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoRequests => write!(f, "no requests to serve"),
            ServeError::UnsortedArrivals => {
                write!(f, "requests must be sorted by arrival time")
            }
            ServeError::EmptyPrompt { index } => {
                write!(f, "request {index} has an empty prompt")
            }
            ServeError::PromptTooLong { index, needed, max_seq } => {
                write!(f, "request {index} needs {needed} positions but max_seq is {max_seq}")
            }
            ServeError::KvBudgetExceeded { index, needed, budget } => {
                write!(
                    f,
                    "request {index} needs {needed} KV positions but the budget is {budget}"
                )
            }
            ServeError::Overloaded { index, reason } => match reason {
                OverloadShed::QueueFull { waiting, limit } => write!(
                    f,
                    "request {index} shed under overload: {waiting} waiting, limit {limit}"
                ),
                OverloadShed::TtftDeadline { waited, deadline } => write!(
                    f,
                    "request {index} shed under overload: waited {waited:.3}s past its \
                     {deadline:.3}s TTFT deadline"
                ),
            },
            ServeError::Engine(e) => write!(f, "unrecoverable engine failure: {e}"),
            ServeError::RecoveryLimit { faults, last } => {
                write!(f, "recovery budget exhausted after {faults} faults (last: {last})")
            }
        }
    }
}

/// Which admission-control policy shed a request (the payload of
/// [`ServeError::Overloaded`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverloadShed {
    /// The waiting queue was over [`ServingOptions::queue_limit`].
    QueueFull {
        /// Requests waiting when the shed happened.
        waiting: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The request out-waited its class's
    /// [`ServingOptions::ttft_deadline`].
    TtftDeadline {
        /// Seconds the request had waited unadmitted.
        waited: f64,
        /// The class deadline it missed.
        deadline: f64,
    },
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) | ServeError::RecoveryLimit { last: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// Generated tokens per request, in request order.
    pub outputs: Vec<Vec<usize>>,
    /// Measured per-request latency/TTFT stats plus decode-tier occupancy,
    /// in the same shape the analytical simulator reports — so measured
    /// and modeled runs cross-check directly. Fault and recovery accounting
    /// lives in [`ServingReport::recovery`].
    pub report: ServingReport,
    /// Per decode step: live (non-idle) slots and measured wall-clock
    /// seconds — the curve to compare against analytical step times.
    pub step_log: Vec<(usize, f64)>,
    /// Total tokens generated across all requests.
    pub total_generated: usize,
    /// Requests refused by admission control, each a typed
    /// [`ServeError::Overloaded`] carrying the request index and shed
    /// reason. Shed requests keep an empty `outputs` row and contribute
    /// no latency stats to `report`.
    pub shed: Vec<ServeError>,
    /// Priority preemptions performed (each victim re-queued, then
    /// replayed to a bit-identical stream on re-admission).
    pub preemptions: usize,
    /// Recorded tokens re-derived during preemption replays — pure
    /// overhead the preemption policy paid for priority inversion relief.
    pub preempted_tokens_replayed: usize,
}

impl ServingOutcome {
    /// Measured decode throughput in generated tokens per second.
    #[must_use]
    pub fn throughput_tokens_per_sec(&self) -> f64 {
        self.report.generated_throughput(self.total_generated)
    }
}

/// A live request occupying a decode slot.
struct Active {
    idx: usize,
    rng: StdRng,
    next_tok: usize,
    /// Position of the next sample in this request's token stream. Behind
    /// `outputs[idx].len()` only while replaying after a recovery: until
    /// the cursor catches up, each sample is asserted equal to its
    /// recording instead of being appended.
    consumed: usize,
}

/// The slot-machine parameters of a [`ContinuousBatcher`], exported for
/// `esti-verify`'s slot-lifecycle pass.
///
/// The pass models admission → prefill → decode-slot → evict/replay as an
/// explicit state machine and explores it against abstract request traces;
/// these fields are the knobs that machine is parameterized over, read from
/// the live scheduler so the model cannot drift from the configuration
/// under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatcherSpec {
    /// Decode-tier slot count ([`ServingOptions::max_decode_batch`]).
    pub slots: usize,
    /// Faults one `try_serve` call absorbs before
    /// [`ServeError::RecoveryLimit`].
    pub max_recoveries: usize,
    /// Admission prefill emits the request's first token, so a request with
    /// `max_new_tokens <= 1` completes at admission without ever occupying
    /// a decode slot.
    pub prefill_emits_first_token: bool,
    /// Replay-cursor position after a recovery rebuild: re-prefill
    /// re-derives token 0 (asserted against the recording), so replay of
    /// the remaining recorded tokens restarts at index 1.
    pub replay_restarts_at: usize,
    /// KV page size of the decode tier's cache; `None` on a slab backend
    /// (the pool model below does not apply).
    pub page_size: Option<usize>,
    /// Page-pool admission budget
    /// ([`ServingOptions::kv_position_budget`] `/ page_size`); `None` when
    /// unbudgeted or slab-backed. When set, admission charges new pages
    /// (shared prefix pages charged once), growth reservations, and one
    /// idle-slot dummy page per empty slot, and defers requests that would
    /// overflow; eviction refunds a page exactly when its last reference
    /// drops.
    pub pool_pages: Option<usize>,
    /// Whether a waiting higher class preempts a strictly lower one out of
    /// its slot ([`ServingOptions::preemption`]). A preempted request is
    /// never dropped: it re-enters its class queue with its recording
    /// intact and must eventually re-admit and replay
    /// (`replay_restarts_at`) — the lifecycle pass rejects machines that
    /// preempt without a replay cursor or starve victims forever.
    pub preemption: bool,
}

/// The two-tier continuous-batching scheduler.
///
/// # Examples
///
/// ```
/// use esti_core::planner::decode_layout;
/// use esti_core::Machine;
/// use esti_model::{ModelConfig, ReferenceModel};
/// use esti_runtime::{ContinuousBatcher, ServingOptions, ServingRequest, WeightFormat};
///
/// let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
/// let machine = Machine::tpu_v4_slice(4).unwrap();
/// let layout = decode_layout(model.config(), &machine);
/// let mut batcher =
///     ContinuousBatcher::new(&model, layout, WeightFormat::Exact, ServingOptions::default());
/// let requests = vec![
///     ServingRequest::immediate(vec![1, 2, 3], 4),
///     ServingRequest::immediate(vec![5, 6], 4),
/// ];
/// let outcome = batcher.serve(&requests);
/// assert_eq!(outcome.outputs.len(), 2);
/// assert!(outcome.outputs.iter().all(|o| o.len() == 4));
/// ```
pub struct ContinuousBatcher {
    prefill: PartitionedEngine,
    decode: PartitionedEngine,
    opts: ServingOptions,
    /// Everything needed to rebuild a tier after a fault.
    model: ReferenceModel,
    layout: Layout,
    fmt: WeightFormat,
    /// Pinned execution mode; `None` lets each engine's planner choose.
    exec: Option<ExecMode>,
    /// Deadline re-applied to rebuilt engines.
    deadline: Option<Duration>,
    /// A fault plan armed into the decode tier just before the given
    /// successful-step count is reached (one-shot).
    decode_fault: Option<(usize, FaultPlan)>,
    /// Forced preemptions `(after_step, slot)` applied at step boundaries
    /// (one-shot, for conformance testing).
    preempt_plan: Vec<(usize, usize)>,
    /// Recovery budget per [`ContinuousBatcher::try_serve`] call.
    max_recoveries: usize,
}

/// Builds a tier engine: planner-driven when no mode is pinned. `workers`
/// is [`ServingOptions::intra_chip_threads`]; `0` keeps the engine default.
/// `kv` is [`ServingOptions::kv_backend`]; `None` keeps the engine default.
fn build_engine(
    model: &ReferenceModel,
    layout: Layout,
    fmt: WeightFormat,
    exec: Option<ExecMode>,
    workers: usize,
    kv: Option<KvBackend>,
) -> PartitionedEngine {
    let mut engine = match exec {
        Some(mode) => PartitionedEngine::new_with_exec(model, layout, fmt, mode),
        None => PartitionedEngine::new(model, layout, fmt),
    };
    if workers > 0 {
        engine.set_intra_chip_threads(workers);
    }
    if let Some(backend) = kv {
        engine.set_kv_backend(backend);
    }
    engine
}

/// Virtual page-pool ledger the admission policy charges (paged decode
/// tier only). It mirrors the physical [`esti_model::KvCache`] paged
/// backend in *canonical* units — whole heads, undivided by the layout —
/// so one ledger governs admission identically across shardings.
///
/// Accounting invariants (each mirrors a physical transition):
///
/// * **admit** charges one page per prompt prefix *not* already registered
///   by a live request (registry hits map shared pages: charged once),
///   plus a reservation for every page decode growth can touch — pages the
///   generation frontier will cross into, and one copy-out page when the
///   prompt's last page is partial (a write to it may trigger
///   copy-on-write if shared, or converts it private if not; either way
///   the reservation bounds the worst case).
/// * **advance** (one appended token) converts reservations to private
///   pages at page boundaries and resolves the partial-page frontier on
///   its first write — exactly the cache's copy-on-write / deregistration
///   transitions — without changing the slot's total claim.
/// * **release** refunds private and reserved pages plus every prefix page
///   whose registry refcount drops to zero — the cache frees a physical
///   page at precisely that moment.
struct PageLedger {
    page_size: usize,
    /// Admission budget in pages; `None` tracks usage without gating.
    budget: Option<usize>,
    /// Live page-aligned prompt prefixes → number of slots mapping them.
    registry: HashMap<Vec<usize>, usize>,
    used: usize,
    peak_used: usize,
    peak_shared: usize,
    slots: HashMap<usize, LedgerSlot>,
}

/// One admitted slot's claim on the ledger.
struct LedgerSlot {
    /// Registered prefix keys this slot maps, in page order.
    keys: Vec<Vec<usize>>,
    /// Pages owned by this slot alone (decode growth, copy-outs).
    private: usize,
    /// Pages charged at admission but not yet materialized.
    reserved: usize,
    /// Cached positions (prompt + appended decode tokens).
    len: usize,
    /// The last prompt page is partial *and* still registry-mapped; the
    /// first decode write resolves it (copy-on-write or deregistration).
    frontier_keyed: bool,
}

impl PageLedger {
    fn new(page_size: usize, budget: Option<usize>) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageLedger {
            page_size,
            budget,
            registry: HashMap::new(),
            used: 0,
            peak_used: 0,
            peak_shared: 0,
            slots: HashMap::new(),
        }
    }

    /// `(unshared prompt pages, growth pages, copy-out reservation)` for
    /// admitting `prompt` with `max_new` generated tokens, against the
    /// current registry.
    fn charge_parts(&self, prompt: &[usize], max_new: usize) -> (usize, usize, usize) {
        let s = self.page_size;
        let l = prompt.len();
        let n_pages = l.div_ceil(s);
        let new_keys = (0..n_pages)
            .filter(|pi| {
                let end = ((pi + 1) * s).min(l);
                !self.registry.contains_key(&prompt[..end])
            })
            .count();
        let grow = (l + max_new).div_ceil(s) - n_pages;
        let cow = usize::from(max_new > 1 && !l.is_multiple_of(s));
        (new_keys, grow, cow)
    }

    /// Pages admitting this request would charge right now.
    fn plan(&self, prompt: &[usize], max_new: usize) -> usize {
        let (new_keys, grow, cow) = self.charge_parts(prompt, max_new);
        new_keys + grow + cow
    }

    /// Whether `extra` more pages fit the budget (always true unbudgeted).
    fn fits(&self, extra: usize) -> bool {
        self.budget.is_none_or(|b| self.used + extra <= b)
    }

    /// Records an admission: registers/references prompt prefixes and
    /// charges the pool.
    fn commit(&mut self, slot: usize, prompt: &[usize], max_new: usize) {
        let (new_keys, grow, cow) = self.charge_parts(prompt, max_new);
        let s = self.page_size;
        let l = prompt.len();
        let n_pages = l.div_ceil(s);
        let mut keys = Vec::with_capacity(n_pages);
        for pi in 0..n_pages {
            let end = ((pi + 1) * s).min(l);
            let key = prompt[..end].to_vec();
            *self.registry.entry(key.clone()).or_insert(0) += 1;
            keys.push(key);
        }
        self.used += new_keys + grow + cow;
        self.peak_used = self.peak_used.max(self.used);
        let shared = self.registry.values().filter(|&&r| r >= 2).count();
        self.peak_shared = self.peak_shared.max(shared);
        let prior = self.slots.insert(
            slot,
            LedgerSlot {
                keys,
                private: 0,
                reserved: grow + cow,
                len: l,
                frontier_keyed: !l.is_multiple_of(s),
            },
        );
        assert!(prior.is_none(), "slot {slot} admitted while still charged");
    }

    /// Records one decode token appended to `slot`'s cache row.
    fn advance(&mut self, slot: usize) {
        let s = self.page_size;
        let Some(rec) = self.slots.get_mut(&slot) else {
            return; // Slot not ledger-tracked (slab tier never calls this).
        };
        let pos = rec.len;
        rec.len += 1;
        if pos % s == 0 {
            // Crossing into a fresh page: a growth reservation materializes.
            assert!(rec.reserved > 0, "slot {slot} grew past its reservation");
            rec.reserved -= 1;
            rec.private += 1;
        } else if rec.frontier_keyed {
            // First write into the partial last prompt page.
            rec.frontier_keyed = false;
            let Some(key) = rec.keys.pop() else {
                unreachable!("frontier_keyed implies a registered frontier page");
            };
            let Some(refs) = self.registry.get_mut(&key) else {
                unreachable!("slot keys are always registered");
            };
            if *refs > 1 {
                // Copy-on-write: the copy-out consumes the reservation; the
                // original page stays with its other references.
                *refs -= 1;
                assert!(rec.reserved > 0, "copy-on-write without a reservation");
                rec.reserved -= 1;
                rec.private += 1;
            } else {
                // Sole reference: the cache deregisters and writes in
                // place — the page converts from keyed to private, no new
                // allocation.
                self.registry.remove(&key);
                rec.private += 1;
            }
        }
    }

    /// Records an eviction, refunding every page whose last reference this
    /// slot held.
    fn release(&mut self, slot: usize) {
        let Some(rec) = self.slots.remove(&slot) else {
            return; // Never admitted (idle-slot re-eviction).
        };
        let mut refund = rec.private + rec.reserved;
        for key in rec.keys {
            if let Some(refs) = self.registry.get_mut(&key) {
                *refs -= 1;
                if *refs == 0 {
                    self.registry.remove(&key);
                    refund += 1;
                }
            }
        }
        assert!(self.used >= refund, "page ledger refund exceeds usage");
        self.used -= refund;
    }

    /// Minimum free pages observed under the budget (`0` unbudgeted).
    fn min_free(&self) -> usize {
        self.budget.map_or(0, |b| b.saturating_sub(self.peak_used))
    }
}

impl ContinuousBatcher {
    /// Builds both tiers from one model and layout (the common case; the
    /// paper's tiers may differ in chip count, which maps here to building
    /// with different layouts via two engines — a future extension).
    ///
    /// # Panics
    ///
    /// Panics if `opts.max_decode_batch` is zero or violates the layout's
    /// batch divisibility requirements, or on any condition
    /// [`PartitionedEngine::new`] panics on.
    #[must_use]
    pub fn new(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        opts: ServingOptions,
    ) -> Self {
        ContinuousBatcher::new_impl(model, layout, fmt, None, opts)
    }

    /// Like [`ContinuousBatcher::new`] with an explicit execution mode
    /// pinned into both tiers (and any engine rebuilt during fault
    /// recovery), bypassing the per-engine execution planner.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ContinuousBatcher::new`].
    #[must_use]
    pub fn new_with_exec(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        exec: ExecMode,
        opts: ServingOptions,
    ) -> Self {
        ContinuousBatcher::new_impl(model, layout, fmt, Some(exec), opts)
    }

    fn new_impl(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        exec: Option<ExecMode>,
        opts: ServingOptions,
    ) -> Self {
        assert!(opts.max_decode_batch > 0, "decode batch cap must be positive");
        let prefill =
            build_engine(model, layout, fmt, exec, opts.intra_chip_threads, opts.kv_backend);
        let decode =
            build_engine(model, layout, fmt, exec, opts.intra_chip_threads, opts.kv_backend);
        let deadline = decode.collective_deadline();
        ContinuousBatcher {
            prefill,
            decode,
            opts,
            model: model.clone(),
            layout,
            fmt,
            exec,
            deadline,
            decode_fault: None,
            preempt_plan: Vec::new(),
            max_recoveries: 3,
        }
    }

    /// The decode-tier engine (for inspecting traffic or comm times).
    #[must_use]
    pub fn decode_engine(&self) -> &PartitionedEngine {
        &self.decode
    }

    /// The slot-machine parameters the lifecycle analyzer models (see
    /// [`BatcherSpec`]).
    #[must_use]
    pub fn spec(&self) -> BatcherSpec {
        let (page_size, pool_pages) = match self.decode.kv_backend() {
            KvBackend::Slab => (None, None),
            KvBackend::Paged { page_size } => (
                Some(page_size),
                self.opts.kv_position_budget.map(|b| b / page_size),
            ),
        };
        BatcherSpec {
            slots: self.opts.max_decode_batch,
            max_recoveries: self.max_recoveries,
            prefill_emits_first_token: true,
            replay_restarts_at: 1,
            page_size,
            pool_pages,
            preemption: self.opts.preemption,
        }
    }

    /// Sets the collective deadline both tiers (and any rebuilt engine)
    /// run under; `None` waits forever.
    pub fn set_collective_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
        self.prefill.set_collective_deadline(deadline);
        self.decode.set_collective_deadline(deadline);
    }

    /// Caps how many faults one [`ContinuousBatcher::try_serve`] call will
    /// recover from before giving up with [`ServeError::RecoveryLimit`].
    pub fn set_max_recoveries(&mut self, max: usize) {
        self.max_recoveries = max;
    }

    /// Arms `plan` into the decode tier immediately before its
    /// `at_step`-th successful decode step (chaos testing): the plan's call
    /// indices then count collectives from the start of that step. One-shot
    /// — a rebuilt engine comes up fault-free.
    pub fn schedule_decode_fault(&mut self, at_step: usize, plan: FaultPlan) {
        self.decode_fault = Some((at_step, plan));
    }

    /// Arms `plan` into the prefill tier right away (chaos testing). The
    /// recovery path rebuilds the tier fault-free and retries the prompt.
    pub fn inject_prefill_fault(&mut self, plan: FaultPlan) {
        self.prefill.inject_faults(plan);
    }

    /// Forces preemptions for the next serve call (conformance testing):
    /// each `(after_step, slot)` entry evicts whatever request occupies
    /// `slot` at the step boundary right after the `after_step`-th
    /// successful decode step, re-queuing it exactly as a policy
    /// preemption would. One-shot; entries naming an empty slot are
    /// no-ops. The conformance suite drives arbitrary schedules through
    /// this hook and asserts streams stay bit-identical to un-preempted
    /// runs.
    pub fn schedule_preemptions(&mut self, plan: &[(usize, usize)]) {
        self.preempt_plan = plan.to_vec();
    }

    /// Serves `requests` (sorted by arrival) to completion and returns
    /// every request's generated tokens plus measured statistics.
    ///
    /// See [`ContinuousBatcher::try_serve`] for the admission policy and
    /// recovery behavior.
    ///
    /// # Panics
    ///
    /// Panics on any [`ServeError`] — invalid submissions (empty request
    /// list, unsorted arrivals, an empty prompt, a learned-position
    /// overflow) and engine failures past the recovery budget alike.
    pub fn serve(&mut self, requests: &[ServingRequest]) -> ServingOutcome {
        self.try_serve(requests).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Serves `requests` (sorted by arrival) to completion.
    ///
    /// Admission policy: priority-first, FIFO within a class. At every
    /// step boundary, arrived requests join their class queue; the
    /// highest waiting class is prefilled first (batch-1, padded to the
    /// layout's minimum batch by prompt replication) and takes the lowest
    /// free slot, until slots or arrived requests run out. With
    /// [`ServingOptions::preemption`], a waiting request whose class
    /// strictly exceeds the lowest in-flight class evicts that slot's
    /// request (least progress first, so the least replay is wasted); the
    /// victim re-enters its class queue and later replays to a
    /// bit-identical stream through the same machinery fault recovery
    /// uses. The decode tier then steps the full slot batch — idle slots
    /// carry a dummy token and are re-evicted each step so they neither
    /// age nor allocate. A request leaves its slot the moment its last
    /// token is sampled.
    ///
    /// Admission control ([`ServingOptions::queue_limit`],
    /// [`ServingOptions::ttft_deadline`]) sheds waiting requests under
    /// overload instead of queueing without bound; each shed is a typed
    /// [`ServeError::Overloaded`] in [`ServingOutcome::shed`], the run
    /// itself still completes. Preempted requests are never shed — they
    /// hold emitted tokens and always complete.
    ///
    /// Failed steps trigger recovery (see the module docs): the dead tier
    /// is rebuilt and in-flight requests are replayed to bit-identical
    /// streams, up to [`ContinuousBatcher::set_max_recoveries`] faults.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoRequests`] / [`ServeError::UnsortedArrivals`] /
    /// [`ServeError::EmptyPrompt`] / [`ServeError::PromptTooLong`] reject
    /// the submission before any engine work; [`ServeError::Engine`] and
    /// [`ServeError::RecoveryLimit`] report faults recovery could not
    /// absorb.
    pub fn try_serve(&mut self, requests: &[ServingRequest]) -> Result<ServingOutcome, ServeError> {
        if requests.is_empty() {
            return Err(ServeError::NoRequests);
        }
        if !requests.windows(2).all(|w| w[0].arrival <= w[1].arrival) {
            return Err(ServeError::UnsortedArrivals);
        }
        let cfg = self.decode.config().clone();
        for (index, r) in requests.iter().enumerate() {
            if r.prompt.is_empty() {
                return Err(ServeError::EmptyPrompt { index });
            }
            let needed = r.prompt.len() + r.max_new_tokens;
            if cfg.position == PositionKind::Learned && needed > cfg.max_seq {
                return Err(ServeError::PromptTooLong { index, needed, max_seq: cfg.max_seq });
            }
        }
        let mut cap = self.opts.max_decode_batch;
        let reserve =
            requests.iter().map(|r| r.prompt.len() + r.max_new_tokens).max().unwrap_or(0);
        let mut ledger = match self.decode.kv_backend() {
            KvBackend::Paged { page_size } => Some(PageLedger::new(
                page_size,
                self.opts.kv_position_budget.map(|b| b / page_size),
            )),
            KvBackend::Slab => {
                // Slab budgeting: every slot pre-charges the worst-case
                // request length, so the budget simply caps the slot count.
                if let Some(budget) = self.opts.kv_position_budget {
                    let fit = budget / reserve.max(1);
                    if fit == 0 {
                        let index = requests
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, r)| r.prompt.len() + r.max_new_tokens)
                            .map_or(0, |(i, _)| i);
                        return Err(ServeError::KvBudgetExceeded {
                            index,
                            needed: reserve,
                            budget,
                        });
                    }
                    cap = cap.min(fit);
                }
                None
            }
        };
        self.decode.begin_slots(cap, reserve);
        let pad = self.prefill.min_batch();

        let t0 = Instant::now();
        let now = || t0.elapsed().as_secs_f64();
        let n = requests.len();
        let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut prefilled_at = vec![0.0f64; n];
        let mut finished_at = vec![0.0f64; n];
        // Requests arrive (in sorted order) past `cursor` into their class
        // queue; admission drains the highest class first, FIFO within.
        let mut waiting: [VecDeque<usize>; 3] = Default::default();
        let mut cursor = 0usize;
        let mut shed: Vec<ServeError> = Vec::new();
        let mut is_shed = vec![false; n];
        let mut preemptions = 0usize;
        let mut preempted_replayed = 0usize;
        let mut forced = std::mem::take(&mut self.preempt_plan);
        let mut active: Vec<Option<Active>> = (0..cap).map(|_| None).collect();
        let mut step_log: Vec<(usize, f64)> = Vec::new();
        let mut occupancy_sum = 0usize;
        let mut recovery = RecoveryStats::default();
        let mut steps_done = 0usize;
        let mut peak_live = 0usize;

        loop {
            // Arrived requests join their class queue.
            while cursor < n && requests[cursor].arrival <= now() {
                waiting[requests[cursor].priority.index()].push_back(cursor);
                cursor += 1;
            }

            // Forced preemptions scheduled for this step boundary (one
            // shot each; empty slots are no-ops).
            for i in (0..forced.len()).rev() {
                let (after_step, slot) = forced[i];
                if after_step != steps_done {
                    continue;
                }
                forced.swap_remove(i);
                if let Some(a) = active[slot].take() {
                    waiting[requests[a.idx].priority.index()].push_front(a.idx);
                    self.decode.evict_slot(slot);
                    if let Some(led) = &mut ledger {
                        led.release(slot);
                    }
                    preemptions += 1;
                }
            }

            // TTFT-deadline shedding. Preempted victims (non-empty
            // recording) are exempt: they were admitted once and must
            // complete.
            for class in Priority::ALL {
                if let Some(deadline) = self.opts.ttft_deadline[class.index()] {
                    waiting[class.index()].retain(|&idx| {
                        let waited = now() - requests[idx].arrival;
                        if outputs[idx].is_empty() && waited > deadline {
                            is_shed[idx] = true;
                            shed.push(ServeError::Overloaded {
                                index: idx,
                                reason: OverloadShed::TtftDeadline { waited, deadline },
                            });
                            false
                        } else {
                            true
                        }
                    });
                }
            }

            // Queue-depth shedding: the newest waiting request of the
            // lowest class goes first; preempted victims are exempt.
            if let Some(limit) = self.opts.queue_limit {
                let mut total: usize = waiting.iter().map(VecDeque::len).sum();
                'shed: while total > limit {
                    for class in Priority::ALL {
                        let q = &mut waiting[class.index()];
                        let Some(pos) = q.iter().rposition(|&idx| outputs[idx].is_empty())
                        else {
                            continue;
                        };
                        let Some(idx) = q.remove(pos) else { unreachable!("pos in bounds") };
                        is_shed[idx] = true;
                        shed.push(ServeError::Overloaded {
                            index: idx,
                            reason: OverloadShed::QueueFull { waiting: total, limit },
                        });
                        total -= 1;
                        continue 'shed;
                    }
                    break; // only un-sheddable victims remain waiting
                }
            }

            // Admission at the step boundary, highest class first.
            'admit: while let Some(class) = Priority::ALL
                .into_iter()
                .rev()
                .find(|c| !waiting[c.index()].is_empty())
            {
                let slot = match active.iter().position(Option::is_none) {
                    Some(s) => s,
                    None if self.opts.preemption => {
                        // Policy preemption: evict the lowest class below
                        // the admitted one; among equals the least
                        // progress, so the least replay is wasted.
                        let victim = active
                            .iter()
                            .enumerate()
                            .filter_map(|(s, o)| o.as_ref().map(|a| (s, a.idx)))
                            .filter(|&(_, v)| requests[v].priority < class)
                            .min_by_key(|&(s, v)| {
                                (requests[v].priority, outputs[v].len(), s)
                            });
                        let Some((s, v)) = victim else { break };
                        waiting[requests[v].priority.index()].push_front(v);
                        active[s] = None;
                        self.decode.evict_slot(s);
                        if let Some(led) = &mut ledger {
                            led.release(s);
                        }
                        preemptions += 1;
                        s
                    }
                    None => break,
                };
                let Some(&idx) = waiting[class.index()].front() else { break };
                // Page-pool admission gate (paged decode tier). The charge
                // covers this request's unshared prompt pages plus growth
                // reservations; the idle allowance covers the one dummy
                // page each still-empty slot transiently holds per step, so
                // the physical pool never outgrows the budget.
                if requests[idx].max_new_tokens > 1 {
                    if let Some(led) = &ledger {
                        let req = &requests[idx];
                        let charge = led.plan(&req.prompt, req.max_new_tokens);
                        let live_now = active.iter().flatten().count();
                        let idle_after = cap - (live_now + 1);
                        if !led.fits(charge + idle_after) {
                            if live_now == 0 {
                                // Nothing to evict will ever free enough:
                                // the request cannot fit even alone.
                                let budget =
                                    self.opts.kv_position_budget.unwrap_or(usize::MAX);
                                return Err(ServeError::KvBudgetExceeded {
                                    index: idx,
                                    needed: (led.used + charge + idle_after) * led.page_size,
                                    budget,
                                });
                            }
                            break 'admit; // Defer until eviction frees pages.
                        }
                    }
                }
                waiting[class.index()].pop_front();
                let req = &requests[idx];
                let replaying = !outputs[idx].is_empty();
                let last_logits = self.prefill_with_retry(&req.prompt, pad, &mut recovery)?;
                let mut rng = StdRng::seed_from_u64(req.seed);
                if !replaying {
                    prefilled_at[idx] = now();
                    if req.max_new_tokens == 0 {
                        finished_at[idx] = prefilled_at[idx];
                        continue;
                    }
                }
                // The first generated token comes from the prefill logits —
                // its sampling time is the TTFT recorded above. On a
                // post-preemption re-admission the re-derived token is
                // asserted against the recording instead (the replay
                // cursor then walks the emitted decode suffix).
                let tok = sample_row(&mut rng, &last_logits, self.opts.sampling);
                if replaying {
                    assert_eq!(tok, outputs[idx][0], "request {idx} diverged at replayed token 0");
                    preempted_replayed += outputs[idx].len() - 1;
                } else {
                    outputs[idx].push(tok);
                    if req.max_new_tokens == 1 {
                        finished_at[idx] = now();
                        continue;
                    }
                }
                let kv = self.prefill.extract_kv(0);
                self.decode.insert_kv_shared(slot, &kv, &req.prompt);
                if let Some(led) = &mut ledger {
                    led.commit(slot, &req.prompt, req.max_new_tokens);
                }
                active[slot] = Some(Active { idx, rng, next_tok: tok, consumed: 1 });
            }

            let live = active.iter().flatten().count();
            peak_live = peak_live.max(live);
            if live == 0 {
                if cursor >= n && waiting.iter().all(VecDeque::is_empty) {
                    break;
                }
                // Nothing in flight and the next request has not arrived:
                // nap (bounded, so a mis-scheduled wakeup self-corrects).
                if cursor < n {
                    let wait = requests[cursor].arrival - now();
                    if wait > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(wait.min(0.02)));
                    }
                }
                continue;
            }

            // Idle slots are re-evicted so their dummy appends neither age
            // their positions nor grow their slabs.
            for (s, slot) in active.iter().enumerate() {
                if slot.is_none() {
                    self.decode.evict_slot(s);
                }
            }

            // Scheduled chaos: arm the one-shot fault plan at its step.
            if matches!(self.decode_fault, Some((at, _)) if at == steps_done) {
                if let Some((_, plan)) = self.decode_fault.take() {
                    self.decode.inject_faults(plan);
                }
            }

            // One decode step over the full slot batch.
            let tokens: Vec<usize> =
                active.iter().map(|a| a.as_ref().map_or(0, |a| a.next_tok)).collect();
            let t_step = Instant::now();
            let logits = match self.decode.try_decode_step(&tokens) {
                Ok(logits) => logits,
                Err(err) => {
                    self.recover_decode(
                        requests,
                        &outputs,
                        &mut active,
                        cap,
                        reserve,
                        pad,
                        &mut recovery,
                        &mut ledger,
                        err,
                    )?;
                    continue;
                }
            };
            steps_done += 1;
            step_log.push((live, t_step.elapsed().as_secs_f64()));
            occupancy_sum += live;

            let v = cfg.vocab;
            for (s, slot) in active.iter_mut().enumerate() {
                let Some(a) = slot else { continue };
                // The step appended this row's input token to its cache.
                if let Some(led) = &mut ledger {
                    led.advance(s);
                }
                let row = &logits.data()[s * v..(s + 1) * v];
                let tok = sample_row(&mut a.rng, row, self.opts.sampling);
                if a.consumed < outputs[a.idx].len() {
                    // Replay after a recovery: the recomputed sample must
                    // reproduce its recording bit-for-bit.
                    assert_eq!(
                        tok,
                        outputs[a.idx][a.consumed],
                        "request {} diverged at replayed token {}",
                        a.idx,
                        a.consumed
                    );
                } else {
                    outputs[a.idx].push(tok);
                }
                a.consumed += 1;
                if a.consumed == requests[a.idx].max_new_tokens {
                    finished_at[a.idx] = now();
                    *slot = None;
                    self.decode.evict_slot(s);
                    if let Some(led) = &mut ledger {
                        led.release(s);
                    }
                } else {
                    a.next_tok = tok;
                }
            }
        }

        // Shed requests have no latency to report; everything else does.
        let stats: Vec<RequestStats> = requests
            .iter()
            .enumerate()
            .filter(|&(idx, _)| !is_shed[idx])
            .map(|(idx, r)| RequestStats {
                arrival: r.arrival,
                prefilled: prefilled_at[idx],
                finished: finished_at[idx],
                generated: outputs[idx].len(),
            })
            .collect();
        let total_generated = outputs.iter().map(Vec::len).sum();
        let mut report = ServingReport::new(stats, step_log.len(), occupancy_sum)
            .with_recovery(recovery)
            .with_peak_batch(peak_live);
        if let Some(led) = &ledger {
            report = report.with_kv_pages(led.min_free(), led.peak_shared);
        }
        Ok(ServingOutcome {
            report,
            step_log,
            outputs,
            total_generated,
            shed,
            preemptions,
            preempted_tokens_replayed: preempted_replayed,
        })
    }

    /// Rebuilds the decode tier after a failed step and replays every
    /// in-flight request up to its recorded stream: prompt re-prefilled
    /// (original chunking), RNG re-seeded, first token re-derived from the
    /// prefill logits, KV re-inserted into the same slot. The emitted
    /// decode suffix is then re-derived by the ordinary step loop, which
    /// asserts each replayed sample equals its recording — so a successful
    /// recovery is bit-identical by construction, not by luck.
    #[allow(clippy::too_many_arguments)] // private: the serve loop's locals.
    fn recover_decode(
        &mut self,
        requests: &[ServingRequest],
        outputs: &[Vec<usize>],
        active: &mut [Option<Active>],
        cap: usize,
        reserve: usize,
        pad: usize,
        recovery: &mut RecoveryStats,
        ledger: &mut Option<PageLedger>,
        err: EngineError,
    ) -> Result<(), ServeError> {
        recovery.faults += 1;
        if recovery.faults > self.max_recoveries {
            return Err(ServeError::RecoveryLimit { faults: recovery.faults, last: err });
        }
        let t = Instant::now();
        self.decode = build_engine(
            &self.model,
            self.layout,
            self.fmt,
            self.exec,
            self.opts.intra_chip_threads,
            self.opts.kv_backend,
        );
        self.decode.set_collective_deadline(self.deadline);
        self.decode.begin_slots(cap, reserve);
        // The rebuilt cache starts empty, so the ledger restarts too: each
        // replayed request re-admits (re-sharing prompt prefixes exactly as
        // the fresh block tables do) and the replay steps re-advance it.
        // Peaks carry over — they describe the whole serve call.
        if let Some(led) = ledger {
            *led = PageLedger {
                peak_used: led.peak_used,
                peak_shared: led.peak_shared,
                ..PageLedger::new(led.page_size, led.budget)
            };
        }
        let mut steps_lost = 0usize;
        for (slot, entry) in active.iter_mut().enumerate() {
            let Some(idx) = entry.as_ref().map(|a| a.idx) else { continue };
            let req = &requests[idx];
            let emitted = &outputs[idx];
            let last_logits = self.prefill_with_retry(&req.prompt, pad, recovery)?;
            let mut rng = StdRng::seed_from_u64(req.seed);
            let tok0 = sample_row(&mut rng, &last_logits, self.opts.sampling);
            assert_eq!(tok0, emitted[0], "request {idx} diverged at replayed token 0");
            let kv = self.prefill.extract_kv(0);
            self.decode.insert_kv_shared(slot, &kv, &req.prompt);
            if let Some(led) = ledger {
                led.commit(slot, &req.prompt, req.max_new_tokens);
            }
            *entry = Some(Active { idx, rng, next_tok: tok0, consumed: 1 });
            recovery.requests_replayed += 1;
            recovery.prefill_tokens_replayed += req.prompt.len();
            recovery.decode_tokens_replayed += emitted.len() - 1;
            steps_lost = steps_lost.max(emitted.len() - 1);
        }
        recovery.steps_lost += steps_lost;
        recovery.recovery_seconds += t.elapsed().as_secs_f64();
        Ok(())
    }

    /// [`ContinuousBatcher::try_prefill_padded`] with one recovery: if the
    /// prefill tier fails (it holds no cross-request state), it is rebuilt
    /// fault-free and the prompt retried once, charging the retry to the
    /// recovery ledger. A second failure is unrecoverable.
    fn prefill_with_retry(
        &mut self,
        prompt: &[usize],
        pad: usize,
        recovery: &mut RecoveryStats,
    ) -> Result<Vec<f32>, ServeError> {
        match self.try_prefill_padded(prompt, pad) {
            Ok(logits) => Ok(logits),
            Err(err) => {
                recovery.faults += 1;
                if recovery.faults > self.max_recoveries {
                    return Err(ServeError::RecoveryLimit { faults: recovery.faults, last: err });
                }
                let t = Instant::now();
                self.prefill = build_engine(
                    &self.model,
                    self.layout,
                    self.fmt,
                    self.exec,
                    self.opts.intra_chip_threads,
                    self.opts.kv_backend,
                );
                self.prefill.set_collective_deadline(self.deadline);
                let logits = self.try_prefill_padded(prompt, pad).map_err(ServeError::Engine)?;
                recovery.prefill_tokens_replayed += prompt.len();
                recovery.recovery_seconds += t.elapsed().as_secs_f64();
                Ok(logits)
            }
        }
    }

    /// Prefills one prompt on the prefill tier, padded to batch `pad` by
    /// replication (row 0 is bit-unaffected — batch rows are independent
    /// everywhere), honoring the chunked-prefill option. Returns row 0's
    /// last-position logits; the tier's cache then holds the prompt's KV
    /// for [`PartitionedEngine::extract_kv`].
    fn try_prefill_padded(
        &mut self,
        prompt: &[usize],
        pad: usize,
    ) -> Result<Vec<f32>, EngineError> {
        self.prefill.reset();
        let len = prompt.len();
        let chunk = self.opts.prefill_chunk.unwrap_or(len).max(1);
        let v = self.prefill.config().vocab;
        // Admission rejects empty prompts, so the loop runs ≥ once and
        // `last` is always set on the Ok path.
        let mut last = Vec::new();
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let chunk_tokens: Vec<Vec<usize>> =
                (0..pad).map(|_| prompt[start..end].to_vec()).collect();
            let logits = self.prefill.try_prefill(&chunk_tokens)?; // [pad, l, V]
            let l = end - start;
            last = logits.slice(1, l - 1, 1).data()[..v].to_vec();
            start = end;
        }
        Ok(last)
    }
}
