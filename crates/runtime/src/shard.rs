//! Weight-shard construction for each layout.

use esti_model::reference::mm3;
use esti_model::{LayerWeights, ModelConfig};
use esti_tensor::{ops, quant::QuantizedMatrix, Tensor};

/// How weight values are stored on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightFormat {
    /// f32 exactly as initialized (used for bit-level equality tests).
    Exact,
    /// bf16-rounded storage (what the real system keeps in HBM).
    Bf16,
    /// AQT-style int8 per-channel quantization (Section 3.6): the shard is
    /// stored as actual `i8` values with per-column scales, and matmuls run
    /// over the integer values with f32 accumulation — the weight-only
    /// quantization dataflow of the real system.
    Int8,
}

impl WeightFormat {
    /// Builds the stored form of a weight matrix.
    #[must_use]
    pub fn apply(self, w: &Tensor) -> ShardMat {
        match self {
            WeightFormat::Exact => ShardMat::Dense(w.clone()),
            WeightFormat::Bf16 => ShardMat::Dense(esti_tensor::bf16::quantize_tensor(w)),
            WeightFormat::Int8 => ShardMat::Int8(QuantizedMatrix::quantize(w)),
        }
    }
}

/// A stored weight shard: dense f32/bf16 values, or genuine int8 with
/// per-column scales.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardMat {
    /// Dense floating-point storage.
    Dense(Tensor),
    /// int8 weight-only quantization (Section 3.6).
    Int8(QuantizedMatrix),
    /// Row-concatenation of int8 blocks, each with its own per-column
    /// scales — the result of all-gathering a row-sharded quantized matrix
    /// (each source rank quantized its block independently, so the blocks
    /// cannot merge into one `QuantizedMatrix` without re-quantizing).
    /// Contracting against it folds the blocks' scaled partial products in
    /// ascending rank order, matching the looped weight-gather exactly.
    Int8Cat(Vec<QuantizedMatrix>),
}

impl ShardMat {
    /// `[B, L, E] × shard → [B, L, D]`, running the int8 kernel when the
    /// shard is quantized.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    // Vetted expect: Int8Cat is built from >= 1 source shards.
    #[allow(clippy::expect_used)]
    pub fn mm3(&self, x: &Tensor) -> Tensor {
        match self {
            ShardMat::Dense(w) => mm3(x, w),
            ShardMat::Int8(q) => q.matmul3(x),
            ShardMat::Int8Cat(blocks) => {
                let mut off = 0;
                let mut sum: Option<Tensor> = None;
                for q in blocks {
                    let part = q.matmul3(&x.slice(2, off, q.rows()));
                    off += q.rows();
                    sum = Some(match sum {
                        None => part,
                        Some(s) => &s + &part,
                    });
                }
                sum.expect("Int8Cat has at least one block")
            }
        }
    }

    /// Number of output columns this shard produces.
    ///
    /// # Panics
    ///
    /// Panics if a dense shard is not rank 2.
    #[must_use]
    pub fn cols(&self) -> usize {
        match self {
            ShardMat::Dense(w) => w.dim(1),
            ShardMat::Int8(q) => q.cols(),
            ShardMat::Int8Cat(blocks) => blocks[0].cols(),
        }
    }

    /// `flat [m, d] × shard[:, c0..c0+cn]` without materializing the column
    /// slice — the chunked-output primitive the looped all-reduce /
    /// reduce-scatter epilogues use. Bit-identical to the corresponding
    /// columns of the full product for every chunking (columns are
    /// independent accumulation chains; int8 scales are per-column).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if the column range exceeds the shard.
    #[must_use]
    // Vetted expect: Int8Cat is built from >= 1 source shards.
    #[allow(clippy::expect_used)]
    pub fn matmul_cols(&self, flat: &Tensor, c0: usize, cn: usize) -> Tensor {
        match self {
            ShardMat::Dense(w) => ops::matmul_cols(flat, w, c0, cn),
            ShardMat::Int8(q) => q.matmul_cols(flat, c0, cn),
            ShardMat::Int8Cat(blocks) => {
                // Ascending block (= source rank) order, each block a scaled
                // product over its own row range of the contraction.
                let mut off = 0;
                let mut sum: Option<Tensor> = None;
                for q in blocks {
                    let part = q.matmul_cols(&flat.slice(1, off, q.rows()), c0, cn);
                    off += q.rows();
                    sum = Some(match sum {
                        None => part,
                        Some(s) => &s + &part,
                    });
                }
                sum.expect("Int8Cat has at least one block")
            }
        }
    }

    /// The dense floating-point view (dequantizing if int8) — used by the
    /// weight-gathered dataflows, which communicate shards as tensors.
    #[must_use]
    pub fn dense(&self) -> Tensor {
        match self {
            ShardMat::Dense(w) => w.clone(),
            ShardMat::Int8(q) => q.dequantize(),
            ShardMat::Int8Cat(blocks) => {
                let parts: Vec<Tensor> = blocks.iter().map(QuantizedMatrix::dequantize).collect();
                let refs: Vec<&Tensor> = parts.iter().collect();
                Tensor::concat(&refs, 0)
            }
        }
    }

    /// Stored bytes of this shard: 4 per f32 element, or 1 per int8 value
    /// plus 4 per scale — the asymmetry the memory model charges for.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        match self {
            ShardMat::Dense(w) => w.numel() * 4,
            ShardMat::Int8(q) => q.storage_bytes(),
            ShardMat::Int8Cat(blocks) => blocks.iter().map(QuantizedMatrix::storage_bytes).sum(),
        }
    }
}

/// Slices rows `[r0, r0+rn)` and columns `[c0, c0+cn)` of a rank-2 matrix.
///
/// # Panics
///
/// Panics if the ranges exceed the matrix or `w` is not rank 2.
#[must_use]
pub fn block(w: &Tensor, r0: usize, rn: usize, c0: usize, cn: usize) -> Tensor {
    assert_eq!(w.rank(), 2, "block slicing requires rank-2");
    w.slice(0, r0, rn).slice(1, c0, cn)
}

/// The weight shards one chip holds for one layer.
///
/// Meaning depends on the layout:
/// * 1D: `wq/wk/wv/w_in/w_gate` are column shards, `wo/w_out` row shards,
///   `ln*` replicated.
/// * 2D: every matrix is a `(row, col)` block per `(i, j)`; `ln*` gains are
///   sharded like the boundary activations (`E/n` each).
/// * WG-XYZ: `w_*` are column (in) / row (out) shards that get all-gathered
///   before use; `ln*` replicated.
#[derive(Debug, Clone)]
pub struct LayerShard {
    /// Query projection shard.
    pub wq: ShardMat,
    /// Key projection shard.
    pub wk: ShardMat,
    /// Value projection shard.
    pub wv: ShardMat,
    /// Output projection shard.
    pub wo: ShardMat,
    /// MLP input shard.
    pub w_in: ShardMat,
    /// SwiGLU gate shard (if the model uses SwiGLU).
    pub w_gate: Option<ShardMat>,
    /// MLP output shard.
    pub w_out: ShardMat,
    /// First layernorm gain (replicated or `E`-sharded per layout).
    pub ln1: Tensor,
    /// Second layernorm gain for serial blocks.
    pub ln2: Option<Tensor>,
}

/// Builds the 1D weight-stationary shard for chip `rank` of `n`:
/// projections column-sharded (Q and MHA K/V by heads; MQ K/V replicated),
/// output matrices row-sharded.
///
/// # Panics
///
/// Panics unless `d_ff`, `n_heads` divide `n`.
#[must_use]
pub fn shard_1d(
    cfg: &ModelConfig,
    layer: &LayerWeights,
    rank: usize,
    n: usize,
    fmt: WeightFormat,
) -> LayerShard {
    assert!(cfg.d_ff.is_multiple_of(n), "1D layout needs d_ff divisible by {n} chips");
    assert!(cfg.n_heads.is_multiple_of(n), "1D layout needs n_heads divisible by {n} chips");
    let dh = cfg.d_head;
    let h_loc = cfg.n_heads / n;
    let f_loc = cfg.d_ff / n;
    let e = cfg.d_model;
    let (wk, wv) = if cfg.n_kv_heads() == 1 {
        // Multiquery: the single KV head's projections are replicated.
        (layer.wk.clone(), layer.wv.clone())
    } else {
        (
            block(&layer.wk, 0, e, rank * h_loc * dh, h_loc * dh),
            block(&layer.wv, 0, e, rank * h_loc * dh, h_loc * dh),
        )
    };
    LayerShard {
        wq: fmt.apply(&block(&layer.wq, 0, e, rank * h_loc * dh, h_loc * dh)),
        wk: fmt.apply(&wk),
        wv: fmt.apply(&wv),
        wo: fmt.apply(&block(&layer.wo, rank * h_loc * dh, h_loc * dh, 0, e)),
        w_in: fmt.apply(&block(&layer.w_in, 0, e, rank * f_loc, f_loc)),
        w_gate: layer
            .w_gate
            .as_ref()
            .map(|g| fmt.apply(&block(g, 0, e, rank * f_loc, f_loc))),
        w_out: fmt.apply(&block(&layer.w_out, rank * f_loc, f_loc, 0, e)),
        ln1: layer.ln1.clone(),
        ln2: layer.ln2.clone(),
    }
}

/// Builds the 2D weight-stationary shard (`E_x F_yz`) for chip `(i, j)` of
/// an `x_parts × yz_parts` mesh: every matrix is a block with the `E` side
/// split `X` ways and the `F`/heads side split `YZ` ways. The multiquery KV
/// projections split only their `E` rows (the single head's columns are
/// shared by the whole `yz` group).
///
/// # Panics
///
/// Panics unless `d_model % (x·yz)`, `d_model % x`, `d_ff % (x·yz)` and
/// `n_heads % yz` are all zero.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn shard_2d(
    cfg: &ModelConfig,
    layer: &LayerWeights,
    i: usize,
    j: usize,
    x_parts: usize,
    yz_parts: usize,
    fmt: WeightFormat,
) -> LayerShard {
    let n = x_parts * yz_parts;
    assert!(cfg.d_model.is_multiple_of(n), "2D layout needs d_model divisible by {n} chips");
    assert!(cfg.d_ff.is_multiple_of(n), "2D layout needs d_ff divisible by {n} chips");
    assert!(cfg.n_heads.is_multiple_of(yz_parts), "2D layout needs n_heads divisible by yz={yz_parts}");
    let e = cfg.d_model;
    let dh = cfg.d_head;
    let e_x = e / x_parts;
    let f_yz = cfg.d_ff / yz_parts;
    let h_yz = cfg.n_heads / yz_parts;
    let e_n = e / n;
    let ln_off = i * e_x + j * e_n;
    let (wk, wv) = if cfg.n_kv_heads() == 1 {
        (
            block(&layer.wk, i * e_x, e_x, 0, dh),
            block(&layer.wv, i * e_x, e_x, 0, dh),
        )
    } else {
        (
            block(&layer.wk, i * e_x, e_x, j * h_yz * dh, h_yz * dh),
            block(&layer.wv, i * e_x, e_x, j * h_yz * dh, h_yz * dh),
        )
    };
    LayerShard {
        wq: fmt.apply(&block(&layer.wq, i * e_x, e_x, j * h_yz * dh, h_yz * dh)),
        wk: fmt.apply(&wk),
        wv: fmt.apply(&wv),
        wo: fmt.apply(&block(&layer.wo, j * h_yz * dh, h_yz * dh, i * e_x, e_x)),
        w_in: fmt.apply(&block(&layer.w_in, i * e_x, e_x, j * f_yz, f_yz)),
        w_gate: layer
            .w_gate
            .as_ref()
            .map(|g| fmt.apply(&block(g, i * e_x, e_x, j * f_yz, f_yz))),
        w_out: fmt.apply(&block(&layer.w_out, j * f_yz, f_yz, i * e_x, e_x)),
        ln1: layer.ln1.slice(0, ln_off, e_n),
        ln2: layer.ln2.as_ref().map(|g| g.slice(0, ln_off, e_n)),
    }
}

/// Builds the weight-gathered shard for chip `rank` of `n`: the same
/// column/row sharding as 1D (the stored layout), which the engine
/// all-gathers just before each layer's einsums. Multiquery KV projections
/// are column-split only if the single head divides; otherwise replicated
/// (their gather is skipped).
#[must_use]
pub fn shard_wg(
    cfg: &ModelConfig,
    layer: &LayerWeights,
    rank: usize,
    n: usize,
    fmt: WeightFormat,
) -> LayerShard {
    shard_1d(cfg, layer, rank, n, fmt)
}

/// Builds the shard for the *hybrid* weight-gathered layouts (X / XY
/// extents): the sharded dimension is split first into `n_local` slices
/// (the 1D weight-stationary role this chip plays after the gather) and
/// each slice into `n_gather` sub-shards (what the gather reassembles).
/// Chip `(g, b)` stores sub-shard `g` of slice `b`; all-gathering over the
/// `g` group yields exactly the 1D shard for role `b`.
///
/// # Panics
///
/// Panics unless `d_ff` and `n_heads` divide `n_local · n_gather`.
#[must_use]
pub fn shard_wg_hybrid(
    cfg: &ModelConfig,
    layer: &LayerWeights,
    g: usize,
    b: usize,
    n_gather: usize,
    n_local: usize,
    fmt: WeightFormat,
) -> LayerShard {
    let n = n_gather * n_local;
    assert!(cfg.d_ff.is_multiple_of(n), "hybrid WG needs d_ff divisible by {n} chips");
    assert!(cfg.n_heads.is_multiple_of(n), "hybrid WG needs n_heads divisible by {n} chips");
    let e = cfg.d_model;
    let dh = cfg.d_head;
    // Column offset of sub-shard (b, g) for a dimension of `per_chip` width
    // per chip and `slice` width per local role.
    let h_chip = cfg.n_heads / n;
    let h_slice = cfg.n_heads / n_local;
    let f_chip = cfg.d_ff / n;
    let f_slice = cfg.d_ff / n_local;
    let h_off = b * h_slice + g * h_chip;
    let f_off = b * f_slice + g * f_chip;
    let (wk, wv) = if cfg.n_kv_heads() == 1 {
        (layer.wk.clone(), layer.wv.clone())
    } else {
        (
            block(&layer.wk, 0, e, h_off * dh, h_chip * dh),
            block(&layer.wv, 0, e, h_off * dh, h_chip * dh),
        )
    };
    LayerShard {
        wq: fmt.apply(&block(&layer.wq, 0, e, h_off * dh, h_chip * dh)),
        wk: fmt.apply(&wk),
        wv: fmt.apply(&wv),
        wo: fmt.apply(&block(&layer.wo, h_off * dh, h_chip * dh, 0, e)),
        w_in: fmt.apply(&block(&layer.w_in, 0, e, f_off, f_chip)),
        w_gate: layer
            .w_gate
            .as_ref()
            .map(|w| fmt.apply(&block(w, 0, e, f_off, f_chip))),
        w_out: fmt.apply(&block(&layer.w_out, f_off, f_chip, 0, e)),
        ln1: layer.ln1.clone(),
        ln2: layer.ln2.clone(),
    }
}

/// Reassembles a full layer from 1D shards — a test helper proving the
/// shards tile the original weights exactly.
#[must_use]
// Vetted expect: all shards of one layer carry the same optional fields.
#[allow(clippy::expect_used)]
pub fn unshard_1d(cfg: &ModelConfig, shards: &[LayerShard]) -> LayerWeights {
    let cat = |f: &dyn Fn(&LayerShard) -> &ShardMat, dim: usize| {
        let parts: Vec<Tensor> = shards.iter().map(|s| f(s).dense()).collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat(&refs, dim)
    };
    LayerWeights {
        wq: cat(&|s| &s.wq, 1),
        wk: if cfg.n_kv_heads() == 1 { shards[0].wk.dense() } else { cat(&|s| &s.wk, 1) },
        wv: if cfg.n_kv_heads() == 1 { shards[0].wv.dense() } else { cat(&|s| &s.wv, 1) },
        wo: cat(&|s| &s.wo, 0),
        w_in: cat(&|s| &s.w_in, 1),
        w_gate: shards[0].w_gate.as_ref().map(|_| {
            let parts: Vec<Tensor> = shards
                .iter()
                .map(|s| s.w_gate.as_ref().expect("uniform shards").dense())
                .collect();
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat(&refs, 1)
        }),
        w_out: cat(&|s| &s.w_out, 0),
        ln1: shards[0].ln1.clone(),
        ln2: shards[0].ln2.clone(),
    }
}

/// Sanity check used by tests: multiplying through sharded weights summed
/// over chips equals the unsharded product.
#[must_use]
pub fn megatron_trick_check(cfg: &ModelConfig, layer: &LayerWeights, x: &Tensor, n: usize) -> bool {
    // x [T, E] -> per-chip: (x @ w_in_shard) @ w_out_shard, summed == x @ w_in @ w_out.
    let full = ops::matmul(&ops::matmul(x, &layer.w_in), &layer.w_out);
    let mut acc = Tensor::zeros(full.shape().to_vec());
    for r in 0..n {
        let s = shard_1d(cfg, layer, r, n, WeightFormat::Exact);
        acc = &acc + &ops::matmul(&ops::matmul(x, &s.w_in.dense()), &s.w_out.dense());
    }
    acc.approx_eq(&full, 1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_model::{ModelConfig, Weights};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ModelConfig, Weights) {
        let cfg = ModelConfig::tiny();
        let w = Weights::random(&cfg, 9);
        (cfg, w)
    }

    #[test]
    fn shards_tile_the_original_1d() {
        let (cfg, w) = setup();
        for n in [1usize, 2, 4] {
            let shards: Vec<LayerShard> =
                (0..n).map(|r| shard_1d(&cfg, &w.layers[0], r, n, WeightFormat::Exact)).collect();
            let re = unshard_1d(&cfg, &shards);
            assert!(re.wq.approx_eq(&w.layers[0].wq, 0.0), "n={n}");
            assert!(re.w_in.approx_eq(&w.layers[0].w_in, 0.0));
            assert!(re.w_out.approx_eq(&w.layers[0].w_out, 0.0));
            assert!(re.wo.approx_eq(&w.layers[0].wo, 0.0));
        }
    }

    #[test]
    fn megatron_trick_holds() {
        // The Shoeybi et al. trick: output-sharded matmul feeding
        // input-sharded matmul needs no intermediate communication.
        let (cfg, w) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&mut rng, vec![5, cfg.d_model], 1.0);
        for n in [2usize, 4] {
            assert!(megatron_trick_check(&cfg, &w.layers[0], &x, n), "n={n}");
        }
    }

    #[test]
    fn shard_2d_blocks_cover_w_in() {
        let (cfg, w) = setup();
        let (x_parts, yz_parts) = (2, 2);
        // Sum of block elements equals total elements.
        let mut total = 0;
        for i in 0..x_parts {
            for j in 0..yz_parts {
                let s = shard_2d(&cfg, &w.layers[0], i, j, x_parts, yz_parts, WeightFormat::Exact);
                let w_in = s.w_in.dense();
                total += w_in.numel();
                assert_eq!(w_in.shape(), &[cfg.d_model / 2, cfg.d_ff / 2]);
                // block content matches the original at the right offset
                assert_eq!(
                    w_in.at(&[0, 0]),
                    w.layers[0].w_in.at(&[i * cfg.d_model / 2, j * cfg.d_ff / 2])
                );
            }
        }
        assert_eq!(total, cfg.d_model * cfg.d_ff);
    }

    #[test]
    fn shard_2d_ln_gains_are_e_over_n() {
        let (cfg, w) = setup();
        let s = shard_2d(&cfg, &w.layers[0], 1, 1, 2, 2, WeightFormat::Exact);
        assert_eq!(s.ln1.numel(), cfg.d_model / 4);
    }

    #[test]
    fn hybrid_shards_gather_to_1d_shards() {
        // Gathering the g-group of hybrid shards must reproduce the 1D
        // shard for role b exactly.
        let (cfg, w) = setup();
        let (n_gather, n_local) = (2usize, 2usize);
        for b in 0..n_local {
            let parts: Vec<LayerShard> = (0..n_gather)
                .map(|g| shard_wg_hybrid(&cfg, &w.layers[0], g, b, n_gather, n_local, WeightFormat::Exact))
                .collect();
            let dense: Vec<Tensor> = parts.iter().map(|p| p.w_in.dense()).collect();
            let refs: Vec<&Tensor> = dense.iter().collect();
            let gathered = Tensor::concat(&refs, 1);
            let oned = shard_1d(&cfg, &w.layers[0], b, n_local, WeightFormat::Exact);
            assert!(gathered.approx_eq(&oned.w_in.dense(), 0.0), "b={b}");
            let outs: Vec<Tensor> = parts.iter().map(|p| p.w_out.dense()).collect();
            let refs_out: Vec<&Tensor> = outs.iter().collect();
            assert!(Tensor::concat(&refs_out, 0).approx_eq(&oned.w_out.dense(), 0.0));
            let qs: Vec<Tensor> = parts.iter().map(|p| p.wq.dense()).collect();
            let refs_q: Vec<&Tensor> = qs.iter().collect();
            assert!(Tensor::concat(&refs_q, 1).approx_eq(&oned.wq.dense(), 0.0));
        }
    }

    #[test]
    fn multiquery_kv_replicated_in_1d() {
        let (cfg, w) = setup();
        let a = shard_1d(&cfg, &w.layers[0], 0, 4, WeightFormat::Exact);
        let b = shard_1d(&cfg, &w.layers[0], 3, 4, WeightFormat::Exact);
        assert!(a.wk.dense().approx_eq(&b.wk.dense(), 0.0), "MQ K projection must be replicated");
    }

    #[test]
    fn multihead_kv_sharded_in_1d() {
        let cfg = ModelConfig::tiny_multihead();
        let w = Weights::random(&cfg, 9);
        let a = shard_1d(&cfg, &w.layers[0], 0, 2, WeightFormat::Exact);
        assert_eq!(a.wk.dense().shape(), &[cfg.d_model, cfg.attn_dim() / 2]);
    }

    #[test]
    fn weight_formats_round() {
        let (cfg, w) = setup();
        let exact = shard_1d(&cfg, &w.layers[0], 0, 2, WeightFormat::Exact);
        let bf16 = shard_1d(&cfg, &w.layers[0], 0, 2, WeightFormat::Bf16);
        let int8 = shard_1d(&cfg, &w.layers[0], 0, 2, WeightFormat::Int8);
        assert!(bf16.wq.dense().approx_eq(&exact.wq.dense(), 0.02));
        assert!(int8.wq.dense().approx_eq(&exact.wq.dense(), 0.02));
        assert_ne!(bf16.wq.dense(), exact.wq.dense());
        assert_ne!(int8.wq.dense(), exact.wq.dense());
        // int8 stores genuinely quantized values, at ~4x less space than f32.
        assert!(matches!(int8.wq, ShardMat::Int8(_)));
        assert!(int8.wq.storage_bytes() * 3 < exact.wq.storage_bytes());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_sharding_rejected() {
        let (cfg, w) = setup();
        let _ = shard_1d(&cfg, &w.layers[0], 0, 3, WeightFormat::Exact);
    }
}
