//! Looped CollectiveEinsum execution (Section 3.5): fused einsum +
//! collective loops that move each collective as a pipeline of chunks,
//! computing on chunk `i-1` while chunk `i` is in flight.
//!
//! Every helper here is the *single* code path for both execution modes:
//! [`ExecMode::Monolithic`](crate::ExecMode::Monolithic) simply runs the
//! same loop with one chunk. Bit-identical results across modes and chunk
//! counts therefore hold by construction, given two invariants:
//!
//! 1. the matmul kernel accumulates every output element by one serial
//!    chain of adds in strictly ascending `k` order, so splitting a
//!    contraction at any `k` (or column) boundary and continuing the chain
//!    reproduces the monolithic product bit-for-bit
//!    ([`ops::matmul_acc_rows`] / [`ops::matmul_cols`]);
//! 2. where transport order differs from contraction order (a gathered
//!    contraction receives rank `r`'s chunk `i` before rank `r+1`'s chunk
//!    `0`), the helper keeps one accumulator *per source rank* — each a
//!    pure ascending-`k` chain — and folds them in ascending rank order at
//!    the end. The fold shape depends only on the group size, never the
//!    chunk count.
//!
//! Int8 shards run the integer kernel on whole matrices, so the paths that
//! fuse a chunked collective into a float matmul fall back to the
//! monolithic collective for quantized weights — in *both* modes, keeping
//! the mode-equivalence guarantee format-independent.

use esti_collectives::{CollectiveOp, CommGroup};
use esti_tensor::{ops, Tensor};

use crate::shard::ShardMat;

/// Flattens `[B, L, D]` activations to `[B·L, D]` for the rank-2 kernels.
fn flat2(x: &Tensor) -> Tensor {
    let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
    x.reshape(vec![b * l, d])
}

fn any_int8(terms: &[(&Tensor, &ShardMat)]) -> bool {
    terms.iter().any(|(_, w)| matches!(w, ShardMat::Int8(_)))
}

/// The dense tensor behind a shard known to be float-stored (callers check
/// for int8 first and take the fallback path).
fn dense_ref(w: &ShardMat) -> &Tensor {
    match w {
        ShardMat::Dense(t) => t,
        ShardMat::Int8(_) => unreachable!("int8 shards take the monolithic fallback"),
    }
}

/// Rank-ascending elementwise sum — the reduction order every monolithic
/// collective uses, reproduced here chunk by chunk.
fn sum_ranks(parts: &[Tensor]) -> Tensor {
    let mut sum = parts[0].clone();
    for p in &parts[1..] {
        sum = &sum + p;
    }
    sum
}

/// Fused partial-matmul + all-reduce, chunked over the output columns: the
/// 1D weight-stationary block epilogue. Computes
/// `all_reduce(Σ_t xₜ × wₜ)` by producing each column chunk of the local
/// partial sum just in time to feed the chunk pipeline.
///
/// Column chunking is bit-exact (each output element's `k` chain is
/// independent of which column block computes it), and the chunked
/// all-reduce sums ranks in the same ascending order as the monolithic
/// one, so the result is bit-identical for every chunk count.
///
/// # Panics
///
/// Panics if the weights' output width is not divisible by `chunks`.
pub(crate) fn looped_ar_cols(
    group: &CommGroup,
    terms: &[(&Tensor, &ShardMat)],
    chunks: usize,
) -> Tensor {
    if any_int8(terms) {
        let mut part = terms[0].1.mm3(terms[0].0);
        for (x, w) in &terms[1..] {
            part = &part + &w.mm3(x);
        }
        return group.all_reduce(&part);
    }
    let (b, l) = (terms[0].0.dim(0), terms[0].0.dim(1));
    let rows = b * l;
    let flats: Vec<Tensor> = terms.iter().map(|(x, _)| flat2(x)).collect();
    let ws: Vec<&Tensor> = terms.iter().map(|(_, w)| dense_ref(w)).collect();
    let n_out = ws[0].dim(1);
    assert!(
        n_out.is_multiple_of(chunks),
        "all-reduce output width {n_out} not divisible by {chunks} chunks"
    );
    let step = n_out / chunks;
    let compute = |ci: usize| -> Tensor {
        let mut part = ops::matmul_cols(&flats[0], ws[0], ci * step, step);
        for t in 1..flats.len() {
            part = &part + &ops::matmul_cols(&flats[t], ws[t], ci * step, step);
        }
        part
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::AllReduce,
        &[rows, n_out],
        [1, 1],
        chunks,
        rows * n_out * 2,
    );
    let mut out: Vec<Tensor> = Vec::with_capacity(chunks);
    ex.post(compute(0));
    for ci in 1..chunks {
        // Compute chunk `ci` while chunk `ci-1` is in flight.
        let next = compute(ci);
        out.push(sum_ranks(&ex.collect()));
        ex.post(next);
    }
    out.push(sum_ranks(&ex.collect()));
    let refs: Vec<&Tensor> = out.iter().collect();
    Tensor::concat(&refs, 1).into_reshape(vec![b, l, n_out])
}

/// Fused partial-matmul + reduce-scatter, chunked within each destination's
/// scatter slice: the 2D weight-stationary block epilogue. Computes
/// `reduce_scatter(Σ_t xₜ × wₜ, dim 2)`, producing for chunk `c` the `c`-th
/// sub-slice of *every* destination's output so each collected chunk
/// reduces immediately to a piece of this member's result.
///
/// Bit-identical to the monolithic matmul + reduce-scatter for every chunk
/// count (column chunking + rank-ascending reduction, as in
/// [`looped_ar_cols`]).
///
/// # Panics
///
/// Panics if the output width is not divisible by `size() * chunks`.
pub(crate) fn looped_rs_cols(
    group: &CommGroup,
    terms: &[(&Tensor, &ShardMat)],
    chunks: usize,
) -> Tensor {
    if any_int8(terms) {
        let mut part = terms[0].1.mm3(terms[0].0);
        for (x, w) in &terms[1..] {
            part = &part + &w.mm3(x);
        }
        return group.reduce_scatter(&part, 2);
    }
    let (b, l) = (terms[0].0.dim(0), terms[0].0.dim(1));
    let rows = b * l;
    let flats: Vec<Tensor> = terms.iter().map(|(x, _)| flat2(x)).collect();
    let ws: Vec<&Tensor> = terms.iter().map(|(_, w)| dense_ref(w)).collect();
    let n_out = ws[0].dim(1);
    let k = group.size();
    assert!(
        n_out.is_multiple_of(k),
        "reduce-scatter output width {n_out} not divisible by group size {k}"
    );
    let part_w = n_out / k;
    assert!(
        part_w.is_multiple_of(chunks),
        "reduce-scatter part width {part_w} not divisible by {chunks} chunks"
    );
    let step = part_w / chunks;
    let compute = |ci: usize| -> Tensor {
        let pieces: Vec<Tensor> = (0..k)
            .map(|dest| {
                let c0 = dest * part_w + ci * step;
                let mut p = ops::matmul_cols(&flats[0], ws[0], c0, step);
                for t in 1..flats.len() {
                    p = &p + &ops::matmul_cols(&flats[t], ws[t], c0, step);
                }
                p
            })
            .collect();
        let refs: Vec<&Tensor> = pieces.iter().collect();
        Tensor::concat(&refs, 1)
    };
    let mine = |parts: Vec<Tensor>| -> Tensor {
        let mut sum = parts[0].slice(1, group.rank() * step, step);
        for p in &parts[1..] {
            sum = &sum + &p.slice(1, group.rank() * step, step);
        }
        sum
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::ReduceScatter,
        &[rows, n_out],
        [1, 1],
        chunks,
        rows * n_out,
    );
    let mut out: Vec<Tensor> = Vec::with_capacity(chunks);
    ex.post(compute(0));
    for ci in 1..chunks {
        let next = compute(ci);
        out.push(mine(ex.collect()));
        ex.post(next);
    }
    out.push(mine(ex.collect()));
    let refs: Vec<&Tensor> = out.iter().collect();
    Tensor::concat(&refs, 1).into_reshape(vec![b, l, part_w])
}

/// Streamed activation all-gather feeding a set of contractions: the 2D
/// weight-stationary block prologue. Equivalent to
/// `x_i = all_gather(xn, dim 2); [w.mm3(&x_i) for w in weights]`, but each
/// collected chunk of `xn` is multiplied into per-source-rank accumulators
/// while the next chunk is in flight, and the accumulators are folded in
/// ascending rank order at the end (invariant 2 in the module docs).
///
/// # Panics
///
/// Panics if `xn`'s sharded width is not divisible by `chunks`.
pub(crate) fn looped_ag_einsums(
    group: &CommGroup,
    xn: &Tensor,
    weights: &[&ShardMat],
    chunks: usize,
) -> Vec<Tensor> {
    if weights.iter().any(|w| matches!(w, ShardMat::Int8(_))) {
        let x_i = group.all_gather(xn, 2);
        return weights.iter().map(|w| w.mm3(&x_i)).collect();
    }
    let (b, l, e_loc) = (xn.dim(0), xn.dim(1), xn.dim(2));
    let rows = b * l;
    let k = group.size();
    assert!(
        e_loc.is_multiple_of(chunks),
        "all-gather width {e_loc} not divisible by {chunks} chunks"
    );
    let step = e_loc / chunks;
    let flat = flat2(xn);
    let ws: Vec<&Tensor> = weights.iter().map(|w| dense_ref(w)).collect();
    let widths: Vec<usize> = ws.iter().map(|w| w.dim(1)).collect();
    let mut accs: Vec<Vec<Tensor>> = widths
        .iter()
        .map(|&n_w| (0..k).map(|_| Tensor::zeros(vec![rows, n_w])).collect())
        .collect();
    let absorb = |parts: &[Tensor], ci: usize, accs: &mut Vec<Vec<Tensor>>| {
        for (r, chunk) in parts.iter().enumerate() {
            let r0 = r * e_loc + ci * step;
            for (wi, w) in ws.iter().enumerate() {
                ops::matmul_acc_rows(chunk, w, r0, &mut accs[wi][r]);
            }
        }
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::AllGather,
        &[rows, e_loc],
        [1, 1],
        chunks,
        rows * e_loc * k,
    );
    ex.post(flat.slice(1, 0, step));
    for ci in 1..chunks {
        let parts = ex.collect();
        // Post chunk `ci` first, then contract chunk `ci-1` "behind" it.
        ex.post(flat.slice(1, ci * step, step));
        absorb(&parts, ci - 1, &mut accs);
    }
    let parts = ex.collect();
    absorb(&parts, chunks - 1, &mut accs);
    accs.into_iter()
        .zip(widths)
        .map(|(rank_accs, n_w)| sum_ranks(&rank_accs).into_reshape(vec![b, l, n_w]))
        .collect()
}

/// Streamed weight all-gather for a column-sharded matrix, fused with its
/// einsum: the weight-gathered prologue for `wq`/`wk`/`wv`/`w_in`/`w_gate`.
/// Equivalent to `x × all_gather(shard, dim 1)`; each collected chunk
/// writes its own column block of the output, so the result is
/// bit-identical to the gathered monolithic matmul for every chunk count.
///
/// Int8 shards travel as their dense view, exactly like the monolithic
/// weight-gather (the ledger charges stored-dtype volume either way).
///
/// # Panics
///
/// Panics if the shard's column count is not divisible by `chunks`.
pub(crate) fn looped_wg_cols(
    group: &CommGroup,
    x: &Tensor,
    shard: &ShardMat,
    chunks: usize,
) -> Tensor {
    let w = shard.dense();
    let (b, l) = (x.dim(0), x.dim(1));
    let rows = b * l;
    let (e, w_loc) = (w.dim(0), w.dim(1));
    let k = group.size();
    assert!(
        w_loc.is_multiple_of(chunks),
        "weight-gather shard width {w_loc} not divisible by {chunks} chunks"
    );
    let step = w_loc / chunks;
    let flat = flat2(x);
    let mut out = Tensor::zeros(vec![rows, w_loc * k]);
    let absorb = |parts: &[Tensor], ci: usize, out: &mut Tensor| {
        for (r, chunk) in parts.iter().enumerate() {
            ops::matmul_into_cols(&flat, chunk, out, r * w_loc + ci * step);
        }
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::AllGather,
        &[e, w_loc],
        [1, 1],
        chunks,
        e * w_loc * k,
    );
    ex.post(w.slice(1, 0, step));
    for ci in 1..chunks {
        let parts = ex.collect();
        ex.post(w.slice(1, ci * step, step));
        absorb(&parts, ci - 1, &mut out);
    }
    let parts = ex.collect();
    absorb(&parts, chunks - 1, &mut out);
    out.into_reshape(vec![b, l, w_loc * k])
}

/// Streamed weight all-gather for a row-sharded matrix, fused with its
/// einsum: the weight-gathered epilogue for `wo`/`w_out`. Equivalent to
/// `x × all_gather(shard, dim 0)` with one ascending-`k` accumulator per
/// source rank, folded in ascending rank order (invariant 2 in the module
/// docs), so results are chunk-count- and mode-invariant.
///
/// # Panics
///
/// Panics if the shard's row count is not divisible by `chunks`.
pub(crate) fn looped_wg_rows(
    group: &CommGroup,
    x: &Tensor,
    shard: &ShardMat,
    chunks: usize,
) -> Tensor {
    let w = shard.dense();
    let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
    let rows = b * l;
    let (w_loc, n_out) = (w.dim(0), w.dim(1));
    let k = group.size();
    assert_eq!(d, w_loc * k, "row-gather contraction width mismatch");
    assert!(
        w_loc.is_multiple_of(chunks),
        "weight-gather shard height {w_loc} not divisible by {chunks} chunks"
    );
    let step = w_loc / chunks;
    let flat = flat2(x);
    let mut accs: Vec<Tensor> = (0..k).map(|_| Tensor::zeros(vec![rows, n_out])).collect();
    let absorb = |parts: &[Tensor], ci: usize, accs: &mut Vec<Tensor>| {
        for (r, chunk) in parts.iter().enumerate() {
            let a = flat.slice(1, r * w_loc + ci * step, step);
            ops::matmul_acc_rows(&a, chunk, 0, &mut accs[r]);
        }
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::AllGather,
        &[w_loc, n_out],
        [0, 0],
        chunks,
        w_loc * n_out * k,
    );
    ex.post(w.slice(0, 0, step));
    for ci in 1..chunks {
        let parts = ex.collect();
        ex.post(w.slice(0, ci * step, step));
        absorb(&parts, ci - 1, &mut accs);
    }
    let parts = ex.collect();
    absorb(&parts, chunks - 1, &mut accs);
    sum_ranks(&accs).into_reshape(vec![b, l, n_out])
}
