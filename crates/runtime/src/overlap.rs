//! Looped CollectiveEinsum execution (Section 3.5): fused einsum +
//! collective loops that move each collective as a pipeline of chunks,
//! computing on chunk `i-1` while chunk `i` is in flight.
//!
//! Every helper here is the *single* code path for both execution modes:
//! [`ExecMode::Monolithic`](crate::ExecMode::Monolithic) simply runs the
//! same loop with one chunk. Bit-identical results across modes and chunk
//! counts therefore hold by construction, given two invariants:
//!
//! 1. the matmul kernel accumulates every output element by one serial
//!    chain of adds in strictly ascending `k` order, so splitting a
//!    contraction at any `k` (or column) boundary and continuing the chain
//!    reproduces the monolithic product bit-for-bit
//!    ([`ops::matmul_acc_rows`] / [`ops::matmul_cols`], and their int8
//!    twins on [`QuantizedMatrix`]);
//! 2. where transport order differs from contraction order (a gathered
//!    contraction receives rank `r`'s chunk `i` before rank `r+1`'s chunk
//!    `0`), the helper keeps one accumulator *per source rank* — each a
//!    pure ascending-`k` chain — and folds them in ascending rank order at
//!    the end. The fold shape depends only on the group size, never the
//!    chunk count.
//!
//! Int8 shards are first-class here: the weight-gathered streams move the
//! quantized wire format (int8 values + per-column scales) through
//! [`CommGroup::begin_chunked_quant`] and run the fused scale-on-arrival
//! einsum on each received slice. Column streams apply each slice's scales
//! as its output block is produced; row streams keep the per-rank
//! accumulators *unscaled* (all row slices of one rank share one scale
//! vector) and apply the scales exactly once before the rank fold — so the
//! int8 paths satisfy the same two invariants and stay bit-identical
//! across modes and chunk counts.

use std::time::Instant;

use esti_collectives::{CollectiveOp, CommGroup};
use esti_tensor::{ops, QuantizedMatrix, Tensor};

use crate::shard::ShardMat;

/// Flattens `[B, L, D]` activations to `[B·L, D]` for the rank-2 kernels.
fn flat2(x: &Tensor) -> Tensor {
    let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
    x.reshape(vec![b * l, d])
}

fn elapsed_nanos(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Folds per-source-rank accumulators in ascending rank order, in place in
/// rank 0's buffer. Each output element sees the serial add chain
/// `acc₀ += acc₁; acc₀ += acc₂; …` — the exact reduction order every
/// monolithic collective uses — with zero allocations. Fold time is
/// reported to the group's per-chunk overhead ledger so the execution
/// planner's calibration can see it.
// Vetted expect: groups have at least one member, so at least one
// accumulator always exists.
#[allow(clippy::expect_used)]
fn fold_ranks(group: &CommGroup, accs: Vec<Tensor>) -> Tensor {
    let t0 = Instant::now();
    let mut it = accs.into_iter();
    let mut out = it.next().expect("at least one rank accumulator");
    for p in it {
        ops::add_assign(&mut out, &p);
    }
    group.note_fold_nanos(elapsed_nanos(t0));
    out
}

/// Fused partial-matmul + all-reduce, chunked over the output columns: the
/// 1D weight-stationary block epilogue. Computes
/// `all_reduce(Σ_t xₜ × wₜ)` by producing each column chunk of the local
/// partial sum just in time to feed the chunk pipeline.
///
/// Column chunking is bit-exact (each output element's `k` chain is
/// independent of which column block computes it — and int8 scales are
/// per-column, so a scaled column chunk is self-contained), and the chunked
/// all-reduce sums ranks in the same ascending order as the monolithic
/// one, so the result is bit-identical for every chunk count and weight
/// format.
///
/// # Panics
///
/// Panics if the weights' output width is not divisible by `chunks`.
pub(crate) fn looped_ar_cols(
    group: &CommGroup,
    terms: &[(&Tensor, &ShardMat)],
    chunks: usize,
) -> Tensor {
    let (b, l) = (terms[0].0.dim(0), terms[0].0.dim(1));
    let rows = b * l;
    let flats: Vec<Tensor> = terms.iter().map(|(x, _)| flat2(x)).collect();
    let n_out = terms[0].1.cols();
    assert!(
        n_out.is_multiple_of(chunks),
        "all-reduce output width {n_out} not divisible by {chunks} chunks"
    );
    let step = n_out / chunks;
    let compute = |ci: usize| -> Tensor {
        let mut part = terms[0].1.matmul_cols(&flats[0], ci * step, step);
        for t in 1..flats.len() {
            part = &part + &terms[t].1.matmul_cols(&flats[t], ci * step, step);
        }
        part
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::AllReduce,
        &[rows, n_out],
        [1, 1],
        chunks,
        rows * n_out * 2,
    );
    // One preallocated output; each collected chunk folds in place at its
    // own column offset (first rank copies, later ranks add — the same
    // serial per-element chain as the monolithic rank sum), so the loop
    // allocates nothing per chunk and never pays a final concat.
    let mut out = Tensor::zeros(vec![rows, n_out]);
    let fold = |parts: &[Tensor], ci: usize, out: &mut Tensor| {
        let t0 = Instant::now();
        for (r, p) in parts.iter().enumerate() {
            if r == 0 {
                ops::copy_cols(p, 0, step, out, ci * step);
            } else {
                ops::add_cols(p, 0, step, out, ci * step);
            }
        }
        group.note_fold_nanos(elapsed_nanos(t0));
    };
    ex.post(compute(0));
    for ci in 1..chunks {
        // Compute chunk `ci` while chunk `ci-1` is in flight.
        let next = compute(ci);
        fold(&ex.collect(), ci - 1, &mut out);
        ex.post(next);
    }
    fold(&ex.collect(), chunks - 1, &mut out);
    out.into_reshape(vec![b, l, n_out])
}

/// Fused partial-matmul + reduce-scatter, chunked within each destination's
/// scatter slice: the 2D weight-stationary block epilogue. Computes
/// `reduce_scatter(Σ_t xₜ × wₜ, dim 2)`, producing for chunk `c` the `c`-th
/// sub-slice of *every* destination's output so each collected chunk
/// reduces immediately to a piece of this member's result.
///
/// Bit-identical to the monolithic matmul + reduce-scatter for every chunk
/// count and weight format (column chunking + rank-ascending reduction, as
/// in [`looped_ar_cols`]).
///
/// # Panics
///
/// Panics if the output width is not divisible by `size() * chunks`.
pub(crate) fn looped_rs_cols(
    group: &CommGroup,
    terms: &[(&Tensor, &ShardMat)],
    chunks: usize,
) -> Tensor {
    let (b, l) = (terms[0].0.dim(0), terms[0].0.dim(1));
    let rows = b * l;
    let flats: Vec<Tensor> = terms.iter().map(|(x, _)| flat2(x)).collect();
    let n_out = terms[0].1.cols();
    let k = group.size();
    assert!(
        n_out.is_multiple_of(k),
        "reduce-scatter output width {n_out} not divisible by group size {k}"
    );
    let part_w = n_out / k;
    assert!(
        part_w.is_multiple_of(chunks),
        "reduce-scatter part width {part_w} not divisible by {chunks} chunks"
    );
    let step = part_w / chunks;
    let compute = |ci: usize| -> Tensor {
        let pieces: Vec<Tensor> = (0..k)
            .map(|dest| {
                let c0 = dest * part_w + ci * step;
                let mut p = terms[0].1.matmul_cols(&flats[0], c0, step);
                for t in 1..flats.len() {
                    p = &p + &terms[t].1.matmul_cols(&flats[t], c0, step);
                }
                p
            })
            .collect();
        let refs: Vec<&Tensor> = pieces.iter().collect();
        Tensor::concat(&refs, 1)
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::ReduceScatter,
        &[rows, n_out],
        [1, 1],
        chunks,
        rows * n_out,
    );
    // Reduce this member's window of each collected chunk straight into the
    // preallocated scatter slice — no per-chunk slice/add allocations, no
    // final concat. Per-element add order matches the monolithic rank sum.
    let mut out = Tensor::zeros(vec![rows, part_w]);
    let fold = |parts: &[Tensor], ci: usize, out: &mut Tensor| {
        let t0 = Instant::now();
        let sc0 = group.rank() * step;
        for (r, p) in parts.iter().enumerate() {
            if r == 0 {
                ops::copy_cols(p, sc0, step, out, ci * step);
            } else {
                ops::add_cols(p, sc0, step, out, ci * step);
            }
        }
        group.note_fold_nanos(elapsed_nanos(t0));
    };
    ex.post(compute(0));
    for ci in 1..chunks {
        let next = compute(ci);
        fold(&ex.collect(), ci - 1, &mut out);
        ex.post(next);
    }
    fold(&ex.collect(), chunks - 1, &mut out);
    out.into_reshape(vec![b, l, part_w])
}

/// Streamed activation all-gather feeding a set of contractions: the 2D
/// weight-stationary block prologue. Equivalent to
/// `x_i = all_gather(xn, dim 2); [w.mm3(&x_i) for w in weights]`, but each
/// collected chunk of `xn` is multiplied into per-source-rank accumulators
/// while the next chunk is in flight, and the accumulators are folded in
/// ascending rank order at the end (invariant 2 in the module docs).
///
/// Int8 weights accumulate *unscaled* integer partial products through the
/// same per-rank chains; their per-column scales are applied exactly once
/// after the rank fold, so chunking never changes where the scale lands.
///
/// # Panics
///
/// Panics if `xn`'s sharded width is not divisible by `chunks`, or if a
/// weight is an [`ShardMat::Int8Cat`] (gathered concatenations never feed
/// this 2D prologue).
pub(crate) fn looped_ag_einsums(
    group: &CommGroup,
    xn: &Tensor,
    weights: &[&ShardMat],
    chunks: usize,
) -> Vec<Tensor> {
    let (b, l, e_loc) = (xn.dim(0), xn.dim(1), xn.dim(2));
    let rows = b * l;
    let k = group.size();
    assert!(
        e_loc.is_multiple_of(chunks),
        "all-gather width {e_loc} not divisible by {chunks} chunks"
    );
    let step = e_loc / chunks;
    let flat = flat2(xn);
    let widths: Vec<usize> = weights.iter().map(|w| w.cols()).collect();
    let mut accs: Vec<Vec<Tensor>> = widths
        .iter()
        .map(|&n_w| (0..k).map(|_| Tensor::zeros(vec![rows, n_w])).collect())
        .collect();
    let absorb = |parts: &[Tensor], ci: usize, accs: &mut Vec<Vec<Tensor>>| {
        for (r, chunk) in parts.iter().enumerate() {
            let r0 = r * e_loc + ci * step;
            for (wi, w) in weights.iter().enumerate() {
                match w {
                    ShardMat::Dense(w) => ops::matmul_acc_rows(chunk, w, r0, &mut accs[wi][r]),
                    ShardMat::Int8(q) => q.matmul_acc_rows(chunk, r0, &mut accs[wi][r]),
                    ShardMat::Int8Cat(_) => {
                        unreachable!("2D blocks are stored shards, never gathered concatenations")
                    }
                }
            }
        }
    };
    let mut ex = group.begin_chunked(
        CollectiveOp::AllGather,
        &[rows, e_loc],
        [1, 1],
        chunks,
        rows * e_loc * k,
    );
    ex.post(flat.slice(1, 0, step));
    for ci in 1..chunks {
        let parts = ex.collect();
        // Post chunk `ci` first, then contract chunk `ci-1` "behind" it.
        ex.post(flat.slice(1, ci * step, step));
        absorb(&parts, ci - 1, &mut accs);
    }
    let parts = ex.collect();
    absorb(&parts, chunks - 1, &mut accs);
    accs.into_iter()
        .zip(weights)
        .zip(widths)
        .map(|((rank_accs, w), n_w)| {
            let mut out = fold_ranks(group, rank_accs);
            if let ShardMat::Int8(q) = w {
                // One deferred scale application per output column — the
                // accumulators above carried raw integer partial products.
                q.apply_scales(&mut out);
            }
            out.into_reshape(vec![b, l, n_w])
        })
        .collect()
}

/// Streamed weight all-gather for a column-sharded matrix, fused with its
/// einsum: the weight-gathered prologue for `wq`/`wk`/`wv`/`w_in`/`w_gate`.
/// Equivalent to `x × all_gather(shard, dim 1)`; each collected chunk
/// writes its own column block of the output, so the result is
/// bit-identical to the gathered monolithic matmul for every chunk count.
///
/// Int8 shards move in their wire format — int8 values plus the matching
/// per-column scale slice — and each arriving slice runs the fused
/// dequant-GEMM ([`QuantizedMatrix::matmul_into_cols`]): scale-on-arrival,
/// no dense f32 view ever touches the interconnect. The ledger accordingly
/// charges the quantized byte volume.
///
/// # Panics
///
/// Panics if the shard's column count is not divisible by `chunks`, or if
/// the shard is an [`ShardMat::Int8Cat`] (stored weight-gathered shards are
/// never gathered concatenations).
pub(crate) fn looped_wg_cols(
    group: &CommGroup,
    x: &Tensor,
    shard: &ShardMat,
    chunks: usize,
) -> Tensor {
    let (b, l) = (x.dim(0), x.dim(1));
    let rows = b * l;
    let k = group.size();
    let flat = flat2(x);
    match shard {
        ShardMat::Dense(w) => {
            let (e, w_loc) = (w.dim(0), w.dim(1));
            assert!(
                w_loc.is_multiple_of(chunks),
                "weight-gather shard width {w_loc} not divisible by {chunks} chunks"
            );
            let step = w_loc / chunks;
            let mut out = Tensor::zeros(vec![rows, w_loc * k]);
            let absorb = |parts: &[Tensor], ci: usize, out: &mut Tensor| {
                for (r, chunk) in parts.iter().enumerate() {
                    ops::matmul_into_cols(&flat, chunk, out, r * w_loc + ci * step);
                }
            };
            let mut ex = group.begin_chunked(
                CollectiveOp::AllGather,
                &[e, w_loc],
                [1, 1],
                chunks,
                e * w_loc * k,
            );
            ex.post(w.slice(1, 0, step));
            for ci in 1..chunks {
                let parts = ex.collect();
                ex.post(w.slice(1, ci * step, step));
                absorb(&parts, ci - 1, &mut out);
            }
            let parts = ex.collect();
            absorb(&parts, chunks - 1, &mut out);
            out.into_reshape(vec![b, l, w_loc * k])
        }
        ShardMat::Int8(q) => {
            let (e, w_loc) = (q.rows(), q.cols());
            assert!(
                w_loc.is_multiple_of(chunks),
                "weight-gather shard width {w_loc} not divisible by {chunks} chunks"
            );
            let step = w_loc / chunks;
            let mut out = Tensor::zeros(vec![rows, w_loc * k]);
            let absorb = |parts: &[QuantizedMatrix], ci: usize, out: &mut Tensor| {
                for (r, chunk) in parts.iter().enumerate() {
                    chunk.matmul_into_cols(&flat, out, r * w_loc + ci * step);
                }
            };
            let mut ex = group.begin_chunked_quant(
                CollectiveOp::AllGather,
                &[e, w_loc],
                [1, 1],
                chunks,
                esti_collectives::quant_wire_bytes(k, q.rows(), q.cols()),
            );
            ex.post(q.slice_cols(0, step));
            for ci in 1..chunks {
                let parts = ex.collect();
                ex.post(q.slice_cols(ci * step, step));
                absorb(&parts, ci - 1, &mut out);
            }
            let parts = ex.collect();
            absorb(&parts, chunks - 1, &mut out);
            out.into_reshape(vec![b, l, w_loc * k])
        }
        ShardMat::Int8Cat(_) => {
            unreachable!("stored weight-gathered shards are never gathered concatenations")
        }
    }
}

/// Streamed weight all-gather for a row-sharded matrix, fused with its
/// einsum: the weight-gathered epilogue for `wo`/`w_out`. Equivalent to
/// `x × all_gather(shard, dim 0)` with one ascending-`k` accumulator per
/// source rank, folded in ascending rank order (invariant 2 in the module
/// docs), so results are chunk-count- and mode-invariant.
///
/// Int8 shards stream int8 row slices; every slice of one rank shares that
/// rank's full per-column scale vector, so the per-rank accumulators stay
/// *unscaled* and each rank's scales are applied exactly once before the
/// rank fold — the chunk count never moves a scale application.
///
/// # Panics
///
/// Panics if the shard's row count is not divisible by `chunks`, or if the
/// shard is an [`ShardMat::Int8Cat`].
// Vetted expect: chunks >= 1, so every accumulator absorbs a slice.
#[allow(clippy::expect_used)]
pub(crate) fn looped_wg_rows(
    group: &CommGroup,
    x: &Tensor,
    shard: &ShardMat,
    chunks: usize,
) -> Tensor {
    let (b, l, d) = (x.dim(0), x.dim(1), x.dim(2));
    let rows = b * l;
    let k = group.size();
    let flat = flat2(x);
    match shard {
        ShardMat::Dense(w) => {
            let (w_loc, n_out) = (w.dim(0), w.dim(1));
            assert_eq!(d, w_loc * k, "row-gather contraction width mismatch");
            assert!(
                w_loc.is_multiple_of(chunks),
                "weight-gather shard height {w_loc} not divisible by {chunks} chunks"
            );
            let step = w_loc / chunks;
            let mut accs: Vec<Tensor> = (0..k).map(|_| Tensor::zeros(vec![rows, n_out])).collect();
            let absorb = |parts: &[Tensor], ci: usize, accs: &mut Vec<Tensor>| {
                for (r, chunk) in parts.iter().enumerate() {
                    let a = flat.slice(1, r * w_loc + ci * step, step);
                    ops::matmul_acc_rows(&a, chunk, 0, &mut accs[r]);
                }
            };
            let mut ex = group.begin_chunked(
                CollectiveOp::AllGather,
                &[w_loc, n_out],
                [0, 0],
                chunks,
                w_loc * n_out * k,
            );
            ex.post(w.slice(0, 0, step));
            for ci in 1..chunks {
                let parts = ex.collect();
                ex.post(w.slice(0, ci * step, step));
                absorb(&parts, ci - 1, &mut accs);
            }
            let parts = ex.collect();
            absorb(&parts, chunks - 1, &mut accs);
            fold_ranks(group, accs).into_reshape(vec![b, l, n_out])
        }
        ShardMat::Int8(q) => {
            let (w_loc, n_out) = (q.rows(), q.cols());
            assert_eq!(d, w_loc * k, "row-gather contraction width mismatch");
            assert!(
                w_loc.is_multiple_of(chunks),
                "weight-gather shard height {w_loc} not divisible by {chunks} chunks"
            );
            let step = w_loc / chunks;
            let mut accs: Vec<Tensor> = (0..k).map(|_| Tensor::zeros(vec![rows, n_out])).collect();
            // Each rank's scale vector, captured from its first received
            // slice (every row slice of one rank carries the same scales).
            let mut scales: Vec<Option<QuantizedMatrix>> = (0..k).map(|_| None).collect();
            let mut absorb = |parts: Vec<QuantizedMatrix>, ci: usize, accs: &mut Vec<Tensor>| {
                for (r, chunk) in parts.into_iter().enumerate() {
                    let a = flat.slice(1, r * w_loc + ci * step, step);
                    chunk.matmul_acc_rows(&a, 0, &mut accs[r]);
                    if scales[r].is_none() {
                        scales[r] = Some(chunk);
                    }
                }
            };
            let mut ex = group.begin_chunked_quant(
                CollectiveOp::AllGather,
                &[w_loc, n_out],
                [0, 0],
                chunks,
                esti_collectives::quant_wire_bytes(k, q.rows(), q.cols()),
            );
            ex.post(q.slice_rows(0, step));
            for ci in 1..chunks {
                let parts = ex.collect();
                ex.post(q.slice_rows(ci * step, step));
                absorb(parts, ci - 1, &mut accs);
            }
            let parts = ex.collect();
            absorb(parts, chunks - 1, &mut accs);
            for (acc, holder) in accs.iter_mut().zip(&scales) {
                holder.as_ref().expect("absorbed at least one slice").apply_scales(acc);
            }
            fold_ranks(group, accs).into_reshape(vec![b, l, n_out])
        }
        ShardMat::Int8Cat(_) => {
            unreachable!("stored weight-gathered shards are never gathered concatenations")
        }
    }
}
