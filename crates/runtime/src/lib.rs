//! Multi-chip partitioned Transformer inference engine.
//!
//! This crate is the *functional* half of the reproduction: where
//! `esti-core` computes what a partitioning **costs**, this crate proves
//! what it **computes**. Every simulated chip is an OS thread owning only
//! its weight shards and KV-cache shard; chips exchange tensors exclusively
//! through `esti-collectives`. Tests assert that each layout's partitioned
//! forward pass equals the single-chip [`esti_model::ReferenceModel`]
//! within floating-point tolerance.
//!
//! Implemented layouts (matching `esti_core::Layout`):
//!
//! * **1D weight-stationary** (Section 3.2.1) — Megatron-style `d_ff`/head
//!   sharding, replicated activations, one all-reduce per parallel block
//!   (two for serialized blocks, reproducing Section 4.3's overhead);
//! * **2D weight-stationary** (Section 3.2.2) — `E_x F_yz` weight shards,
//!   activations sharded `E_xyz` at layer boundaries, with the alternating
//!   reduce-scatter/all-gather dance over the `x` and `yz` groups;
//! * **weight-gathered XYZ** (Section 3.2.3) — batch-sharded activations,
//!   weights all-gathered just before use, no activation collectives;
//!
//! each combinable with head-sharded attention (multihead, or "baseline"
//! multiquery with a replicated KV head) or the paper's batch-sharded
//! multiquery attention, whose all-to-alls (Figure 5b) divide the KV cache
//! `n_chips` ways.
//!
//! The engine also provides the serving loop: chunked (incremental)
//! prefill, autoregressive decode with sampling, int8 weight quantization,
//! and a [`esti_collectives::TrafficStats`] ledger that tests compare
//! against the analytical communication volumes.
//!
//! # Examples
//!
//! ```
//! use esti_core::planner::decode_layout;
//! use esti_core::Machine;
//! use esti_model::{ModelConfig, ReferenceModel};
//! use esti_runtime::{PartitionedEngine, WeightFormat};
//!
//! let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
//! let machine = Machine::tpu_v4_slice(4).unwrap();
//! let layout = decode_layout(model.config(), &machine);
//! let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
//! let logits = engine.prefill(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9], vec![1, 1, 1]]);
//! assert_eq!(logits.shape(), &[4, 3, model.config().vocab]);
//! ```

// Panic discipline (PR 5): new non-test code must not `unwrap`/`expect` —
// fallible paths return typed errors (`EngineError`, `ServeError`) instead.
// CI elevates these to errors with `clippy -D warnings`; the vetted
// remainder (documented invariants that predate the fault model) carries
// targeted `#[allow]`s at the offending functions.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod generate;
mod overlap;
pub mod introspect;
pub mod planner;
pub mod router;
pub mod serving;
pub mod shard;

pub use engine::{
    planner_dtype, EngineError, ExecMode, KvBackend, PartitionedEngine, RequestKv, WeightFormat,
    DEFAULT_COLLECTIVE_DEADLINE, DEFAULT_KV_PAGE_SIZE,
};
pub use generate::GenerateOptions;
pub use introspect::{
    kv_cache_json, plan_ledger_json, weight_wire_format, wg_stream_plan, ScaleDiscipline,
    WgStream,
};
pub use planner::{Calibration, CandidateCost, ExecPlan, ExecPlanner, PlanDecision};
pub use router::{ReplicaRouter, RouterError, RouterOutcome};
pub use serving::{
    BatcherSpec, ContinuousBatcher, OverloadShed, ServeError, ServingOptions, ServingOutcome,
    ServingRequest,
};
