//! The serving loop: chunked prefill + autoregressive generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use esti_tensor::sample::{sample_tokens, Sampling};
use esti_tensor::Tensor;

use crate::engine::PartitionedEngine;

/// Options for [`PartitionedEngine::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerateOptions {
    /// Tokens to generate per sequence.
    pub max_new_tokens: usize,
    /// Sampling method for each decode step.
    pub sampling: Sampling,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// If set, prefill is run in chunks of this many tokens (incremental
    /// prefill, Section 3.5 / FasterTransformer); `None` processes the
    /// whole prompt in one pass.
    pub prefill_chunk: Option<usize>,
    /// Samples generated per prompt (Section 4.4's low-latency recipe:
    /// prefill once, expand the KV cache, decode `n` samples per prompt).
    /// 1 = plain generation.
    pub n_samples: usize,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        GenerateOptions {
            max_new_tokens: 8,
            sampling: Sampling::Greedy,
            seed: 0,
            prefill_chunk: None,
            n_samples: 1,
        }
    }
}

impl PartitionedEngine {
    /// Prefills `prompts` (equal-length sequences) and generates
    /// `opts.max_new_tokens` tokens per sequence, returning only the
    /// generated tokens. With `opts.n_samples > 1`, each prompt is
    /// prefilled once and decoded `n_samples` times via KV-cache expansion
    /// (Section 4.4); the output holds each prompt's samples adjacently.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged prompts, a chunk size or sample count of
    /// zero, or an expanded batch that violates the layout's divisibility
    /// requirements.
    // Vetted expect: prompts are asserted non-empty above, so at least
    // one prefill chunk always runs.
    #[allow(clippy::expect_used)]
    pub fn generate(&mut self, prompts: &[Vec<usize>], opts: &GenerateOptions) -> Vec<Vec<usize>> {
        assert!(!prompts.is_empty(), "empty prompt batch");
        assert!(opts.n_samples > 0, "n_samples must be positive");
        let len = prompts[0].len();
        assert!(len > 0, "empty prompt");
        assert!(prompts.iter().all(|p| p.len() == len), "ragged prompt batch");
        self.reset();

        // Prefill, optionally in chunks.
        let chunk = opts.prefill_chunk.unwrap_or(len);
        assert!(chunk > 0, "prefill chunk must be positive");
        let mut last_logits: Option<Tensor> = None;
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let chunk_tokens: Vec<Vec<usize>> =
                prompts.iter().map(|p| p[start..end].to_vec()).collect();
            let logits = self.prefill(&chunk_tokens); // [B, l, V]
            let l = end - start;
            let v = self.config().vocab;
            last_logits =
                Some(logits.slice(1, l - 1, 1).into_reshape(vec![prompts.len(), v]));
            start = end;
        }

        // Optionally expand each prompt into multiple decode streams.
        let mut logits = last_logits.expect("at least one prefill chunk");
        if opts.n_samples > 1 {
            self.expand_batch(opts.n_samples);
            logits = logits.repeat_interleave(0, opts.n_samples);
        }

        // Decode loop.
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); prompts.len() * opts.n_samples];
        for _ in 0..opts.max_new_tokens {
            let next = sample_tokens(&mut rng, &logits, opts.sampling);
            for (out, &t) in outputs.iter_mut().zip(&next) {
                out.push(t);
            }
            logits = self.decode_step(&next);
        }
        outputs
    }
}
