//! The partitioned execution engine: one thread per simulated chip.

// Vetted against the crate's no-unwrap/no-expect discipline: every
// `expect`/`unwrap` below asserts a sharding-arithmetic or protocol
// invariant established at construction (divisibility checked by
// `preflight`, "one handle per rank", "rank 0 returns logits"), not a
// runtime fault. Faults travel through `try_forward`'s typed error path.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use esti_collectives::{
    CollectiveError, CommGroup, CommTimes, FaultPlan, FaultState, InjectedCrash, TrafficStats,
};
use esti_core::layout::{AttnSharding, FfnLayout, Layout};
use esti_core::perf::Phase;
use esti_core::schedule::effective_chunks;
use esti_hal::DType;
use esti_model::reference::{attention_over_cache, gelu, mm3};
use esti_model::{KvCache, MlpKind, ModelConfig, PageStats, PositionKind, ReferenceModel};
use esti_tensor::pool::{with_worker_pool, ChipPool};
use esti_tensor::{ops, Tensor};

use crate::overlap::{
    looped_ag_einsums, looped_ar_cols, looped_rs_cols, looped_wg_cols, looped_wg_rows,
};
use crate::planner::{ExecPlan, ExecPlanner};
use crate::shard::{shard_1d, shard_2d, shard_wg, shard_wg_hybrid, LayerShard, ShardMat};

/// The weight dtype the planner's schedule model prices for a storage
/// format: int8 storage moves weight gathers quantized (Section 3.6);
/// `Bf16` emulation gathers bf16-width payloads; `Exact` executes plain
/// f32. Benchmarks pricing a planner decision against a measured sweep
/// must pass the dtype of the format they actually execute — the
/// [`crate::PlanDecision::dtype`] ledger field records what was priced.
#[must_use]
pub fn planner_dtype(fmt: WeightFormat) -> DType {
    match fmt {
        WeightFormat::Int8 => DType::Int8,
        WeightFormat::Bf16 => DType::Bf16,
        WeightFormat::Exact => DType::F32,
    }
}

pub use crate::shard::WeightFormat;

/// The `ESTI_CHIP_THREADS` environment default for
/// [`PartitionedEngine::set_intra_chip_threads`] (1 when unset/invalid).
fn default_chip_workers() -> usize {
    std::env::var("ESTI_CHIP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// Which [`KvCache`] backend an engine's chips store their KV shards in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvBackend {
    /// Per-row preallocated slabs (the PR 3 design; reference baseline).
    Slab,
    /// Refcounted fixed-size pages behind a block table, with
    /// copy-on-write prompt-prefix sharing (ROADMAP item 2).
    Paged {
        /// Positions per page.
        page_size: usize,
    },
}

/// Positions per page when nothing chooses otherwise: small enough that a
/// short shared system prompt still spans whole pages, large enough that
/// block tables stay short at this workspace's context lengths.
pub const DEFAULT_KV_PAGE_SIZE: usize = 16;

impl Default for KvBackend {
    fn default() -> Self {
        KvBackend::Paged { page_size: DEFAULT_KV_PAGE_SIZE }
    }
}

impl KvBackend {
    fn make_cache(self, n_layers: usize) -> KvCache {
        match self {
            KvBackend::Slab => KvCache::new(n_layers),
            KvBackend::Paged { page_size } => KvCache::paged(n_layers, page_size),
        }
    }
}

/// The `ESTI_KV_PAGE_SIZE` environment default for
/// [`PartitionedEngine::set_kv_backend`]: unset/invalid picks the paged
/// backend at [`DEFAULT_KV_PAGE_SIZE`], `0` forces the slab backend, any
/// positive value picks that page size.
fn default_kv_backend() -> KvBackend {
    match std::env::var("ESTI_KV_PAGE_SIZE").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(0) => KvBackend::Slab,
        Some(s) => KvBackend::Paged { page_size: s },
        None => KvBackend::default(),
    }
}

/// How the engine moves each overlappable collective (Section 3.5).
///
/// Both modes run the *same* looped code path — monolithic execution is
/// the one-chunk case — so for float-stored weights the two produce
/// bit-identical logits for every chunk count. What changes is transport
/// granularity: overlapped execution pipelines each marked collective as
/// `chunks` sub-transfers, computing on chunk `i-1` while chunk `i` is in
/// flight (the Looped CollectiveEinsum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Every collective moves as one transfer; einsums run whole.
    Monolithic,
    /// Looped CollectiveEinsum with the given chunk-count target. Each
    /// collective actually uses the largest divisor of its chunked extent
    /// that is `<= chunks` (see [`effective_chunks`]), so awkward shapes
    /// degrade gracefully toward monolithic instead of panicking.
    Overlapped {
        /// Requested chunks per collective (`1` behaves like monolithic).
        chunks: usize,
    },
}

impl Default for ExecMode {
    /// Overlapped with four chunks: enough pipelining to hide most of a
    /// collective behind its einsum without shrinking chunk matmuls into
    /// launch-overhead territory.
    fn default() -> Self {
        ExecMode::Overlapped { chunks: 4 }
    }
}

impl ExecMode {
    /// The chunk-count target this mode asks of each collective.
    fn want(self) -> usize {
        match self {
            ExecMode::Monolithic => 1,
            ExecMode::Overlapped { chunks } => chunks.max(1),
        }
    }
}

/// How the engine decides its [`ExecMode`]: pinned at construction, or
/// chosen per forward shape by the analytic [`ExecPlanner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecPolicy {
    /// Run every forward with this mode (explicit baselines and tests).
    Fixed(ExecMode),
    /// Plan per (phase, batch, tokens) at first use; decisions accumulate
    /// in the engine's [`ExecPlan`] ledger.
    Planned,
}

/// Deadline applied to every collective of a fresh engine: generous enough
/// that no healthy run ever trips it, but a stalled or dead chip surfaces as
/// a structured [`EngineError`] instead of hanging the process forever.
/// Override with [`PartitionedEngine::set_collective_deadline`].
pub const DEFAULT_COLLECTIVE_DEADLINE: Duration = Duration::from_secs(60);

/// A partitioned forward pass failed instead of completing.
///
/// The engine runs one thread per chip; when any of them unwinds (an
/// injected fault, a peer's crash propagated through a cancelled barrier, or
/// an ordinary panic), every other chip is released from its collectives and
/// the whole step reports the *root cause*: the chip that died first, not
/// the cascade of peers that observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A chip's worker thread panicked; `rank` is the chip that originated
    /// the failure (for a propagated crash, the dead peer — not the
    /// observer).
    ChipCrashed {
        /// Global chip id of the chip that died.
        rank: usize,
        /// Human-readable panic payload or fault description.
        message: String,
    },
    /// A collective exceeded the engine's deadline (a chip is stalled or a
    /// link is pathologically slow) and no crashed chip explains it.
    CollectiveTimeout {
        /// The deadline that expired.
        deadline: Duration,
    },
    /// The engine already failed a step; its distributed state (KV caches,
    /// in-flight barriers) is unrecoverable and the engine must be rebuilt.
    Poisoned,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ChipCrashed { rank, message } => {
                write!(f, "chip {rank} crashed: {message}")
            }
            EngineError::CollectiveTimeout { deadline } => {
                write!(f, "collective exceeded the {deadline:?} deadline")
            }
            EngineError::Poisoned => {
                write!(f, "engine is poisoned by an earlier failure; rebuild it")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Which partitioned dataflow a layout lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dataflow {
    OneD,
    TwoD,
    /// XYZ extent: weights fully gathered, activations batch-stationary.
    WeightGathered,
    /// X / XY extents: batch sharded over the gather groups, 1D
    /// weight-stationary within each local group (Figure A.2's hybrids).
    WeightGatheredHybrid {
        n_gather: usize,
        n_local: usize,
    },
}

/// Per-chip state: weight shards, KV-cache shard, and group handles.
struct ChipState {
    rank: usize,
    /// Position along the logical x axis (2D only).
    i: usize,
    /// Position along the logical yz axes (2D only).
    j: usize,
    layers: Vec<LayerShard>,
    cache: KvCache,
    /// Group of all chips.
    g_all: CommGroup,
    /// x-axis group (same `j`), 2D only.
    g_x: Option<CommGroup>,
    /// yz-axes group (same `i`), 2D only.
    g_yz: Option<CommGroup>,
    /// Final layernorm gain (full, or this chip's `E/n` slice in 2D).
    ln_final: Tensor,
    /// Transposed embedding for the logit projection (full `[E, V]`, or
    /// this chip's `[E/n, V]` row slice in 2D).
    embed_t: Tensor,
}

/// A Transformer partitioned over `n` simulated chips.
///
/// Construct with a [`ReferenceModel`] (whose weights are sharded according
/// to the [`Layout`]) and drive it with [`PartitionedEngine::prefill`] /
/// [`PartitionedEngine::decode_step`] exactly like the reference. All
/// inter-chip dataflow goes through `esti-collectives`, and is recorded in
/// the [`TrafficStats`] ledger available via
/// [`PartitionedEngine::traffic`].
pub struct PartitionedEngine {
    cfg: ModelConfig,
    layout: Layout,
    dataflow: Dataflow,
    exec: ExecPolicy,
    /// Weight storage format, kept for the planner's wire-format input.
    fmt: WeightFormat,
    /// Accumulated planner decisions (empty under a fixed mode).
    plan: ExecPlan,
    chips: Vec<ChipState>,
    stats: Arc<TrafficStats>,
    /// Full embedding table, used host-side for the input lookup.
    embed: Tensor,
    /// Learned position table, for models that have one.
    pos_embed: Option<Tensor>,
    /// Batch size fixed at the first prefill (cache sharding depends on it).
    batch: Option<usize>,
    /// Per-row cached positions when the engine runs in slot mode
    /// ([`PartitionedEngine::begin_slots`]): row `r`'s next token occupies
    /// absolute position `row_lens[r]`. `None` in classic (uniform) mode.
    row_lens: Option<Vec<usize>>,
    /// Deadline applied to every chip group's collectives.
    deadline: Option<Duration>,
    /// Worker threads each simulated chip's kernels split output rows
    /// over (1 = each chip computes serially on its own thread).
    chip_workers: usize,
    /// One persistent worker pool per chip when `chip_workers > 1`
    /// (aligned with `chips`); empty otherwise.
    pools: Vec<Arc<ChipPool>>,
    /// Set the first time a step fails: the distributed KV state is no
    /// longer trustworthy and every further `try_*` call reports
    /// [`EngineError::Poisoned`] until the engine is rebuilt.
    poisoned: bool,
    /// The cache backend every chip's KV shard uses.
    kv_backend: KvBackend,
}

/// One request's KV cache in canonical (layout-independent) form, as
/// extracted from / inserted into an engine's slot: per layer, `(K, V)`
/// tensors of shape `[len, Hkv·d_head]` holding every attention head. K is
/// stored post-RoPE (rotations bake in absolute positions), so moving a
/// request between engines of *any* layout preserves its values exactly.
#[derive(Debug, Clone)]
pub struct RequestKv {
    /// Cached positions (prompt so far).
    pub len: usize,
    /// Per-layer canonical `(K, V)`, each `[len, Hkv·d_head]`.
    layers: Vec<(Tensor, Tensor)>,
}

impl std::fmt::Debug for PartitionedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedEngine")
            .field("model", &self.cfg.name)
            .field("layout", &self.layout.describe())
            .field("chips", &self.chips.len())
            .finish()
    }
}

impl PartitionedEngine {
    /// Shards `model` according to `layout` and builds the chip states.
    ///
    /// # Panics
    ///
    /// Panics if the model dimensions do not divide the mesh (each dataflow
    /// documents its divisibility requirements in [`crate::shard`]), or if
    /// batch-sharded attention is requested for a multihead model.
    ///
    /// The engine's execution mode is chosen by the analytic
    /// [`ExecPlanner`] per (phase, batch) shape at first use: the planner
    /// costs every candidate chunk count with the calibrated cost model
    /// and keeps monolithic execution wherever pipelining does not
    /// clearly win. Inspect the decisions via
    /// [`PartitionedEngine::exec_plan`]; pin a mode explicitly with
    /// [`PartitionedEngine::new_with_exec`].
    #[must_use]
    pub fn new(model: &ReferenceModel, layout: Layout, fmt: WeightFormat) -> Self {
        PartitionedEngine::new_impl(model, layout, fmt, ExecPolicy::Planned)
    }

    /// Like [`PartitionedEngine::new`], with an explicit execution mode —
    /// [`ExecMode::Monolithic`] for the unpipelined baseline, or
    /// [`ExecMode::Overlapped`] with a chosen chunk count — bypassing the
    /// planner entirely.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PartitionedEngine::new`].
    #[must_use]
    pub fn new_with_exec(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        exec: ExecMode,
    ) -> Self {
        PartitionedEngine::new_impl(model, layout, fmt, ExecPolicy::Fixed(exec))
    }

    fn new_impl(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        exec: ExecPolicy,
    ) -> Self {
        let cfg = model.config().clone();
        let n = layout.mesh.n_chips();
        let dataflow = match layout.ffn {
            FfnLayout::WeightStationary1D => Dataflow::OneD,
            FfnLayout::WeightStationary2D => Dataflow::TwoD,
            FfnLayout::WeightGathered(extent) => {
                let n_gather = extent.n_gather(layout.mesh);
                if n_gather >= n {
                    Dataflow::WeightGathered
                } else {
                    Dataflow::WeightGatheredHybrid { n_gather, n_local: n / n_gather }
                }
            }
        };
        if layout.attn == AttnSharding::Batch {
            assert_eq!(
                cfg.n_kv_heads(),
                1,
                "batch-sharded attention requires multiquery attention (Section 3.3)"
            );
        }
        // Static preflight: run the symbolic schedule through the
        // sharding-algebra verifier so an invalid plan fails with the
        // offending step instead of a shape panic in a worker thread.
        if let Err(e) = esti_core::schedule::preflight(&cfg, &layout) {
            panic!("invalid partition plan for {}: {e}", layout.describe());
        }
        let (x_parts, yz_parts) = match dataflow {
            Dataflow::TwoD => (layout.mesh.x, layout.mesh.yz()),
            Dataflow::WeightGatheredHybrid { n_gather, n_local } => (n_gather, n_local),
            _ => (1, n),
        };

        let stats = TrafficStats::new();
        let mut g_all: Vec<Option<CommGroup>> =
            CommGroup::create_with_stats(n, Arc::clone(&stats)).into_iter().map(Some).collect();
        let mut g_x: Vec<Option<CommGroup>> = (0..n).map(|_| None).collect();
        let mut g_yz: Vec<Option<CommGroup>> = (0..n).map(|_| None).collect();
        if matches!(dataflow, Dataflow::TwoD | Dataflow::WeightGatheredHybrid { .. }) {
            // For 2D these are the physical x / yz groups; for hybrid WG,
            // g_x is the weight-gather group and g_yz the 1D local group.
            for j in 0..yz_parts {
                let members = CommGroup::create_with_stats(x_parts, Arc::clone(&stats));
                for (i, m) in members.into_iter().enumerate() {
                    g_x[i * yz_parts + j] = Some(m);
                }
            }
            for i in 0..x_parts {
                let members = CommGroup::create_with_stats(yz_parts, Arc::clone(&stats));
                for (j, m) in members.into_iter().enumerate() {
                    g_yz[i * yz_parts + j] = Some(m);
                }
            }
        }

        let weights = model.weights();
        let e = cfg.d_model;
        let e_n = e / n.max(1);
        let embed_t = weights.embed.transpose();
        let kv_backend = default_kv_backend();
        let chips = (0..n)
            .map(|rank| {
                let (i, j) = (rank / yz_parts, rank % yz_parts);
                let layers = weights
                    .layers
                    .iter()
                    .map(|lw| match dataflow {
                        Dataflow::OneD => shard_1d(&cfg, lw, rank, n, fmt),
                        Dataflow::TwoD => shard_2d(&cfg, lw, i, j, x_parts, yz_parts, fmt),
                        Dataflow::WeightGathered => shard_wg(&cfg, lw, rank, n, fmt),
                        Dataflow::WeightGatheredHybrid { n_gather, n_local } => {
                            shard_wg_hybrid(&cfg, lw, i, j, n_gather, n_local, fmt)
                        }
                    })
                    .collect();
                let (ln_final, embed_t) = match dataflow {
                    Dataflow::TwoD => {
                        assert!(e.is_multiple_of(n), "2D layout needs d_model divisible by {n} chips");
                        let off = i * (e / x_parts) + j * e_n;
                        (
                            weights.ln_final.slice(0, off, e_n),
                            embed_t.slice(0, off, e_n),
                        )
                    }
                    _ => (weights.ln_final.clone(), embed_t.clone()),
                };
                ChipState {
                    rank,
                    i,
                    j,
                    layers,
                    cache: kv_backend.make_cache(cfg.n_layers),
                    g_all: g_all[rank].take().expect("one handle per rank"),
                    g_x: g_x[rank].take(),
                    g_yz: g_yz[rank].take(),
                    ln_final,
                    embed_t,
                }
            })
            .collect();
        let mut engine = PartitionedEngine {
            embed: weights.embed.clone(),
            pos_embed: weights.pos_embed.clone(),
            cfg,
            layout,
            dataflow,
            exec,
            fmt,
            plan: ExecPlan::default(),
            chips,
            stats,
            batch: None,
            row_lens: None,
            deadline: None,
            chip_workers: 1,
            pools: Vec::new(),
            poisoned: false,
            kv_backend,
        };
        engine.set_collective_deadline(Some(DEFAULT_COLLECTIVE_DEADLINE));
        engine.set_intra_chip_threads(default_chip_workers());
        engine
    }

    /// Calls `f` on every group handle of every chip.
    fn for_each_group(&self, f: impl Fn(&CommGroup)) {
        for c in &self.chips {
            f(&c.g_all);
            if let Some(g) = &c.g_x {
                f(g);
            }
            if let Some(g) = &c.g_yz {
                f(g);
            }
        }
    }

    /// Sets the deadline every collective waits under (`None` blocks
    /// forever, the pre-fault-model behavior). A fresh engine starts at
    /// [`DEFAULT_COLLECTIVE_DEADLINE`].
    pub fn set_collective_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
        self.for_each_group(|g| g.set_deadline(deadline));
    }

    /// The deadline collectives currently wait under.
    #[must_use]
    pub fn collective_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Sets the number of worker threads each simulated chip parallelizes
    /// its GEMM kernels over (ROADMAP item 5). `1` (the default, or the
    /// `ESTI_CHIP_THREADS` environment override) keeps every chip serial
    /// on its own executor thread; `w > 1` gives each chip a persistent
    /// pool of `w` workers that own disjoint output-row bands.
    ///
    /// Deterministic by construction: banding only decides which worker
    /// computes an element, never the arithmetic, so logits are
    /// bit-identical at any thread count.
    pub fn set_intra_chip_threads(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers == self.chip_workers && (workers == 1) == self.pools.is_empty() {
            return;
        }
        self.chip_workers = workers;
        self.pools = if workers > 1 {
            (0..self.chips.len()).map(|_| Arc::new(ChipPool::new(workers))).collect()
        } else {
            Vec::new()
        };
    }

    /// The per-chip kernel worker-thread count (see
    /// [`PartitionedEngine::set_intra_chip_threads`]).
    #[must_use]
    pub fn intra_chip_threads(&self) -> usize {
        self.chip_workers
    }

    /// Rebuilds every chip's (necessarily empty) KV cache on `backend`.
    /// Fresh engines start on the `ESTI_KV_PAGE_SIZE` environment default
    /// — paged at [`DEFAULT_KV_PAGE_SIZE`] when unset, slab for `0`.
    ///
    /// # Panics
    ///
    /// Panics if the engine already holds cached tokens (switch backends
    /// before the first prefill, or after [`PartitionedEngine::reset`] /
    /// before [`PartitionedEngine::begin_slots`]).
    pub fn set_kv_backend(&mut self, backend: KvBackend) {
        assert!(
            self.batch.is_none(),
            "set_kv_backend requires an empty engine (reset() first)"
        );
        if backend == self.kv_backend {
            return;
        }
        self.kv_backend = backend;
        for c in &mut self.chips {
            c.cache = backend.make_cache(self.cfg.n_layers);
        }
    }

    /// The cache backend this engine's chips store KV in.
    #[must_use]
    pub fn kv_backend(&self) -> KvBackend {
        self.kv_backend
    }

    /// Page-pool occupancy of the busiest chip (the chip holding the most
    /// live pages — the one the per-chip memory bound cares about), or
    /// `None` on the slab backend. Under head-sharded attention every chip
    /// holds the same rows and block-table structure, so any chip is
    /// representative; under batch sharding chips hold disjoint row sets
    /// and the max is the binding one.
    #[must_use]
    pub fn kv_page_stats(&self) -> Option<PageStats> {
        self.chips
            .iter()
            .filter_map(|c| c.cache.page_stats())
            .max_by_key(|s| (s.pages_live, s.pages_allocated))
    }

    /// Arms `plan` into every chip's group handles: each chip counts its
    /// collective calls (across all of its groups) against the plan's
    /// triggers, firing crashes, stalls, and link delays deterministically.
    /// Replaces any previously armed plan.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        let state = Arc::new(FaultState::new(plan, self.chips.len()));
        for c in &self.chips {
            c.g_all.arm_faults(Arc::clone(&state), c.rank);
            if let Some(g) = &c.g_x {
                g.arm_faults(Arc::clone(&state), c.rank);
            }
            if let Some(g) = &c.g_yz {
                g.arm_faults(Arc::clone(&state), c.rank);
            }
        }
    }

    /// Disarms any injected fault plan.
    pub fn clear_faults(&mut self) {
        self.for_each_group(CommGroup::clear_faults);
    }

    /// True once a step has failed: the engine's distributed state is
    /// unrecoverable and it must be rebuilt (see [`EngineError::Poisoned`]).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The execution mode this engine runs decode steps with: the pinned
    /// mode for [`PartitionedEngine::new_with_exec`] engines, or the
    /// planner's decode decision once one has been made (before the first
    /// decode forward, the regression-proof [`ExecMode::Monolithic`]).
    #[must_use]
    pub fn exec_mode(&self) -> ExecMode {
        match self.exec {
            ExecPolicy::Fixed(mode) => mode,
            ExecPolicy::Planned => self
                .plan
                .decisions
                .iter()
                .find(|d| d.phase == Phase::Decode)
                .map_or(ExecMode::Monolithic, |d| d.chosen),
        }
    }

    /// The planner's accumulated decision ledger: one entry per forward
    /// shape planned so far (always empty for engines built with
    /// [`PartitionedEngine::new_with_exec`]). Render it with
    /// [`crate::introspect::plan_ledger_json`].
    #[must_use]
    pub fn exec_plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// The chunk-count target for a `[b, l, _]` forward, planning it first
    /// if this engine plans and has not seen the shape yet.
    fn resolve_want(&mut self, b: usize, l: usize) -> usize {
        match self.exec {
            ExecPolicy::Fixed(mode) => mode.want(),
            ExecPolicy::Planned => {
                let phase = if l == 1 { Phase::Decode } else { Phase::Prefill };
                if let Some(d) = self.plan.decision_for(phase, b, l) {
                    return d.chosen.want();
                }
                let planner = ExecPlanner::new(&self.cfg, self.layout, planner_dtype(self.fmt))
                    .with_workers(self.chip_workers);
                let d = planner.decide(phase, b, l);
                let want = d.chosen.want();
                self.plan.decisions.push(d);
                want
            }
        }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The layout this engine executes.
    #[must_use]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of simulated chips.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.chips.len()
    }

    /// The communication ledger shared by all chip groups.
    #[must_use]
    pub fn traffic(&self) -> &TrafficStats {
        &self.stats
    }

    /// Per-chip wall-clock time blocked in collectives, merged across each
    /// chip's groups, in rank order. For chunked collectives only the
    /// blocking `collect` phase counts, so comparing a monolithic run
    /// against an overlapped one shows how much communication the overlap
    /// actually hid.
    #[must_use]
    pub fn comm_times(&self) -> Vec<CommTimes> {
        self.chips
            .iter()
            .map(|c| {
                let mut t = c.g_all.times();
                if let Some(g) = &c.g_x {
                    t.merge(&g.times());
                }
                if let Some(g) = &c.g_yz {
                    t.merge(&g.times());
                }
                t
            })
            .collect()
    }

    /// Human-readable per-chip summary of [`PartitionedEngine::comm_times`]
    /// (microseconds blocked per collective kind), for benchmark dumps.
    #[must_use]
    pub fn comm_time_summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (rank, t) in self.comm_times().iter().enumerate() {
            let us = |op| t.nanos(op) as f64 / 1e3;
            let _ = writeln!(
                s,
                "chip {rank}: blocked {:.1}us (ag {:.1} rs {:.1} ar {:.1} a2a {:.1})",
                t.total_nanos() as f64 / 1e3,
                us(esti_collectives::CollectiveOp::AllGather),
                us(esti_collectives::CollectiveOp::ReduceScatter),
                us(esti_collectives::CollectiveOp::AllReduce),
                us(esti_collectives::CollectiveOp::AllToAll),
            );
        }
        s
    }

    /// Clears every chip's per-group collective-time counters (the shared
    /// [`TrafficStats`] ledger has its own [`TrafficStats::reset`]).
    pub fn reset_comm_times(&self) {
        for c in &self.chips {
            c.g_all.reset_times();
            if let Some(g) = &c.g_x {
                g.reset_times();
            }
            if let Some(g) = &c.g_yz {
                g.reset_times();
            }
        }
    }

    /// Tokens currently cached per sequence.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        // With batch sharding, chips hold different sequences but the same
        // number of cached positions.
        self.chips.first().map_or(0, |c| c.cache.len())
    }

    /// KV-cache elements held by the busiest chip — the quantity the memory
    /// model bounds (Table 1).
    #[must_use]
    pub fn max_cache_elements_per_chip(&self) -> usize {
        self.chips.iter().map(|c| c.cache.total_elements()).max().unwrap_or(0)
    }

    /// Replicates every cached sequence `k` times — the paper's
    /// low-latency recipe (Section 4.4): prefill at batch 1 for minimum
    /// prefill latency, then expand the cache and decode `k` samples per
    /// prompt "with negligible latency impact" since decode is
    /// weight-loading bound at these batch sizes.
    ///
    /// Subsequent [`PartitionedEngine::decode_step`] calls must pass
    /// `k ×` the original batch of tokens, ordered with each prompt's
    /// samples adjacent.
    ///
    /// # Panics
    ///
    /// Panics if nothing is cached, `k` is zero, or the expanded batch
    /// violates the layout's divisibility requirements.
    pub fn expand_batch(&mut self, k: usize) {
        assert!(k > 0, "expansion factor must be positive");
        let b = self.batch.expect("expand_batch requires a prior prefill");
        self.validate_batch(b * k);
        for c in &mut self.chips {
            c.cache.repeat_batch(k);
        }
        self.batch = Some(b * k);
    }

    /// Clears all KV caches so a new batch can be served.
    pub fn reset(&mut self) {
        for c in &mut self.chips {
            c.cache.clear();
        }
        self.batch = None;
        self.row_lens = None;
    }

    // -----------------------------------------------------------------
    // Slot mode: ragged-batch decode for continuous batching
    // -----------------------------------------------------------------

    /// Switches the engine into slot mode with a fixed decode batch of
    /// `slots` rows, each an independent sequence of its own age (or idle).
    /// Caches are cleared and pre-sized to `reserve` positions per row so
    /// steady-state decode never reallocates. Subsequent
    /// [`PartitionedEngine::decode_step`] calls must pass exactly `slots`
    /// tokens (idle rows carry a dummy token; every op treats batch rows
    /// independently, so idle rows cannot perturb live ones).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or violates the layout's batch
    /// divisibility requirements.
    pub fn begin_slots(&mut self, slots: usize, reserve: usize) {
        assert!(slots > 0, "slot count must be positive");
        self.validate_batch(slots);
        for c in &mut self.chips {
            c.cache.clear();
            c.cache.reserve(reserve);
        }
        self.batch = Some(slots);
        self.row_lens = Some(vec![0; slots]);
    }

    /// Cached positions per slot (slot mode only).
    ///
    /// # Panics
    ///
    /// Panics if the engine is not in slot mode.
    #[must_use]
    pub fn slot_lens(&self) -> &[usize] {
        self.row_lens.as_deref().expect("engine not in slot mode; call begin_slots")
    }

    /// The smallest batch size this engine's layout accepts — the padding
    /// factor a batch-1 prefill needs on batch-sharded layouts (replicating
    /// a prompt changes nothing row-wise; row 0 stays bit-identical).
    #[must_use]
    pub fn min_batch(&self) -> usize {
        let n = self.chips.len();
        let mut m = 1;
        match self.dataflow {
            Dataflow::WeightGathered => m = n,
            Dataflow::WeightGatheredHybrid { n_gather, .. } => m = m.max(n_gather),
            Dataflow::OneD | Dataflow::TwoD => {}
        }
        if self.layout.attn == AttnSharding::Batch && self.dataflow != Dataflow::WeightGathered {
            m = m.max(n);
        }
        m
    }

    /// Batch rows of the full batch `b` that `chip`'s KV cache holds, as
    /// `(start, count)` — the inverse of each dataflow's cache slicing.
    fn chip_rows(&self, chip: &ChipState, b: usize) -> (usize, usize) {
        let n = self.chips.len();
        match (self.dataflow, self.layout.attn) {
            (Dataflow::OneD | Dataflow::TwoD, AttnSharding::Head) => (0, b),
            (Dataflow::OneD, AttnSharding::Batch) | (Dataflow::WeightGathered, _) => {
                (chip.rank * (b / n), b / n)
            }
            (Dataflow::TwoD, AttnSharding::Batch) => {
                let b_n = b / n;
                let b_yz = b / self.layout.mesh.yz();
                (chip.j * b_yz + chip.i * b_n, b_n)
            }
            (Dataflow::WeightGatheredHybrid { n_gather, n_local }, attn) => {
                let slice = b / n_gather;
                match attn {
                    AttnSharding::Head => (chip.i * slice, slice),
                    AttnSharding::Batch => {
                        let b_loc = slice / n_local;
                        (chip.i * slice + chip.j * b_loc, b_loc)
                    }
                }
            }
        }
    }

    /// KV heads of the canonical `[len, Hkv·dh]` row that `chip`'s cache
    /// holds, as `(start, count)` — multiquery K/V is replicated (every
    /// chip holds the single head); multihead K/V shards like Q.
    fn chip_kv_heads(&self, chip: &ChipState) -> (usize, usize) {
        let n_kv = self.cfg.n_kv_heads();
        if n_kv == 1 {
            return (0, 1);
        }
        match self.dataflow {
            Dataflow::OneD => {
                let h = n_kv / self.chips.len();
                (chip.rank * h, h)
            }
            Dataflow::TwoD => {
                let h = n_kv / self.layout.mesh.yz();
                (chip.j * h, h)
            }
            Dataflow::WeightGathered => (0, n_kv),
            Dataflow::WeightGatheredHybrid { n_local, .. } => {
                let h = n_kv / n_local;
                (chip.j * h, h)
            }
        }
    }

    /// Extracts batch row `row`'s KV cache in canonical form, assembling
    /// head shards across chips (replicated shards are written
    /// idempotently). Works in both classic and slot mode.
    ///
    /// # Panics
    ///
    /// Panics if nothing is cached or `row` is out of range.
    #[must_use]
    pub fn extract_kv(&self, row: usize) -> RequestKv {
        let b = self.batch.expect("extract_kv requires cached contents");
        assert!(row < b, "row {row} out of range for batch {b}");
        let dh = self.cfg.d_head;
        let d = self.cfg.n_kv_heads() * dh;
        let mut len = None;
        let layers = (0..self.cfg.n_layers)
            .map(|li| {
                let mut k = None;
                let mut v = None;
                for chip in &self.chips {
                    let (r0, rc) = self.chip_rows(chip, b);
                    if row < r0 || row >= r0 + rc {
                        continue;
                    }
                    let (tk, tv) = chip.cache.read_slot(li, row - r0);
                    let l = tk.dim(0);
                    assert!(*len.get_or_insert(l) == l, "chips disagree on row length");
                    let k = k.get_or_insert_with(|| Tensor::zeros(vec![l, d]));
                    let v = v.get_or_insert_with(|| Tensor::zeros(vec![l, d]));
                    let (h0, hc) = self.chip_kv_heads(chip);
                    let w = hc * dh;
                    for r in 0..l {
                        let dst = r * d + h0 * dh;
                        k.data_mut()[dst..dst + w].copy_from_slice(&tk.data()[r * w..(r + 1) * w]);
                        v.data_mut()[dst..dst + w].copy_from_slice(&tv.data()[r * w..(r + 1) * w]);
                    }
                }
                (k.expect("some chip covers every row"), v.expect("some chip covers every row"))
            })
            .collect();
        RequestKv { len: len.expect("model has at least one layer"), layers }
    }

    /// Inserts a request's canonical KV into slot `slot`, overwriting
    /// whatever the slot held; each chip takes its own head shard of its
    /// own batch rows. Slot mode only.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not in slot mode, `slot` is out of range, or
    /// the KV's layer count or width disagrees with the model.
    pub fn insert_kv(&mut self, slot: usize, kv: &RequestKv) {
        let b = self.batch.expect("insert_kv requires slot mode");
        assert!(slot < b, "slot {slot} out of range for batch {b}");
        assert_eq!(kv.layers.len(), self.cfg.n_layers, "layer count mismatch");
        let dh = self.cfg.d_head;
        let n_kv = self.cfg.n_kv_heads();
        for ci in 0..self.chips.len() {
            let (r0, rc) = self.chip_rows(&self.chips[ci], b);
            if slot < r0 || slot >= r0 + rc {
                continue;
            }
            let (h0, hc) = self.chip_kv_heads(&self.chips[ci]);
            let chip = &mut self.chips[ci];
            for (li, (k, v)) in kv.layers.iter().enumerate() {
                assert_eq!(k.dim(1), n_kv * dh, "canonical KV width mismatch");
                let ks = k.slice(1, h0 * dh, hc * dh);
                let vs = v.slice(1, h0 * dh, hc * dh);
                chip.cache.write_slot(li, slot - r0, rc, &ks, &vs);
            }
        }
        self.row_lens.as_mut().expect("insert_kv requires slot mode")[slot] = kv.len;
    }

    /// [`PartitionedEngine::insert_kv`] with prompt-prefix sharing: each
    /// covering chip inserts its head shard of the request through the
    /// paged backend's prefix registry ([`KvCache::insert_row_shared`]),
    /// mapping pages already cached for `tokens`' page-aligned prefixes by
    /// refcount instead of rewriting them. On the slab backend this is
    /// exactly `insert_kv`. Slot mode only.
    ///
    /// # Panics
    ///
    /// Panics as [`PartitionedEngine::insert_kv`] does, or if `tokens` is
    /// not exactly `kv.len` tokens (the prompt that produced the KV).
    pub fn insert_kv_shared(&mut self, slot: usize, kv: &RequestKv, tokens: &[usize]) {
        let b = self.batch.expect("insert_kv requires slot mode");
        assert!(slot < b, "slot {slot} out of range for batch {b}");
        assert_eq!(kv.layers.len(), self.cfg.n_layers, "layer count mismatch");
        assert_eq!(tokens.len(), kv.len, "one prompt token per cached position");
        let dh = self.cfg.d_head;
        let n_kv = self.cfg.n_kv_heads();
        for ci in 0..self.chips.len() {
            let (r0, rc) = self.chip_rows(&self.chips[ci], b);
            if slot < r0 || slot >= r0 + rc {
                continue;
            }
            let (h0, hc) = self.chip_kv_heads(&self.chips[ci]);
            let shards: Vec<(Tensor, Tensor)> = kv
                .layers
                .iter()
                .map(|(k, v)| {
                    assert_eq!(k.dim(1), n_kv * dh, "canonical KV width mismatch");
                    (k.slice(1, h0 * dh, hc * dh), v.slice(1, h0 * dh, hc * dh))
                })
                .collect();
            self.chips[ci].cache.insert_row_shared(slot - r0, rc, &shards, tokens);
        }
        self.row_lens.as_mut().expect("insert_kv requires slot mode")[slot] = kv.len;
    }

    /// Evicts slot `slot`: its cached positions become scratch and its age
    /// resets to zero. Slot mode only. Also the cheap way to keep *idle*
    /// slots from aging (their dummy appends otherwise accumulate).
    ///
    /// # Panics
    ///
    /// Panics if the engine is not in slot mode or `slot` is out of range.
    pub fn evict_slot(&mut self, slot: usize) {
        let b = self.batch.expect("evict_slot requires slot mode");
        assert!(slot < b, "slot {slot} out of range for batch {b}");
        for ci in 0..self.chips.len() {
            let (r0, rc) = self.chip_rows(&self.chips[ci], b);
            if slot >= r0 && slot < r0 + rc {
                self.chips[ci].cache.clear_slot(slot - r0);
            }
        }
        self.row_lens.as_mut().expect("evict_slot requires slot mode")[slot] = 0;
    }

    /// Prefill over a chunk of tokens (`[B][L]`), returning logits
    /// `[B, L, V]`. Calling again before [`PartitionedEngine::reset`]
    /// performs incremental prefill over additional chunks.
    ///
    /// # Panics
    ///
    /// Panics on ragged batches, out-of-vocabulary tokens, a batch size
    /// change mid-conversation, or a batch that does not divide evenly for
    /// the batch-sharded paths.
    #[must_use]
    pub fn prefill(&mut self, tokens: &[Vec<usize>]) -> Tensor {
        self.try_prefill(tokens).unwrap_or_else(|e| panic!("prefill failed: {e}"))
    }

    /// Fallible [`PartitionedEngine::prefill`]: a chip crash, collective
    /// timeout, or prior poisoning surfaces as a typed [`EngineError`]
    /// instead of a panic. Shape/vocabulary misuse still panics — those are
    /// caller bugs, not faults.
    ///
    /// # Errors
    ///
    /// See [`EngineError`]. After any error the engine is poisoned.
    pub fn try_prefill(&mut self, tokens: &[Vec<usize>]) -> Result<Tensor, EngineError> {
        if self.poisoned {
            return Err(EngineError::Poisoned);
        }
        let x = self.embed_host(tokens);
        self.try_forward(x)
    }

    /// One decode step (one token per sequence), returning logits `[B, V]`.
    #[must_use]
    pub fn decode_step(&mut self, tokens: &[usize]) -> Tensor {
        self.try_decode_step(tokens).unwrap_or_else(|e| panic!("decode step failed: {e}"))
    }

    /// Fallible [`PartitionedEngine::decode_step`] — same contract as
    /// [`PartitionedEngine::try_prefill`].
    ///
    /// # Errors
    ///
    /// See [`EngineError`]. After any error the engine is poisoned.
    pub fn try_decode_step(&mut self, tokens: &[usize]) -> Result<Tensor, EngineError> {
        if self.poisoned {
            return Err(EngineError::Poisoned);
        }
        let seqs: Vec<Vec<usize>> = tokens.iter().map(|&t| vec![t]).collect();
        let x = self.embed_host(&seqs);
        let (b, v) = (tokens.len(), self.cfg.vocab);
        Ok(self.try_forward(x)?.into_reshape(vec![b, v]))
    }

    fn embed_host(&mut self, tokens: &[Vec<usize>]) -> Tensor {
        let b = tokens.len();
        assert!(b > 0, "empty batch");
        let l = tokens[0].len();
        assert!(l > 0, "empty sequence");
        match self.batch {
            None => {
                self.validate_batch(b);
                self.batch = Some(b);
            }
            Some(prev) => assert_eq!(b, prev, "batch size changed mid-conversation; call reset()"),
        }
        let e = self.cfg.d_model;
        // Cached positions before this pass = absolute position of the
        // chunk; in slot mode each row carries its own age.
        let bases = self.row_bases(b);
        let mut x = Tensor::zeros(vec![b, l, e]);
        for (bi, seq) in tokens.iter().enumerate() {
            assert_eq!(seq.len(), l, "ragged batch: all sequences must have equal length");
            for (li, &tok) in seq.iter().enumerate() {
                assert!(tok < self.cfg.vocab, "token id {tok} out of vocabulary");
                for ei in 0..e {
                    let mut v = self.embed.at(&[tok, ei]);
                    if let Some(pos) = &self.pos_embed {
                        v += pos.at(&[bases[bi] + li, ei]);
                    }
                    x.set(&[bi, li, ei], v);
                }
            }
        }
        x
    }

    /// Absolute position of each row's next token: uniform (the shared
    /// cache length) in classic mode, per-slot ages in slot mode.
    fn row_bases(&self, b: usize) -> Vec<usize> {
        match &self.row_lens {
            Some(lens) => lens.clone(),
            None => vec![self.cache_len(); b],
        }
    }

    fn validate_batch(&self, b: usize) {
        let n = self.chips.len();
        if self.dataflow == Dataflow::WeightGathered {
            assert!(b.is_multiple_of(n), "weight-gathered layout needs batch divisible by {n} chips");
        }
        if let Dataflow::WeightGatheredHybrid { n_gather, .. } = self.dataflow {
            assert!(
                b.is_multiple_of(n_gather),
                "hybrid weight-gathered layout needs batch divisible by {n_gather} gather groups"
            );
        }
        if self.layout.attn == AttnSharding::Batch {
            match self.dataflow {
                Dataflow::OneD | Dataflow::TwoD | Dataflow::WeightGatheredHybrid { .. } => {
                    assert!(b.is_multiple_of(n), "batch-sharded attention needs batch divisible by {n} chips");
                }
                Dataflow::WeightGathered => {}
            }
        }
    }

    /// Runs the partitioned forward pass over embedded inputs `[B, L, E]`,
    /// returning logits `[B, L, V]` — or, when any chip thread unwinds, the
    /// classified root-cause [`EngineError`] after releasing every peer.
    ///
    /// The unwind protocol: each worker runs its dataflow under
    /// `catch_unwind`; on unwind it cancels **all** of its own group
    /// handles, labelled with the originating rank (or as a timeout), so
    /// peers blocked in *any* of the chip's communicators — including the
    /// hybrid layouts' sub-groups the dead chip shares with only some peers
    /// — wake with a structured [`CollectiveError`] and cascade the
    /// cancellation through their own groups in turn. No deadline is needed
    /// for a crash to propagate; deadlines cover silent stalls.
    fn try_forward(&mut self, x: Tensor) -> Result<Tensor, EngineError> {
        if self.poisoned {
            return Err(EngineError::Poisoned);
        }
        let cfg = self.cfg.clone();
        let dataflow = self.dataflow;
        let attn = self.layout.attn;
        let (x_parts, yz_parts) = match dataflow {
            Dataflow::TwoD => (self.layout.mesh.x, self.layout.mesh.yz()),
            _ => (1, self.chips.len()),
        };
        let n = self.chips.len();
        let (b, l) = (x.dim(0), x.dim(1));
        let want = self.resolve_want(b, l);
        let bases = self.row_bases(b);
        let pools: Vec<Option<Arc<ChipPool>>> = if self.pools.is_empty() {
            (0..n).map(|_| None).collect()
        } else {
            self.pools.iter().map(|p| Some(Arc::clone(p))).collect()
        };
        let results: Vec<Result<Option<Tensor>, ChipPanic>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .chips
                .iter_mut()
                .zip(pools)
                .map(|(chip, pool)| {
                    let x = x.clone();
                    let cfg = &cfg;
                    let bases = &bases;
                    // Each chip's executor thread installs its own worker
                    // pool; the kernels inside the forward then split
                    // output rows across it (bit-identically).
                    s.spawn(move || {
                        with_worker_pool(pool, || {
                            let result = {
                                let chip = &mut *chip;
                                catch_unwind(AssertUnwindSafe(move || match dataflow {
                                    Dataflow::OneD => forward_1d(cfg, chip, x, bases, attn, n, want),
                                    Dataflow::TwoD => {
                                        forward_2d(cfg, chip, x, bases, attn, x_parts, yz_parts, want)
                                    }
                                    Dataflow::WeightGathered => forward_wg(cfg, chip, x, bases, n, want),
                                    Dataflow::WeightGatheredHybrid { n_gather, n_local } => {
                                        forward_wg_hybrid(
                                            cfg, chip, x, bases, attn, n_gather, n_local, want,
                                        )
                                    }
                                }))
                            };
                            if let Err(payload) = &result {
                                cancel_chip_groups(chip, payload);
                            }
                            result
                        })
                    })
                })
                .collect();
            // The worker closures never unwind (everything runs under
            // catch_unwind), but fold a hypothetical escape into the same
            // payload channel rather than trusting that.
            handles.into_iter().map(|h| h.join().unwrap_or_else(Err)).collect()
        });

        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(results.len());
        let mut failure: Option<(u8, EngineError)> = None;
        for (idx, r) in results.into_iter().enumerate() {
            match r {
                Ok(out) => outputs.push(out),
                Err(payload) => {
                    let c = classify_panic(idx, &payload);
                    if failure.as_ref().is_none_or(|f| c.0 < f.0) {
                        failure = Some(c);
                    }
                }
            }
        }
        if let Some((_, err)) = failure {
            // KV caches may hold a partial append for this step on some
            // chips and not others; nothing downstream can trust them.
            self.poisoned = true;
            return Err(err);
        }

        if let Some(lens) = &mut self.row_lens {
            for len in lens.iter_mut() {
                *len += l;
            }
        }
        if matches!(dataflow, Dataflow::WeightGatheredHybrid { .. }) {
            // One logits slice per gather group (rank order == g order);
            // concatenate along the batch dimension.
            let parts: Vec<Tensor> = outputs.into_iter().flatten().collect();
            let refs: Vec<&Tensor> = parts.iter().collect();
            Ok(Tensor::concat(&refs, 0))
        } else {
            Ok(outputs
                .into_iter()
                .flatten()
                .next()
                .expect("rank 0 returns logits"))
        }
    }
}

/// What a chip thread's unwind carries.
type ChipPanic = Box<dyn std::any::Any + Send + 'static>;

/// Releases every communicator `chip` participates in after its worker
/// unwound with `payload`, labelling the cancellation with the *originating*
/// failure: a propagated [`CollectiveError::PeerCrashed`] keeps naming the
/// chip that actually died (not this observer), and a timeout stays a
/// timeout. Cancellation is first-writer-wins at the barrier, so cascades
/// never relabel the root cause.
fn cancel_chip_groups(chip: &ChipState, payload: &ChipPanic) {
    enum Cause {
        Timeout,
        Crash(usize),
    }
    let cause = if let Some(e) = payload.downcast_ref::<CollectiveError>() {
        match e {
            CollectiveError::Timeout { .. } => Cause::Timeout,
            CollectiveError::PeerCrashed { rank } => Cause::Crash(*rank),
        }
    } else if let Some(c) = payload.downcast_ref::<InjectedCrash>() {
        Cause::Crash(c.chip)
    } else {
        Cause::Crash(chip.rank)
    };
    for g in [Some(&chip.g_all), chip.g_x.as_ref(), chip.g_yz.as_ref()].into_iter().flatten() {
        match cause {
            Cause::Timeout => g.cancel_timeout(),
            Cause::Crash(rank) => g.cancel(rank),
        }
    }
}

/// Maps a harvested panic payload to `(priority, error)`; across the chips'
/// payloads the lowest priority wins, so the step reports the root cause
/// (the chip that died) rather than the cascade (peers observing the death,
/// then stragglers timing out on cancelled groups).
fn classify_panic(thread_idx: usize, payload: &ChipPanic) -> (u8, EngineError) {
    if let Some(c) = payload.downcast_ref::<InjectedCrash>() {
        return (0, EngineError::ChipCrashed { rank: c.chip, message: "injected crash".to_string() });
    }
    if let Some(e) = payload.downcast_ref::<CollectiveError>() {
        return match e {
            CollectiveError::PeerCrashed { rank } => (
                1,
                EngineError::ChipCrashed {
                    rank: *rank,
                    message: "crashed mid-collective (observed by a peer)".to_string(),
                },
            ),
            CollectiveError::Timeout { deadline } => {
                (3, EngineError::CollectiveTimeout { deadline: *deadline })
            }
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "chip thread panicked with a non-string payload".to_string()
    };
    (2, EngineError::ChipCrashed { rank: thread_idx, message })
}

// ---------------------------------------------------------------------------
// shared per-chip helpers
// ---------------------------------------------------------------------------

fn ln3(x: &Tensor, gain: &Tensor) -> Tensor {
    ops::layernorm(x, gain, 1e-6)
}

/// Layernorm of an `E`-sharded `[B, L, E/n]` tensor: local moments are
/// all-reduced over `group` (a tiny `[B·L, 2]` exchange), then each chip
/// normalizes its own slice with its gain shard.
fn sharded_layernorm(group: &CommGroup, x_loc: &Tensor, gain_loc: &Tensor, e_global: usize) -> Tensor {
    let (b, l, e_loc) = (x_loc.dim(0), x_loc.dim(1), x_loc.dim(2));
    let rows = b * l;
    let mut moments = Tensor::zeros(vec![rows, 2]);
    for r in 0..rows {
        let row = &x_loc.data()[r * e_loc..(r + 1) * e_loc];
        let sum: f32 = row.iter().sum();
        let sumsq: f32 = row.iter().map(|v| v * v).sum();
        moments.set(&[r, 0], sum);
        moments.set(&[r, 1], sumsq);
    }
    let tot = group.all_reduce(&moments);
    let ef = e_global as f32;
    let mut out = vec![0.0f32; x_loc.numel()];
    for r in 0..rows {
        let mean = tot.at(&[r, 0]) / ef;
        let var = tot.at(&[r, 1]) / ef - mean * mean;
        let inv = 1.0 / (var + 1e-6).sqrt();
        for c in 0..e_loc {
            out[r * e_loc + c] =
                (x_loc.data()[r * e_loc + c] - mean) * inv * gain_loc.data()[c];
        }
    }
    Tensor::from_vec(vec![b, l, e_loc], out)
}

/// MLP hidden nonlinearity on (possibly sharded) gate/up tensors.
fn mlp_hidden(cfg: &ModelConfig, gate: Option<Tensor>, up: Tensor) -> Tensor {
    match cfg.mlp {
        MlpKind::SwiGlu => ops::swiglu(&gate.expect("SwiGLU requires gate"), &up),
        MlpKind::Gelu => gelu(&up),
    }
}

// ---------------------------------------------------------------------------
// 1D weight-stationary dataflow (Section 3.2.1)
// ---------------------------------------------------------------------------

fn forward_1d(
    cfg: &ModelConfig,
    chip: &mut ChipState,
    mut x: Tensor,
    bases: &[usize],
    attn: AttnSharding,
    n: usize,
    want: usize,
) -> Option<Tensor> {
    let ChipState { rank, layers, cache, g_all, ln_final, embed_t, .. } = chip;
    let rank = *rank;
    for (li, shard) in layers.iter().enumerate() {
        x = layer_1d(cfg, shard, x, bases, attn, g_all, cache, li, rank, n, want);
    }
    if rank == 0 {
        let h = ln3(&x, ln_final);
        Some(mm3(&h, embed_t))
    } else {
        None
    }
}

/// One 1D weight-stationary Transformer layer: the Megatron dataflow with
/// a parallel or serialized block, shared by the pure 1D and the hybrid
/// weight-gathered forwards. The block's output projections are fused into
/// the all-reduce as a looped collective einsum chunked over `d_model`
/// (column chunks of `wo`/`w_out` are produced just in time to feed the
/// chunk pipeline).
#[allow(clippy::too_many_arguments)]
fn layer_1d(
    cfg: &ModelConfig,
    shard: &LayerShard,
    x: Tensor,
    bases: &[usize],
    attn: AttnSharding,
    group: &CommGroup,
    cache: &mut KvCache,
    li: usize,
    rank: usize,
    n: usize,
    want: usize,
) -> Tensor {
    let c = effective_chunks(cfg.d_model, want);
    let serial = cfg.block == esti_model::BlockKind::Serial;
    if serial {
        let ctx =
            attn_ctx_1d(cfg, shard, &ln3(&x, &shard.ln1), bases, attn, group, cache, li, rank, n);
        let x1 = &x + &looped_ar_cols(group, &[(&ctx, &shard.wo)], c);
        let ln2 = shard.ln2.as_ref().expect("serial block requires ln2");
        let h = mlp_hidden_1d(cfg, shard, &ln3(&x1, ln2));
        &x1 + &looped_ar_cols(group, &[(&h, &shard.w_out)], c)
    } else {
        let ln = ln3(&x, &shard.ln1);
        let ctx = attn_ctx_1d(cfg, shard, &ln, bases, attn, group, cache, li, rank, n);
        let h = mlp_hidden_1d(cfg, shard, &ln);
        &x + &looped_ar_cols(group, &[(&ctx, &shard.wo), (&h, &shard.w_out)], c)
    }
}

/// The hybrid weight-gathered forward (X / XY extents, Figure A.2): the
/// batch is sharded over `n_gather` groups; within each group, weights are
/// all-gathered into 1D shards and the layer runs as 1D weight-stationary
/// over the `n_local` chips holding that batch slice.
#[allow(clippy::too_many_arguments)]
fn forward_wg_hybrid(
    cfg: &ModelConfig,
    chip: &mut ChipState,
    x_full: Tensor,
    bases: &[usize],
    attn: AttnSharding,
    n_gather: usize,
    n_local: usize,
    want: usize,
) -> Option<Tensor> {
    let ChipState { i, j, layers, cache, g_x, g_yz, ln_final, embed_t, .. } = chip;
    let (g, b) = (*i, *j);
    let g_gather = g_x.as_ref().expect("hybrid WG has a gather group");
    let g_local = g_yz.as_ref().expect("hybrid WG has a local group");
    let batch = x_full.dim(0);
    let slice = batch / n_gather;
    let mut x = x_full.slice(0, g * slice, slice);
    let bases = &bases[g * slice..(g + 1) * slice];
    let _ = n_local;
    for (li, shard) in layers.iter().enumerate() {
        // Weight gathers over the small gather groups stay monolithic (the
        // planner marks only the 1D all-reduces as overlap-chunkable here).
        let w = gather_layer(cfg, g_gather, shard);
        x = layer_1d(cfg, &w, x, bases, attn, g_local, cache, li, b, g_local.size(), want);
    }
    if b == 0 {
        // x is replicated within the local group; the b = 0 member of each
        // gather group emits its batch slice's logits.
        let h = ln3(&x, ln_final);
        Some(mm3(&h, embed_t))
    } else {
        None
    }
}

/// 1D attention up to (but not including) the output projection: returns
/// the per-chip context `[B, l, h_loc*dh]`, which the caller contracts
/// with `wo` inside the looped all-reduce.
#[allow(clippy::too_many_arguments)]
fn attn_ctx_1d(
    cfg: &ModelConfig,
    shard: &LayerShard,
    ln: &Tensor,
    bases: &[usize],
    attn: AttnSharding,
    g_all: &CommGroup,
    cache: &mut KvCache,
    li: usize,
    rank: usize,
    n: usize,
) -> Tensor {
    let mut q = shard.wq.mm3(ln); // [B, l, h_loc*dh]
    let mut k = shard.wk.mm3(ln); // MQ: [B, l, dh] (replicated); MHA: local heads
    let v = shard.wv.mm3(ln);
    let dh = cfg.d_head;
    if cfg.position == PositionKind::Rope {
        // RoPE is head-local and position-dependent only, so rotating the
        // shards before any resharding matches the reference exactly.
        q = ops::rope_rows(&q, dh, bases);
        k = ops::rope_rows(&k, dh, bases);
    }
    match attn {
        AttnSharding::Head => {
            cache.append(li, &k, &v);
            attention_over_cache(&q, cache, li, dh)
        }
        AttnSharding::Batch => {
            // Reshard Q from head-sharded to batch-sharded (Figure 5b);
            // K/V are replicated under multiquery so each chip just keeps
            // its batch slice — the KV cache ends up divided n ways.
            let b = q.dim(0);
            let q_b = g_all.all_to_all(&q, 0, 2); // [B/n, l, H*dh]
            let b_loc = b / n;
            let k_b = k.slice(0, rank * b_loc, b_loc);
            let v_b = v.slice(0, rank * b_loc, b_loc);
            cache.append(li, &k_b, &v_b);
            let attn_b = attention_over_cache(&q_b, cache, li, dh); // [B/n, l, H*dh]
            g_all.all_to_all(&attn_b, 2, 0) // [B, l, h_loc*dh]
        }
    }
}

/// 1D MLP up to (but not including) the output projection: returns the
/// hidden activations `[B, l, f_loc]`, which the caller contracts with
/// `w_out` inside the looped all-reduce.
fn mlp_hidden_1d(cfg: &ModelConfig, shard: &LayerShard, ln: &Tensor) -> Tensor {
    let gate = shard.w_gate.as_ref().map(|g| g.mm3(ln));
    let up = shard.w_in.mm3(ln);
    mlp_hidden(cfg, gate, up)
}

// ---------------------------------------------------------------------------
// 2D weight-stationary dataflow (Section 3.2.2)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn forward_2d(
    cfg: &ModelConfig,
    chip: &mut ChipState,
    x_full: Tensor,
    bases: &[usize],
    attn: AttnSharding,
    x_parts: usize,
    yz_parts: usize,
    want: usize,
) -> Option<Tensor> {
    let ChipState { rank, i, j, layers, cache, g_all, g_x, g_yz, ln_final, embed_t } = chip;
    let (rank, i, j) = (*rank, *i, *j);
    let g_x = g_x.as_ref().expect("2D dataflow has x group");
    let g_yz = g_yz.as_ref().expect("2D dataflow has yz group");
    let n = x_parts * yz_parts;
    let e = cfg.d_model;
    let e_n = e / n;
    let off = i * (e / x_parts) + j * e_n;
    // Both yz collectives chunk over the boundary-sharded width E/n: the
    // all-gather streams `E/n`-wide activation chunks into the projection
    // einsums, the reduce-scatter emits each destination's `E/n` slice
    // chunk by chunk.
    let c_yz = effective_chunks(e_n, want);
    // Boundary state: x sharded E_xyz.
    let mut x_loc = x_full.slice(2, off, e_n);
    for (li, shard) in layers.iter().enumerate() {
        let serial = cfg.block == esti_model::BlockKind::Serial;
        if serial {
            let xn = sharded_layernorm(g_all, &x_loc, &shard.ln1, e);
            let mut proj =
                looped_ag_einsums(g_yz, &xn, &[&shard.wq, &shard.wk, &shard.wv], c_yz);
            let v_part = proj.pop().expect("three projections");
            let k_part = proj.pop().expect("three projections");
            let q_part = proj.pop().expect("three projections");
            let attn_j = attn_2d_ctx(
                cfg, cache, li, q_part, k_part, v_part, bases, attn, g_x, g_yz, i, j, x_parts,
                yz_parts,
            );
            let x1_loc = &x_loc + &looped_rs_cols(g_yz, &[(&attn_j, &shard.wo)], c_yz);
            let ln2 = shard.ln2.as_ref().expect("serial block requires ln2");
            let x1n = sharded_layernorm(g_all, &x1_loc, ln2, e);
            let mlp_w: Vec<&ShardMat> = match &shard.w_gate {
                Some(g) => vec![g, &shard.w_in],
                None => vec![&shard.w_in],
            };
            let mut proj = looped_ag_einsums(g_yz, &x1n, &mlp_w, c_yz);
            let up_part = proj.pop().expect("mlp input projection");
            let gate_part = proj.pop();
            let h_j = mlp_2d_hidden(cfg, g_x, gate_part, up_part);
            x_loc = &x1_loc + &looped_rs_cols(g_yz, &[(&h_j, &shard.w_out)], c_yz);
        } else {
            let xn = sharded_layernorm(g_all, &x_loc, &shard.ln1, e);
            // One streamed all-gather feeds every projection of the
            // parallel block (attention and MLP share the layernormed x_i).
            let mut weights: Vec<&ShardMat> = vec![&shard.wq, &shard.wk, &shard.wv];
            if let Some(g) = &shard.w_gate {
                weights.push(g);
            }
            weights.push(&shard.w_in);
            let mut proj = looped_ag_einsums(g_yz, &xn, &weights, c_yz);
            let up_part = proj.pop().expect("mlp input projection");
            let gate_part = if shard.w_gate.is_some() { proj.pop() } else { None };
            let v_part = proj.pop().expect("three projections");
            let k_part = proj.pop().expect("three projections");
            let q_part = proj.pop().expect("three projections");
            let attn_j = attn_2d_ctx(
                cfg, cache, li, q_part, k_part, v_part, bases, attn, g_x, g_yz, i, j, x_parts,
                yz_parts,
            );
            let h_j = mlp_2d_hidden(cfg, g_x, gate_part, up_part);
            // One chunked reduce-scatter carries both partials: chunk `c`
            // of `wo`'s and `w_out`'s columns is computed just in time.
            x_loc = &x_loc
                + &looped_rs_cols(g_yz, &[(&attn_j, &shard.wo), (&h_j, &shard.w_out)], c_yz);
        }
    }
    // Final layernorm + logit projection: partial over all chips.
    let xn = sharded_layernorm(g_all, &x_loc, ln_final, e);
    let logits_part = mm3(&xn, embed_t); // [B, L, V] partial
    let logits = g_all.all_reduce(&logits_part);
    if rank == 0 {
        Some(logits)
    } else {
        None
    }
}

/// 2D MLP between the input and output projections: reduce-scatter(x) the
/// partial gate/up along the hidden dimension (the paper's choice, Section
/// 3.5), apply the nonlinearity on `[B, l, F/n]` shards, all-gather(x)
/// back to `[B, l, F/YZ]`. The caller contracts the result with `w_out`
/// inside the looped yz reduce-scatter.
fn mlp_2d_hidden(
    cfg: &ModelConfig,
    g_x: &CommGroup,
    gate_part: Option<Tensor>,
    up_part: Tensor,
) -> Tensor {
    let gate_sh = gate_part.map(|g| g_x.reduce_scatter(&g, 2));
    let up_sh = g_x.reduce_scatter(&up_part, 2);
    let h_sh = mlp_hidden(cfg, gate_sh, up_sh);
    g_x.all_gather(&h_sh, 2) // [B, l, F/YZ]
}

/// 2D attention from the partial (over `i`) Q/K/V projections up to (but
/// not including) the output projection: returns the head-sharded context
/// `[B, l, H_yz*dh]`, which the caller contracts with `wo` inside the
/// looped yz reduce-scatter. The small x-axis collectives stay monolithic.
#[allow(clippy::too_many_arguments)]
fn attn_2d_ctx(
    cfg: &ModelConfig,
    cache: &mut KvCache,
    li: usize,
    q_part: Tensor,
    k_part: Tensor,
    v_part: Tensor,
    bases: &[usize],
    attn: AttnSharding,
    g_x: &CommGroup,
    g_yz: &CommGroup,
    i: usize,
    j: usize,
    x_parts: usize,
    yz_parts: usize,
) -> Tensor {
    let dh = cfg.d_head;
    // Projections are partial over i; all-reduce(x) replicates them within
    // the x group (Q/K/V are small relative to the FFN activations).
    let mut q_j = g_x.all_reduce(&q_part); // [B, l, H_yz*dh]
    let mut k_j = g_x.all_reduce(&k_part);
    let v_j = g_x.all_reduce(&v_part);
    if cfg.position == PositionKind::Rope {
        q_j = ops::rope_rows(&q_j, dh, bases);
        k_j = ops::rope_rows(&k_j, dh, bases);
    }
    match attn {
        AttnSharding::Head => {
            // MQ: k_j is the full single head, cached replicated (the
            // "baseline multiquery" layout). MHA: own heads only.
            cache.append(li, &k_j, &v_j);
            attention_over_cache(&q_j, cache, li, dh)
        }
        AttnSharding::Batch => {
            let b = q_j.dim(0);
            let n = x_parts * yz_parts;
            let b_n = b / n;
            let b_yz = b / yz_parts;
            // all-to-all over yz: heads -> batch (Figure 5b), then slice
            // the x-replicated result so each chip keeps B/n sequences.
            let q_b = g_yz.all_to_all(&q_j, 0, 2); // [B/YZ, l, H*dh]
            let q_bi = q_b.slice(0, i * b_n, b_n); // [B/n, l, H*dh]
            let kv_off = j * b_yz + i * b_n;
            let k_bi = k_j.slice(0, kv_off, b_n);
            let v_bi = v_j.slice(0, kv_off, b_n);
            cache.append(li, &k_bi, &v_bi);
            let attn_bi = attention_over_cache(&q_bi, cache, li, dh); // [B/n, l, H*dh]
            // Gather the batch back over x, then all-to-all back to
            // head sharding over yz.
            let attn_b = g_x.all_gather(&attn_bi, 0); // [B/YZ, l, H*dh]
            g_yz.all_to_all(&attn_b, 2, 0) // [B, l, H_yz*dh]
        }
    }
}

// ---------------------------------------------------------------------------
// weight-gathered dataflow (Section 3.2.3, XYZ extent)
// ---------------------------------------------------------------------------

fn forward_wg(
    cfg: &ModelConfig,
    chip: &mut ChipState,
    x_full: Tensor,
    bases: &[usize],
    n: usize,
    want: usize,
) -> Option<Tensor> {
    let ChipState { rank, layers, cache, g_all, ln_final, embed_t, .. } = chip;
    let rank = *rank;
    let b = x_full.dim(0);
    let b_loc = b / n;
    // Weight gathers chunk over the *sharded* extent each chip owns: heads
    // for the attention projections, hidden width for the MLP — matching
    // the symbolic schedule's chunk marks.
    let c_h = effective_chunks(cfg.n_heads / n, want);
    let c_f = effective_chunks(cfg.d_ff / n, want);
    // Activations stay batch-sharded and fully stationary; weight shards
    // are streamed through their einsums chunk by chunk, each layer's
    // matmul consuming chunk `i-1` while chunk `i` is in flight.
    let mut x = x_full.slice(0, rank * b_loc, b_loc);
    let bases = &bases[rank * b_loc..(rank + 1) * b_loc];
    for (li, shard) in layers.iter().enumerate() {
        let serial = cfg.block == esti_model::BlockKind::Serial;
        if serial {
            let a = attn_wg(cfg, cache, li, &ln3(&x, &shard.ln1), bases, shard, g_all, c_h);
            let x1 = &x + &a;
            let ln2 = shard.ln2.as_ref().expect("serial block requires ln2");
            let m = mlp_wg(cfg, &ln3(&x1, ln2), shard, g_all, c_f);
            x = &x1 + &m;
        } else {
            let ln = ln3(&x, &shard.ln1);
            let a = attn_wg(cfg, cache, li, &ln, bases, shard, g_all, c_h);
            let m = mlp_wg(cfg, &ln, shard, g_all, c_f);
            x = &(&x + &a) + &m;
        }
    }
    let h = ln3(&x, ln_final);
    let logits_loc = mm3(&h, embed_t); // [B/n, L, V]
    let logits = g_all.all_gather(&logits_loc, 0);
    if rank == 0 {
        Some(logits)
    } else {
        None
    }
}

/// All-gathers one layer's weight shards into full matrices — the
/// *monolithic* weight-gather, still used by the hybrid dataflow whose
/// planner keeps weight gathers unchunked. Quantized shards travel in
/// their wire format (int8 values + per-column f32 scales) and stay
/// quantized after the gather: column shards reassemble into one
/// [`ShardMat::Int8`] (every output column's scale lives wholly in one
/// shard), row shards become a [`ShardMat::Int8Cat`] of the
/// independently-scaled blocks so the downstream einsum can fold scaled
/// per-block partials. The ledger therefore charges the quantized byte
/// volume, matching the stored-dtype traffic the analytic model charges.
fn gather_layer(cfg: &ModelConfig, g: &CommGroup, s: &LayerShard) -> LayerShard {
    use crate::shard::ShardMat;
    let ag = |m: &ShardMat, dim: usize| match m {
        ShardMat::Int8(q) => {
            let parts = g.all_gather_quant(q, dim);
            if dim == 1 {
                let refs: Vec<&esti_tensor::QuantizedMatrix> = parts.iter().collect();
                ShardMat::Int8(esti_tensor::QuantizedMatrix::concat_cols(&refs))
            } else {
                ShardMat::Int8Cat(parts)
            }
        }
        ShardMat::Int8Cat(_) => unreachable!("stored shards are never gathered concatenations"),
        ShardMat::Dense(_) => ShardMat::Dense(g.all_gather(&m.dense(), dim)),
    };
    LayerShard {
        wq: ag(&s.wq, 1),
        // Multiquery K/V shards are replicated (nothing to gather).
        wk: if cfg.n_kv_heads() == 1 { s.wk.clone() } else { ag(&s.wk, 1) },
        wv: if cfg.n_kv_heads() == 1 { s.wv.clone() } else { ag(&s.wv, 1) },
        wo: ag(&s.wo, 0),
        w_in: ag(&s.w_in, 1),
        w_gate: s.w_gate.as_ref().map(|w| ag(w, 1)),
        w_out: ag(&s.w_out, 0),
        ln1: s.ln1.clone(),
        ln2: s.ln2.clone(),
    }
}

/// Weight-gathered attention: every projection streams its weight gather
/// through the einsum ([`looped_wg_cols`] for the head-sharded Q/K/V,
/// [`looped_wg_rows`] for the row-sharded output projection). Multiquery
/// K/V shards are replicated — nothing to gather, plain local matmuls.
#[allow(clippy::too_many_arguments)]
fn attn_wg(
    cfg: &ModelConfig,
    cache: &mut KvCache,
    li: usize,
    ln: &Tensor,
    bases: &[usize],
    shard: &LayerShard,
    g: &CommGroup,
    chunks: usize,
) -> Tensor {
    let mut q = looped_wg_cols(g, ln, &shard.wq, chunks);
    let (mut k, v) = if cfg.n_kv_heads() == 1 {
        (shard.wk.mm3(ln), shard.wv.mm3(ln))
    } else {
        (
            looped_wg_cols(g, ln, &shard.wk, chunks),
            looped_wg_cols(g, ln, &shard.wv, chunks),
        )
    };
    if cfg.position == PositionKind::Rope {
        q = ops::rope_rows(&q, cfg.d_head, bases);
        k = ops::rope_rows(&k, cfg.d_head, bases);
    }
    cache.append(li, &k, &v);
    let attn = attention_over_cache(&q, cache, li, cfg.d_head);
    looped_wg_rows(g, &attn, &shard.wo, chunks)
}

/// Weight-gathered MLP: streamed column gathers for the input (and gate)
/// projections, a streamed row gather for the output projection.
fn mlp_wg(
    cfg: &ModelConfig,
    ln: &Tensor,
    shard: &LayerShard,
    g: &CommGroup,
    chunks: usize,
) -> Tensor {
    let gate = shard.w_gate.as_ref().map(|w| looped_wg_cols(g, ln, w, chunks));
    let up = looped_wg_cols(g, ln, &shard.w_in, chunks);
    looped_wg_rows(g, &mlp_hidden(cfg, gate, up), &shard.w_out, chunks)
}
