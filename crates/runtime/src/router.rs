//! Fault-aware routing over N independent engine replicas.
//!
//! One [`ContinuousBatcher`](crate::ContinuousBatcher) already self-heals:
//! a failed decode step rebuilds the tier and replays in-flight requests
//! to bit-identical streams, up to its recovery budget. This module turns
//! that into a *fleet-level* property. A [`ReplicaRouter`] owns N replicas
//! of the same model, dispatches each request to the least-loaded healthy
//! replica, and treats a replica whose serve call fails outright —
//! recovery budget exhausted, or an unrecoverable engine fault — as
//! *drained*: it is marked unhealthy, taken out of dispatch, and its
//! entire share is re-routed to the survivors.
//!
//! Zero requests are lost across a drain, by construction rather than by
//! bookkeeping effort: `try_serve` is transactional (an `Err` commits
//! nothing), and every request's sampling stream is an independent
//! function of its own seed — proven batch-composition-independent by the
//! conformance suites — so replaying a share on a different replica
//! reproduces exactly the streams the dead replica would have produced.
//! The failover is accounted in [`RecoveryStats::failovers`] /
//! [`RecoveryStats::requests_rerouted`] on the merged report.

use std::collections::VecDeque;

use esti_core::layout::Layout;
use esti_core::serving::{RecoveryStats, RequestStats, ServingReport};
use esti_model::ReferenceModel;

use crate::engine::WeightFormat;
use crate::serving::{
    ContinuousBatcher, ServeError, ServingOptions, ServingOutcome, ServingRequest,
};

/// Why a routed serve call could not complete.
#[derive(Debug)]
pub enum RouterError {
    /// The router was built with zero replicas.
    NoReplicas,
    /// Every replica was drained before the work finished. The payload is
    /// the failure that drained the last one.
    AllReplicasFailed {
        /// Replicas drained during this call (== the fleet size).
        drained: usize,
        /// The error that drained the last replica.
        last: ServeError,
    },
    /// The submission itself was invalid (empty prompt, unsorted
    /// arrivals, a request that can never fit a budget...) — no failover
    /// can fix it. Request indices refer to the router's submission
    /// order.
    Submission(ServeError),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NoReplicas => write!(f, "router has no replicas"),
            RouterError::AllReplicasFailed { drained, last } => {
                write!(f, "all {drained} replicas drained (last failure: {last})")
            }
            RouterError::Submission(e) => write!(f, "invalid submission: {e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::AllReplicasFailed { last: e, .. } | RouterError::Submission(e) => {
                Some(e)
            }
            RouterError::NoReplicas => None,
        }
    }
}

/// Everything a routed serving run produces.
#[derive(Debug, Clone)]
pub struct RouterOutcome {
    /// Generated tokens per request, in submission order — identical to
    /// what each request would produce on any single replica.
    pub outputs: Vec<Vec<usize>>,
    /// Merged fleet report: per-request stats in submission order, step
    /// and occupancy counters summed, recovery accounting absorbed from
    /// every replica plus the router's own failover counters.
    pub report: ServingReport,
    /// Admission-control sheds from every replica, re-indexed to the
    /// submission order.
    pub shed: Vec<ServeError>,
    /// Total tokens generated across the fleet.
    pub total_generated: usize,
    /// Requests each replica completed. A share that failed with its
    /// replica counts nowhere until the survivors complete it — a drained
    /// replica keeps only what it finished before dying.
    pub served_per_replica: Vec<usize>,
    /// Priority preemptions summed across the fleet.
    pub preemptions: usize,
}

/// One engine replica plus its health state.
struct Replica {
    batcher: ContinuousBatcher,
    healthy: bool,
}

/// A fault-aware, least-loaded router over N independent serving replicas.
///
/// # Examples
///
/// ```
/// use esti_core::planner::decode_layout;
/// use esti_core::Machine;
/// use esti_model::{ModelConfig, ReferenceModel};
/// use esti_runtime::{ReplicaRouter, ServingOptions, ServingRequest, WeightFormat};
///
/// let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
/// let machine = Machine::tpu_v4_slice(4).unwrap();
/// let layout = decode_layout(model.config(), &machine);
/// let mut router =
///     ReplicaRouter::new(&model, layout, WeightFormat::Exact, ServingOptions::default(), 2);
/// let requests = vec![
///     ServingRequest::immediate(vec![1, 2, 3], 4),
///     ServingRequest::immediate(vec![5, 6], 4),
/// ];
/// let outcome = router.try_serve(&requests).unwrap();
/// assert_eq!(outcome.outputs.len(), 2);
/// ```
pub struct ReplicaRouter {
    replicas: Vec<Replica>,
    opts: ServingOptions,
}

impl ReplicaRouter {
    /// Builds `n_replicas` identical replicas (same model, layout, weight
    /// format, and scheduler options). Replicas are fully independent
    /// engines — a fault on one cannot reach another.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ContinuousBatcher::new`].
    #[must_use]
    pub fn new(
        model: &ReferenceModel,
        layout: Layout,
        fmt: WeightFormat,
        opts: ServingOptions,
        n_replicas: usize,
    ) -> Self {
        let replicas = (0..n_replicas)
            .map(|_| Replica {
                batcher: ContinuousBatcher::new(model, layout, fmt, opts),
                healthy: true,
            })
            .collect();
        ReplicaRouter { replicas, opts }
    }

    /// Total replicas, healthy or not.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas currently in dispatch.
    #[must_use]
    pub fn healthy_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.healthy).count()
    }

    /// Whether replica `i` is in dispatch.
    #[must_use]
    pub fn is_healthy(&self, i: usize) -> bool {
        self.replicas[i].healthy
    }

    /// Takes replica `i` out of dispatch by hand (operational drain, e.g.
    /// ahead of maintenance). Future serve calls route around it.
    pub fn drain(&mut self, i: usize) {
        self.replicas[i].healthy = false;
    }

    /// Returns a drained replica to dispatch (it was rebuilt or replaced
    /// out of band).
    pub fn restore(&mut self, i: usize) {
        self.replicas[i].healthy = true;
    }

    /// Direct access to replica `i`'s scheduler — for chaos injection
    /// ([`ContinuousBatcher::schedule_decode_fault`],
    /// [`ContinuousBatcher::set_max_recoveries`]) and inspection.
    pub fn batcher_mut(&mut self, i: usize) -> &mut ContinuousBatcher {
        &mut self.replicas[i].batcher
    }

    /// Serves `requests` (sorted by arrival) across the fleet.
    ///
    /// Dispatch is least-loaded: requests are assigned in submission
    /// order, each to the healthy replica with the smallest assigned work
    /// (Σ prompt + generation tokens; ties to the lowest index), so the
    /// assignment is deterministic. Each replica then serves its share
    /// under the shared [`ServingOptions`] — admission control and
    /// priority preemption apply per replica exactly as on a single
    /// engine.
    ///
    /// **Failover:** a replica whose serve call fails (recovery budget
    /// exhausted or an unrecoverable engine fault) is drained and its
    /// whole share re-dispatched to the survivors. Nothing is lost:
    /// the failed call committed nothing, and re-serving the share
    /// elsewhere reproduces bit-identical streams (per-request seeded
    /// sampling is independent of batch composition). Each drain adds one
    /// to [`RecoveryStats::failovers`] and the share size to
    /// [`RecoveryStats::requests_rerouted`] on the merged report.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoReplicas`] with an empty fleet (or every replica
    /// already drained); [`RouterError::Submission`] for invalid requests
    /// (re-indexed to submission order); [`RouterError::AllReplicasFailed`]
    /// when faults drain the whole fleet.
    pub fn try_serve(
        &mut self,
        requests: &[ServingRequest],
    ) -> Result<RouterOutcome, RouterError> {
        if self.healthy_count() == 0 {
            return Err(RouterError::NoReplicas);
        }
        if requests.is_empty() {
            return Err(RouterError::Submission(ServeError::NoRequests));
        }
        let n = requests.len();
        let n_rep = self.replicas.len();

        // Least-loaded dispatch over the healthy fleet.
        let mut shares: Vec<Vec<usize>> = vec![Vec::new(); n_rep];
        let mut load = vec![0usize; n_rep];
        for (idx, req) in requests.iter().enumerate() {
            let Some(r) = self.least_loaded(&load) else {
                return Err(RouterError::NoReplicas);
            };
            shares[r].push(idx);
            load[r] += req.prompt.len() + req.max_new_tokens;
        }

        let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut stats: Vec<Option<RequestStats>> = vec![None; n];
        let mut shed: Vec<ServeError> = Vec::new();
        let mut recovery = RecoveryStats::default();
        let mut decode_steps = 0usize;
        let mut occupancy_sum = 0usize;
        let mut peak_batch = 0usize;
        let mut total_generated = 0usize;
        let mut preemptions = 0usize;
        let mut served_per_replica = vec![0usize; n_rep];

        let mut queue: VecDeque<usize> =
            (0..n_rep).filter(|&r| !shares[r].is_empty()).collect();
        while let Some(r) = queue.pop_front() {
            let mut share = std::mem::take(&mut shares[r]);
            if share.is_empty() {
                continue;
            }
            // Re-routed indices may interleave with the original share;
            // submission order is arrival order, so sorting restores the
            // sorted-arrival invariant each replica requires.
            share.sort_unstable();
            let local: Vec<ServingRequest> =
                share.iter().map(|&i| requests[i].clone()).collect();
            match self.replicas[r].batcher.try_serve(&local) {
                Ok(outcome) => {
                    served_per_replica[r] += share.len();
                    merge_outcome(
                        &share,
                        outcome,
                        &mut outputs,
                        &mut stats,
                        &mut shed,
                        &mut recovery,
                        &mut decode_steps,
                        &mut occupancy_sum,
                        &mut peak_batch,
                        &mut total_generated,
                        &mut preemptions,
                    );
                }
                Err(
                    err @ (ServeError::Engine(_) | ServeError::RecoveryLimit { .. }),
                ) => {
                    // The replica is gone: drain it and re-route its whole
                    // share. try_serve committed nothing, so the share
                    // replays losslessly wherever it lands.
                    self.replicas[r].healthy = false;
                    recovery.failovers += 1;
                    recovery.requests_rerouted += share.len();
                    let mut reload: Vec<usize> = (0..n_rep)
                        .map(|i| shares[i].iter().map(|&x| cost(&requests[x])).sum())
                        .collect();
                    // Survivors keep whatever is still queued for them;
                    // redistribute the failed share least-loaded-first.
                    for idx in share {
                        let Some(t) = self.least_loaded(&reload) else {
                            return Err(RouterError::AllReplicasFailed {
                                drained: self.replicas.len() - self.healthy_count(),
                                last: err,
                            });
                        };
                        shares[t].push(idx);
                        reload[t] += cost(&requests[idx]);
                        if !queue.contains(&t) {
                            queue.push_back(t);
                        }
                    }
                }
                Err(err) => {
                    // A submission error: failover cannot fix it. Re-index
                    // to the router's submission order before reporting.
                    return Err(RouterError::Submission(reindex(err, &share)));
                }
            }
        }

        let report = ServingReport::new(
            stats.into_iter().flatten().collect(),
            decode_steps,
            occupancy_sum,
        )
        .with_recovery(recovery)
        .with_peak_batch(peak_batch);
        Ok(RouterOutcome {
            outputs,
            report,
            shed,
            total_generated,
            served_per_replica,
            preemptions,
        })
    }

    /// The healthy replica with the least assigned work (ties to the
    /// lowest index); `None` when the whole fleet is drained.
    fn least_loaded(&self, load: &[usize]) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, rep)| rep.healthy)
            .min_by_key(|&(i, _)| (load[i], i))
            .map(|(i, _)| i)
    }

    /// The shared scheduler options every replica runs under.
    #[must_use]
    pub fn options(&self) -> &ServingOptions {
        &self.opts
    }
}

/// Dispatch weight of one request: the tokens it will occupy a slot for.
fn cost(req: &ServingRequest) -> usize {
    req.prompt.len() + req.max_new_tokens
}

/// Folds one replica's outcome into the fleet accumulators, re-indexing
/// from share-local to submission order.
#[allow(clippy::too_many_arguments)] // private: the serve loop's accumulators.
fn merge_outcome(
    share: &[usize],
    outcome: ServingOutcome,
    outputs: &mut [Vec<usize>],
    stats: &mut [Option<RequestStats>],
    shed: &mut Vec<ServeError>,
    recovery: &mut RecoveryStats,
    decode_steps: &mut usize,
    occupancy_sum: &mut usize,
    peak_batch: &mut usize,
    total_generated: &mut usize,
    preemptions: &mut usize,
) {
    let mut shed_local = vec![false; share.len()];
    for e in outcome.shed {
        let ServeError::Overloaded { index, reason } = e else {
            unreachable!("shed entries are always Overloaded");
        };
        shed_local[index] = true;
        shed.push(ServeError::Overloaded { index: share[index], reason });
    }
    // The replica's report lists stats for its non-shed requests in
    // share order; walk both in lockstep.
    let mut it = outcome.report.requests.iter();
    for (local, &global) in share.iter().enumerate() {
        if shed_local[local] {
            continue;
        }
        let Some(&s) = it.next() else {
            unreachable!("replica report is missing a non-shed request");
        };
        stats[global] = Some(s);
    }
    for (local, out) in outcome.outputs.into_iter().enumerate() {
        outputs[share[local]] = out;
    }
    recovery.absorb(&outcome.report.recovery);
    *decode_steps += outcome.report.decode_steps;
    let occ = outcome.report.mean_decode_batch * outcome.report.decode_steps as f64;
    *occupancy_sum += occ.round() as usize;
    *peak_batch = (*peak_batch).max(outcome.report.peak_decode_batch);
    *total_generated += outcome.total_generated;
    *preemptions += outcome.preemptions;
}

/// Maps a share-local [`ServeError`] index back to submission order.
fn reindex(err: ServeError, share: &[usize]) -> ServeError {
    match err {
        ServeError::EmptyPrompt { index } => ServeError::EmptyPrompt { index: share[index] },
        ServeError::PromptTooLong { index, needed, max_seq } => {
            ServeError::PromptTooLong { index: share[index], needed, max_seq }
        }
        ServeError::KvBudgetExceeded { index, needed, budget } => {
            ServeError::KvBudgetExceeded { index: share[index], needed, budget }
        }
        ServeError::Overloaded { index, reason } => {
            ServeError::Overloaded { index: share[index], reason }
        }
        other => other,
    }
}
