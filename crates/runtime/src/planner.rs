//! Analytic execution planner: choose [`ExecMode`] and chunk count per
//! (layout, phase, dtype) instead of hard-wiring a global default.
//!
//! The paper's core thesis is that an analytical model should pick the
//! partitioning strategy (Section 3); this module applies the same thesis
//! to the runtime's *own* execution choice. For each inference phase the
//! planner:
//!
//! 1. asks `esti-core` for the [`OverlapSite`]s of the symbolic schedule —
//!    per pipelined collective, the A.1 wire bytes, the chunkable extent,
//!    and the FLOPs of the einsums the runtime fuses into the loop;
//! 2. converts bytes and FLOPs to seconds with a [`Calibration`] — either
//!    the hardware-ideal constants of a [`ChipSpec`], or (the default) a
//!    cached **one-shot on-line probe** that measures what this host
//!    actually delivers: transport seconds/byte, matmul seconds/FLOP,
//!    per-chunk launch+fold overhead, and how much of the analytic overlap
//!    the real pipeline realizes;
//! 3. costs every candidate chunk count with `esti-netsim`'s closed-form
//!    pipeline model ([`chunked_pipeline_time`] / [`chunked_blocked_time`])
//!    and picks the cheapest, with hysteresis toward
//!    [`ExecMode::Monolithic`] so marginal predicted wins never risk a
//!    real-world regression.
//!
//! Correctness never depends on the choice: every mode runs the same
//! looped code path and produces bit-identical results (see
//! `crate::overlap`), so a mis-calibrated probe can only cost time. The
//! full decision — every candidate's predicted time, blocked time, and
//! hidden-comm fraction — is recorded in the [`ExecPlan`] ledger and
//! rendered by [`crate::introspect::plan_ledger_json`] for audit.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use esti_collectives::{CollectiveOp, CommGroup};
use esti_core::layout::Layout;
use esti_core::perf::Phase;
use esti_core::schedule::{build_schedule, effective_chunks, OverlapSite};
use esti_hal::{ChipSpec, DType, Seconds};
use esti_model::ModelConfig;
use esti_netsim::{chunked_blocked_time, chunked_pipeline_time};
use esti_tensor::pool::{with_worker_pool, ChipPool};
use esti_tensor::{ops, Tensor};

use crate::engine::ExecMode;

/// Chunk-count targets the planner considers (1 = monolithic). Matches the
/// published chunk-size sweep in `BENCH_runtime.json`.
pub const CANDIDATE_CHUNKS: [usize; 5] = [1, 2, 4, 8, 16];

/// Relative predicted win an overlapped candidate must show over the
/// monolithic schedule before the planner leaves [`ExecMode::Monolithic`]:
/// within this band the model's error bars dwarf the benefit, and
/// monolithic is the regression-proof choice.
pub const HYSTERESIS: f64 = 0.03;

/// Probe microbenchmark shape: one fused partial-matmul + all-reduce of
/// `[PROBE_ROWS, PROBE_INNER] × [PROBE_INNER, PROBE_COLS]`, sized like the
/// benchmark model's decode-step block epilogue.
const PROBE_ROWS: usize = 64;
const PROBE_INNER: usize = 64;
const PROBE_COLS: usize = 256;
/// Repetitions per probe round (each round's timing is the mean over
/// these).
const PROBE_REPS: usize = 8;
/// Rounds per probed quantity; the reported value is the *minimum* round —
/// the stable estimator for timings whose noise is purely additive
/// (scheduler preemption only ever adds wall or blocked time).
const PROBE_ROUNDS: usize = 5;

/// Host cost constants the planner feeds the `esti-netsim` pipeline
/// formulas. Obtain via [`Calibration::probed`] (measured once per group
/// size, cached process-wide) or [`Calibration::ideal`] (a [`ChipSpec`]'s
/// datasheet numbers, for analytic what-if planning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Transport seconds per Appendix-A.1 wire byte of a collective.
    pub sec_per_byte: f64,
    /// Matmul seconds per FLOP on one chip's executor.
    pub sec_per_flop: f64,
    /// Per-chunk launch + fold overhead in seconds — the `k · overhead`
    /// term that makes over-chunking lose.
    pub chunk_overhead: Seconds,
    /// Fraction of fused-einsum time the pipeline actually removes from
    /// the wall clock (1 = the ideal dataflow overlap; 0 = chunks fully
    /// serialize, as on a one-core host where every "parallel" leg shares
    /// one executor).
    pub overlap_efficiency: f64,
    /// Fraction of fused-einsum time that hides *blocked transport* as
    /// seen by the collective-time ledger — the constant behind the
    /// planner's predicted hidden-comm fraction.
    pub hidden_efficiency: f64,
}

/// Probe cache keyed by (group size, intra-chip workers): the kernel
/// throughput a probe observes depends on how many worker threads each
/// simulated chip drives, so worker counts calibrate independently.
static PROBES: OnceLock<Mutex<HashMap<(usize, usize), Calibration>>> = OnceLock::new();

impl Calibration {
    /// Datasheet constants of `chip`: ideal bandwidth and peak FLOPs, no
    /// launch overhead, perfect overlap. What the analytic model predicts
    /// for real accelerator hardware; useful as a reference point against
    /// the probed host constants.
    #[must_use]
    pub fn ideal(chip: &ChipSpec) -> Calibration {
        Calibration {
            sec_per_byte: 1.0 / chip.axis_bandwidth(1),
            sec_per_flop: 1.0 / chip.peak_flops,
            chunk_overhead: 0.0,
            overlap_efficiency: 1.0,
            hidden_efficiency: 1.0,
        }
    }

    /// The conservative fallback when a probe cannot run: transport at
    /// datasheet rate but zero realized overlap, which steers every
    /// decision to [`ExecMode::Monolithic`] — the mode that can never
    /// regress against itself.
    #[must_use]
    pub fn serial(chip: &ChipSpec) -> Calibration {
        Calibration {
            overlap_efficiency: 0.0,
            hidden_efficiency: 0.0,
            ..Calibration::ideal(chip)
        }
    }

    /// Measured constants for collectives over `group` simulated chips on
    /// this host, probed once per process per group size and cached. The
    /// probe runs a few repetitions of the same fused all-reduce loop the
    /// engine executes (monolithic, over-chunked, and pipelined) on a
    /// throwaway [`CommGroup`] and fits the model constants to what it
    /// observes — a one-shot on-line calibration, not a continuous
    /// profiler.
    #[must_use]
    pub fn probed(group: usize) -> Calibration {
        Calibration::probed_with_workers(group, 1)
    }

    /// [`Calibration::probed`] with each probe member driving `workers`
    /// intra-chip kernel threads (see
    /// [`crate::PartitionedEngine::set_intra_chip_threads`]): the probe
    /// installs the same per-chip worker pool the engine would, so the
    /// fitted `sec_per_flop` reflects the banded kernel's real throughput.
    /// Cached per (group, workers) pair.
    #[must_use]
    pub fn probed_with_workers(group: usize, workers: usize) -> Calibration {
        let workers = workers.max(1);
        let cache = PROBES.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(c) =
            cache.lock().unwrap_or_else(PoisonError::into_inner).get(&(group, workers))
        {
            return *c;
        }
        let cal =
            measure(group, workers).unwrap_or_else(|| Calibration::serial(&ChipSpec::tpu_v4()));
        cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((group, workers), cal);
        cal
    }
}

/// The fused partial-matmul + all-reduce loop of `crate::overlap`'s
/// `looped_ar_cols`, reproduced on a probe group: compute chunk `ci` of
/// `x × w` while chunk `ci-1` is in flight, folding collected partials in
/// place. `chunks = 1` is the monolithic schedule — the same single code
/// path the engine runs.
fn probe_ar_loop(g: &CommGroup, x: &Tensor, w: &Tensor, chunks: usize) -> Tensor {
    let rows = x.dim(0);
    let n_out = w.dim(1);
    let step = n_out / chunks;
    let mut ex = g.begin_chunked(
        CollectiveOp::AllReduce,
        &[rows, n_out],
        [1, 1],
        chunks,
        rows * n_out * 2,
    );
    let mut out = Tensor::zeros(vec![rows, n_out]);
    let fold = |parts: &[Tensor], ci: usize, out: &mut Tensor| {
        for (r, p) in parts.iter().enumerate() {
            if r == 0 {
                ops::copy_cols(p, 0, step, out, ci * step);
            } else {
                ops::add_cols(p, 0, step, out, ci * step);
            }
        }
    };
    ex.post(ops::matmul_cols(x, w, 0, step));
    for ci in 1..chunks {
        let next = ops::matmul_cols(x, w, ci * step, step);
        fold(&ex.collect(), ci - 1, &mut out);
        ex.post(next);
    }
    fold(&ex.collect(), chunks - 1, &mut out);
    out
}

/// Mean seconds per repetition of `f`, minimized over [`PROBE_ROUNDS`].
fn time_reps(mut f: impl FnMut()) -> Seconds {
    let mut best = f64::INFINITY;
    for _ in 0..PROBE_ROUNDS {
        let t0 = Instant::now();
        for _ in 0..PROBE_REPS {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / PROBE_REPS as f64);
    }
    best
}

/// Blocked all-reduce seconds per repetition accumulated on `g` since the
/// last reset.
fn blocked_per_rep(g: &CommGroup) -> Seconds {
    g.times().nanos(CollectiveOp::AllReduce) as f64 * 1e-9 / PROBE_REPS as f64
}

/// Wall and blocked seconds per repetition of the fused probe loop at
/// `chunks`, each minimized independently over [`PROBE_ROUNDS`].
fn best_loop(g: &CommGroup, x: &Tensor, w: &Tensor, chunks: usize) -> (Seconds, Seconds) {
    let (mut wall, mut blocked) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PROBE_ROUNDS {
        g.reset_times();
        let t0 = Instant::now();
        for _ in 0..PROBE_REPS {
            let _ = probe_ar_loop(g, x, w, chunks);
        }
        wall = wall.min(t0.elapsed().as_secs_f64() / PROBE_REPS as f64);
        blocked = blocked.min(blocked_per_rep(g));
    }
    (wall, blocked)
}

/// Runs the probe on every member of a fresh group, each rank driving
/// `workers` intra-chip kernel threads; rank 0 reports.
fn measure(group: usize, workers: usize) -> Option<Calibration> {
    let members = CommGroup::create(group);
    let results: Vec<Option<Calibration>> = std::thread::scope(|s| {
        let handles: Vec<_> = members
            .into_iter()
            .enumerate()
            .map(|(rank, g)| {
                let pool = (workers > 1).then(|| Arc::new(ChipPool::new(workers)));
                s.spawn(move || with_worker_pool(pool, || run_probe(rank, &g)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().ok().flatten()).collect()
    });
    results.into_iter().flatten().next()
}

/// One member's probe body. All members run the same collective sequence
/// (they must, to keep the group in lockstep); rank 0 measures and returns
/// the fitted constants.
fn run_probe(rank: usize, g: &CommGroup) -> Option<Calibration> {
    let x = Tensor::ones(vec![PROBE_ROWS, PROBE_INNER]);
    let w = Tensor::ones(vec![PROBE_INNER, PROBE_COLS]);
    let y = ops::matmul(&x, &w);
    // Warm up allocators, barriers and caches.
    let _ = probe_ar_loop(g, &x, &w, 1);
    let _ = g.all_reduce(&y);

    // Pure transport, monolithic: one A.1-convention all-reduce.
    g.reset_times();
    let t_comm = time_reps(|| {
        let _ = g.all_reduce(&y);
    });
    // Pure transport, over-chunked: the extra cost over monolithic is
    // per-chunk launch overhead (7 additional launches at k = 8).
    let t_comm8 = time_reps(|| {
        let _ = g.all_reduce_chunked(&y, 1, 8);
    });
    // Pure compute: the fused einsum at full size, single-threaded.
    let t_comp = time_reps(|| {
        let _ = ops::matmul(&x, &w);
    });

    // The engine's actual pipelined loop at k = 4, wall clock and blocked
    // transport (the collective-time ledger's view).
    let (t_mono_loop, blocked_mono) = best_loop(g, &x, &w, 1);
    let (t_fused, blocked_fused) = best_loop(g, &x, &w, 4);

    if rank != 0 {
        return None;
    }
    let a1_bytes = (PROBE_ROWS * PROBE_COLS * 4) as f64; // all-reduce: both phases, 2 B/elem
    let flops = 2.0 * (PROBE_ROWS * PROBE_INNER * PROBE_COLS) as f64;
    // Per-chunk overhead, preferring the engine-path estimate: the extra
    // *blocked* transport each added chunk of the fused loop costs (three
    // added chunks at k = 4), which includes the fold-and-relaunch skew
    // the engine actually pays at every barrier. The comm-only estimate
    // (seven added launches at k = 8, wall clock) is the fallback when
    // loop noise swallows the blocked delta.
    let chunk_overhead =
        ((blocked_fused - blocked_mono) / 3.0).max((t_comm8 - t_comm) / 7.0).max(0.0);
    // Fit the realized-overlap fractions so the closed-form model
    // reproduces the measured k = 4 loop. Monotone in eta, so bisection.
    let overlap_efficiency = fit_eta(t_fused.min(t_mono_loop), |eta| {
        predicted_time(t_comm, t_comp, 4, chunk_overhead, eta)
    });
    let hidden_efficiency = fit_eta(blocked_fused.min(blocked_mono), |eta| {
        chunked_blocked_time(t_comm, eta * t_comp, 4, chunk_overhead)
    });
    Some(Calibration {
        sec_per_byte: (t_comm / a1_bytes).max(0.0),
        sec_per_flop: (t_comp / flops).max(f64::MIN_POSITIVE),
        chunk_overhead,
        overlap_efficiency,
        hidden_efficiency,
    })
}

/// Wall-clock model of one fused loop: the overlappable fraction `eta` of
/// the compute pipelines with the transport, the rest serializes behind it.
fn predicted_time(
    t_comm: Seconds,
    t_comp: Seconds,
    chunks: usize,
    overhead: Seconds,
    eta: f64,
) -> Seconds {
    chunked_pipeline_time(t_comm, eta * t_comp, chunks, overhead) + (1.0 - eta) * t_comp
}

/// Largest `eta` in `[0, 1]` with `model(eta) >= target` (model monotone
/// non-increasing in `eta`): the realized fraction of the ideal overlap.
fn fit_eta(target: Seconds, model: impl Fn(f64) -> Seconds) -> f64 {
    if target >= model(0.0) {
        return 0.0;
    }
    if target <= model(1.0) {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if model(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Predicted cost of running one phase with one candidate chunk target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateCost {
    /// The chunk-count target (1 = monolithic). Each site actually uses
    /// [`effective_chunks`] of its own extent.
    pub chunks: usize,
    /// Predicted wall-clock microseconds of the phase's overlappable
    /// sites (non-overlappable work is identical across candidates and
    /// excluded).
    pub predicted_us: f64,
    /// Predicted microseconds the executor blocks on transport — what the
    /// collective-time ledger would report.
    pub blocked_us: f64,
    /// Predicted hidden-communication fraction relative to the monolithic
    /// schedule: `1 − blocked(k)/blocked(1)`. Negative when the per-chunk
    /// overhead is predicted to *add* more blocked time than the pipeline
    /// hides (the serialized-host regime this planner exists to avoid) —
    /// kept unclamped so the benchmark's measured fraction has an honest
    /// analytic counterpart on both sides of zero.
    pub hidden_fraction: f64,
}

/// One planning decision: the chosen mode for a (phase, batch, tokens)
/// forward shape, with every candidate's predicted cost for audit.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// Inference phase the decision covers.
    pub phase: Phase,
    /// Global batch size of the planned forward.
    pub batch: usize,
    /// Tokens per sequence of the planned forward (1 for decode).
    pub tokens: usize,
    /// The weight dtype the candidate costs were priced with — recorded so
    /// the ledger can prove the planner priced what the engine executed.
    pub dtype: DType,
    /// The mode the engine runs this shape with.
    pub chosen: ExecMode,
    /// Predicted cost of every candidate in [`CANDIDATE_CHUNKS`] order.
    pub candidates: Vec<CandidateCost>,
}

impl PlanDecision {
    /// The candidate row the chosen mode corresponds to.
    #[must_use]
    pub fn chosen_cost(&self) -> Option<&CandidateCost> {
        let want = match self.chosen {
            ExecMode::Monolithic => 1,
            ExecMode::Overlapped { chunks } => chunks,
        };
        self.candidates.iter().find(|c| c.chunks == want)
    }
}

/// The planner's accumulated decision ledger for one engine: one
/// [`PlanDecision`] per distinct forward shape planned so far. Render with
/// [`crate::introspect::plan_ledger_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecPlan {
    /// Decisions in planning order.
    pub decisions: Vec<PlanDecision>,
}

impl ExecPlan {
    /// The decision already made for a forward shape, if any.
    #[must_use]
    pub fn decision_for(&self, phase: Phase, batch: usize, tokens: usize) -> Option<&PlanDecision> {
        self.decisions
            .iter()
            .find(|d| d.phase == phase && d.batch == batch && d.tokens == tokens)
    }
}

/// The analytic execution planner for one (model, layout, weight dtype).
///
/// # Examples
///
/// ```
/// use esti_core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors};
/// use esti_core::perf::Phase;
/// use esti_hal::DType;
/// use esti_model::ModelConfig;
/// use esti_runtime::planner::ExecPlanner;
///
/// let cfg = ModelConfig::tiny();
/// let layout = Layout {
///     mesh: MeshFactors { x: 4, y: 1, z: 1 },
///     ffn: FfnLayout::WeightStationary1D,
///     attn: AttnSharding::Head,
/// };
/// let planner = ExecPlanner::new(&cfg, layout, DType::F32);
/// let decision = planner.decide(Phase::Decode, 8, 1);
/// assert_eq!(decision.candidates.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ExecPlanner {
    cfg: ModelConfig,
    layout: Layout,
    dtype: DType,
    /// Intra-chip kernel workers each simulated chip drives; the probe
    /// calibrates with the same count so predictions match execution.
    workers: usize,
    /// Calibration override; `None` probes per site group size.
    calibration: Option<Calibration>,
}

impl ExecPlanner {
    /// A planner that calibrates itself with the one-shot on-line probe
    /// (per collective-group size, cached process-wide).
    #[must_use]
    pub fn new(cfg: &ModelConfig, layout: Layout, dtype: DType) -> ExecPlanner {
        ExecPlanner { cfg: cfg.clone(), layout, dtype, workers: 1, calibration: None }
    }

    /// The same planner calibrated for `workers` intra-chip kernel threads
    /// per chip (clamped to at least 1). The probe then runs with the same
    /// worker pool installed that the engine's chips would use, so
    /// `sec_per_flop` prices the banded kernel, not the serial one.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ExecPlanner {
        self.workers = workers.max(1);
        self
    }

    /// A planner with fixed cost constants — no probe. Pass
    /// [`Calibration::ideal`] for datasheet what-if planning or a custom
    /// calibration in tests.
    #[must_use]
    pub fn with_calibration(
        cfg: &ModelConfig,
        layout: Layout,
        dtype: DType,
        calibration: Calibration,
    ) -> ExecPlanner {
        ExecPlanner { cfg: cfg.clone(), layout, dtype, workers: 1, calibration: Some(calibration) }
    }

    fn calibration_for(&self, group: usize) -> Calibration {
        self.calibration
            .unwrap_or_else(|| Calibration::probed_with_workers(group, self.workers))
    }

    /// The overlappable collectives of one phase's schedule, with layer
    /// multiplicity applied by the caller via [`OverlapSite::per_layer`].
    fn sites(&self, batch: usize, tokens: usize) -> Vec<OverlapSite> {
        build_schedule(&self.cfg, &self.layout, batch, tokens)
            .map(|s| s.with_weight_dtype(self.dtype).overlap_sites())
            .unwrap_or_default()
    }

    /// Plans one forward shape: costs every candidate chunk target over
    /// the phase's overlap sites and picks the cheapest, requiring an
    /// overlapped candidate to beat monolithic by [`HYSTERESIS`] before
    /// leaving the regression-proof default. A schedule with no
    /// overlappable sites (or that fails to build) plans monolithic.
    #[must_use]
    pub fn decide(&self, phase: Phase, batch: usize, tokens: usize) -> PlanDecision {
        let sites = self.sites(batch, tokens);
        let layers = self.cfg.n_layers as f64;
        let candidates: Vec<CandidateCost> = CANDIDATE_CHUNKS
            .iter()
            .map(|&want| {
                let (mut time, mut blocked, mut blocked_mono) = (0.0, 0.0, 0.0);
                for site in &sites {
                    let cal = self.calibration_for(site.group);
                    let mult = if site.per_layer { layers } else { 1.0 };
                    let k = effective_chunks(site.extent, want);
                    let t_comm = site.bytes * cal.sec_per_byte;
                    let t_comp = site.fused_flops * cal.sec_per_flop;
                    time += mult
                        * predicted_time(
                            t_comm,
                            t_comp,
                            k,
                            cal.chunk_overhead,
                            cal.overlap_efficiency,
                        );
                    blocked += mult
                        * chunked_blocked_time(
                            t_comm,
                            cal.hidden_efficiency * t_comp,
                            k,
                            cal.chunk_overhead,
                        );
                    blocked_mono += mult
                        * chunked_blocked_time(
                            t_comm,
                            cal.hidden_efficiency * t_comp,
                            1,
                            cal.chunk_overhead,
                        );
                }
                let hidden =
                    if blocked_mono > 0.0 { 1.0 - blocked / blocked_mono } else { 0.0 };
                CandidateCost {
                    chunks: want,
                    predicted_us: time * 1e6,
                    blocked_us: blocked * 1e6,
                    hidden_fraction: hidden,
                }
            })
            .collect();
        let chosen = choose(&candidates);
        PlanDecision { phase, batch, tokens, dtype: self.dtype, chosen, candidates }
    }
}

/// Cheapest candidate, with hysteresis toward monolithic: overlapped wins
/// only on a predicted saving above [`HYSTERESIS`] of the monolithic time.
fn choose(candidates: &[CandidateCost]) -> ExecMode {
    let Some(mono) = candidates.iter().find(|c| c.chunks == 1) else {
        return ExecMode::Monolithic;
    };
    let mut best = mono;
    for c in candidates {
        if c.predicted_us < best.predicted_us {
            best = c;
        }
    }
    if best.chunks > 1 && best.predicted_us < (1.0 - HYSTERESIS) * mono.predicted_us {
        ExecMode::Overlapped { chunks: best.chunks }
    } else {
        ExecMode::Monolithic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors};

    fn layout_1d(n: usize) -> Layout {
        Layout {
            mesh: MeshFactors { x: n, y: 1, z: 1 },
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
        }
    }

    #[test]
    fn serial_calibration_plans_monolithic() {
        let cfg = ModelConfig::tiny();
        let planner = ExecPlanner::with_calibration(
            &cfg,
            layout_1d(4),
            DType::F32,
            Calibration::serial(&ChipSpec::tpu_v4()),
        );
        let d = planner.decide(Phase::Decode, 8, 1);
        assert_eq!(d.chosen, ExecMode::Monolithic);
        // Zero realized overlap: no candidate predicts hidden transport.
        for c in &d.candidates {
            assert!(c.hidden_fraction <= f64::EPSILON, "k={}: {}", c.chunks, c.hidden_fraction);
        }
    }

    #[test]
    fn balanced_calibration_overlaps_when_overlap_is_free() {
        // Comm and compute of the same magnitude, zero per-chunk overhead,
        // perfect overlap: pipelining hides ~min(c, p) of every site. (The
        // datasheet-`ideal` calibration on the tiny config is comm-bound by
        // ~400x, so its best possible win is under the hysteresis band —
        // the planner correctly stays monolithic there.)
        let cfg = ModelConfig::tiny();
        let cal = Calibration {
            sec_per_flop: 1e-12,
            ..Calibration::ideal(&ChipSpec::tpu_v4())
        };
        let planner = ExecPlanner::with_calibration(&cfg, layout_1d(4), DType::F32, cal);
        let d = planner.decide(Phase::Decode, 8, 1);
        // With zero overhead and perfect overlap, pipelining strictly
        // dominates: the planner must leave monolithic.
        assert!(matches!(d.chosen, ExecMode::Overlapped { chunks } if chunks > 1), "{d:?}");
        let chosen = d.chosen_cost().expect("chosen row present");
        assert!(chosen.hidden_fraction > 0.0);
        // Candidate list covers the published sweep, monotone in k.
        assert_eq!(
            d.candidates.iter().map(|c| c.chunks).collect::<Vec<_>>(),
            CANDIDATE_CHUNKS.to_vec()
        );
    }

    #[test]
    fn probe_caches_and_is_sane() {
        let a = Calibration::probed(2);
        let b = Calibration::probed(2);
        assert_eq!(a, b, "second call must hit the cache");
        assert!(a.sec_per_byte >= 0.0);
        assert!(a.sec_per_flop > 0.0);
        assert!(a.chunk_overhead >= 0.0);
        assert!((0.0..=1.0).contains(&a.overlap_efficiency));
        assert!((0.0..=1.0).contains(&a.hidden_efficiency));
    }

    #[test]
    fn fit_eta_is_inverse_of_the_model() {
        let model = |eta: f64| predicted_time(1e-3, 1e-3, 4, 1e-5, eta);
        for eta in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let fitted = fit_eta(model(eta), model);
            assert!(
                (fitted - eta).abs() < 1e-6 || model(fitted) >= model(eta) - 1e-12,
                "eta {eta} fitted {fitted}"
            );
        }
    }

    #[test]
    fn hysteresis_requires_a_real_win() {
        // A calibration where pipelining wins by a hair (< 3%): overhead
        // eats almost all of the overlap.
        let cfg = ModelConfig::tiny();
        let cal = Calibration {
            sec_per_byte: 1e-9,
            sec_per_flop: 1e-12,
            chunk_overhead: 0.0,
            overlap_efficiency: 0.02,
            hidden_efficiency: 0.02,
        };
        let planner = ExecPlanner::with_calibration(&cfg, layout_1d(4), DType::F32, cal);
        let d = planner.decide(Phase::Decode, 8, 1);
        assert_eq!(d.chosen, ExecMode::Monolithic, "{d:?}");
    }
}
