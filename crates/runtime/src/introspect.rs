//! Machine-readable descriptions of the runtime's execution conventions,
//! exported for the static analyzer.
//!
//! `esti-verify`'s quant-dataflow pass checks schedules against what the
//! overlapped executor *actually does* with quantized weight streams — which
//! matrices gather along which dimension, and where each stream applies its
//! per-column scales. Encoding those conventions here, next to the code
//! that implements them (the overlap module's `looped_wg_cols` /
//! `looped_wg_rows` and the engine's monolithic `gather_layer`), keeps the
//! analyzer and the runtime from drifting apart silently: a new weight
//! stream must be added to this table to be verified, and the quant pass
//! rejects schedules whose streams it cannot find.

use esti_core::perf::Phase;
use esti_core::schedule::WireFormat;
use esti_hal::DType;

use crate::engine::{ExecMode, PartitionedEngine};
use crate::planner::ExecPlan;
use crate::shard::WeightFormat;

/// Where a quantized stream applies its per-column scales.
///
/// Section 3.6 keeps weights quantized on the wire; the f32 scales must be
/// applied exactly once per output column. The two safe disciplines differ
/// by gather dimension:
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDiscipline {
    /// Column-gathered streams (`dim == 1`): every arriving slice owns its
    /// output columns outright, so its scales are applied on arrival
    /// (`matmul_into_cols`), once per column — chunk count does not matter.
    PerSlice,
    /// Row-gathered streams (`dim == 0`): slices contribute *partial sums*
    /// to every output column, so per-slice scaling would apply a column's
    /// scale once per chunk. The runtime accumulates unscaled integer
    /// partials and applies each rank's scales exactly once after the fold
    /// (`apply_scales` before `sum_ranks`).
    AfterFold,
}

/// One weight all-gather stream of the weight-gathered dataflow.
#[derive(Clone, Copy, Debug)]
pub struct WgStream {
    /// Schedule step label (`esti-core`'s weight all-gather labels).
    pub label: &'static str,
    /// Gather dimension of the stored shard (0 = rows, 1 = columns).
    pub dim: usize,
    /// Scale discipline the executor uses for this stream when quantized.
    pub discipline: ScaleDiscipline,
}

/// The weight streams the weight-gathered executor moves per layer, with
/// the gather dimension and scale discipline each uses.
///
/// Must stay in lockstep with `looped_wg_cols`/`looped_wg_rows` (chunked)
/// and `gather_layer` (monolithic): `wq`/`wk`/`wv`/`w_in`/`w_gate` are
/// column-sharded and gather along dim 1; `wo`/`w_out` are row-sharded and
/// gather along dim 0.
#[must_use]
pub fn wg_stream_plan() -> [WgStream; 7] {
    use ScaleDiscipline::{AfterFold, PerSlice};
    [
        WgStream { label: "wq weight all-gather", dim: 1, discipline: PerSlice },
        WgStream { label: "wk weight all-gather", dim: 1, discipline: PerSlice },
        WgStream { label: "wv weight all-gather", dim: 1, discipline: PerSlice },
        WgStream { label: "wo weight all-gather", dim: 0, discipline: AfterFold },
        WgStream { label: "w_in weight all-gather", dim: 1, discipline: PerSlice },
        WgStream { label: "w_gate weight all-gather", dim: 1, discipline: PerSlice },
        WgStream { label: "w_out weight all-gather", dim: 0, discipline: AfterFold },
    ]
}

/// The wire format the engine's weight gathers use for a storage format:
/// int8 weights move quantized (values + per-column scales); every other
/// format gathers dense tensors.
#[must_use]
pub fn weight_wire_format(fmt: WeightFormat) -> WireFormat {
    match fmt {
        WeightFormat::Int8 => WireFormat::Int8,
        WeightFormat::Exact | WeightFormat::Bf16 => WireFormat::Dense,
    }
}

/// Renders an engine's planner decision ledger as JSON, one object per
/// planned forward shape with every candidate's predicted cost — the
/// auditable record of *why* the engine runs the mode it runs. Stable
/// machine-readable keys; append-only like the other conventions here.
///
/// # Examples
///
/// ```
/// use esti_core::planner::decode_layout;
/// use esti_core::Machine;
/// use esti_model::{ModelConfig, ReferenceModel};
/// use esti_runtime::{plan_ledger_json, PartitionedEngine, WeightFormat};
///
/// let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
/// let machine = Machine::tpu_v4_slice(4).unwrap();
/// let layout = decode_layout(model.config(), &machine);
/// let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
/// let _ = engine.prefill(&[vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]]);
/// let json = plan_ledger_json(engine.exec_plan());
/// assert!(json.contains("\"phase\": \"prefill\""));
/// ```
#[must_use]
pub fn plan_ledger_json(plan: &ExecPlan) -> String {
    let mut out = String::from("[\n");
    for (i, d) in plan.decisions.iter().enumerate() {
        let phase = match d.phase {
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
        };
        let (mode, chunks) = match d.chosen {
            ExecMode::Monolithic => ("monolithic", 1),
            ExecMode::Overlapped { chunks } => ("overlapped", chunks),
        };
        let dtype = match d.dtype {
            DType::F32 => "f32",
            DType::Bf16 => "bf16",
            DType::Int8 => "int8",
        };
        out.push_str(&format!(
            "  {{\"phase\": \"{phase}\", \"batch\": {}, \"tokens\": {}, \
             \"dtype\": \"{dtype}\", \
             \"chosen\": {{\"mode\": \"{mode}\", \"chunks\": {chunks}}}, \"candidates\": [",
            d.batch, d.tokens
        ));
        for (j, c) in d.candidates.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"chunks\": {}, \"predicted_us\": {:.3}, \"blocked_us\": {:.3}, \
                 \"hidden_fraction\": {:.4}}}",
                c.chunks, c.predicted_us, c.blocked_us, c.hidden_fraction
            ));
        }
        out.push_str("]}");
        if i + 1 < plan.decisions.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// One JSON object describing the engine's KV cache backend and, for a
/// paged backend, the busiest chip shard's page pool: allocation
/// high-water mark, live/free split, and how many live pages are mapped
/// by more than one slot (copy-on-write prompt sharing).
///
/// # Examples
///
/// ```
/// use esti_core::planner::decode_layout;
/// use esti_core::Machine;
/// use esti_model::{ModelConfig, ReferenceModel};
/// use esti_runtime::{kv_cache_json, KvBackend, PartitionedEngine, WeightFormat};
///
/// let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
/// let machine = Machine::tpu_v4_slice(4).unwrap();
/// let layout = decode_layout(model.config(), &machine);
/// let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
/// engine.set_kv_backend(KvBackend::Paged { page_size: 8 });
/// assert!(kv_cache_json(&engine).contains("\"backend\": \"paged\""));
/// ```
#[must_use]
pub fn kv_cache_json(engine: &PartitionedEngine) -> String {
    match engine.kv_page_stats() {
        Some(s) => format!(
            "{{\"backend\": \"paged\", \"page_size\": {}, \"pages_allocated\": {}, \
             \"pages_live\": {}, \"pages_free\": {}, \"pages_shared\": {}}}",
            s.page_size, s.pages_allocated, s.pages_live, s.pages_free, s.pages_shared
        ),
        None => String::from("{\"backend\": \"slab\"}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wg_plan_covers_each_stream_once_with_consistent_discipline() {
        let plan = wg_stream_plan();
        let mut seen = std::collections::HashSet::new();
        for s in plan {
            assert!(seen.insert(s.label), "duplicate stream {}", s.label);
            assert!(s.label.ends_with("weight all-gather"), "{}", s.label);
            // The discipline is forced by the gather dimension (see the
            // ScaleDiscipline docs): columns scale per slice, rows after
            // the fold.
            match s.dim {
                1 => assert_eq!(s.discipline, ScaleDiscipline::PerSlice, "{}", s.label),
                0 => assert_eq!(s.discipline, ScaleDiscipline::AfterFold, "{}", s.label),
                d => panic!("{}: quantized shards are rank-2, got dim {d}", s.label),
            }
        }
    }

    #[test]
    fn plan_ledger_renders_every_decision_and_candidate() {
        use crate::planner::{CandidateCost, PlanDecision};
        let plan = ExecPlan {
            decisions: vec![PlanDecision {
                phase: Phase::Decode,
                batch: 64,
                tokens: 1,
                dtype: DType::Int8,
                chosen: ExecMode::Overlapped { chunks: 4 },
                candidates: vec![
                    CandidateCost {
                        chunks: 1,
                        predicted_us: 100.0,
                        blocked_us: 80.0,
                        hidden_fraction: 0.0,
                    },
                    CandidateCost {
                        chunks: 4,
                        predicted_us: 60.0,
                        blocked_us: 30.0,
                        hidden_fraction: 0.625,
                    },
                ],
            }],
        };
        let json = plan_ledger_json(&plan);
        assert!(json.contains("\"phase\": \"decode\""), "{json}");
        assert!(json.contains("\"dtype\": \"int8\""), "{json}");
        assert!(json.contains("\"mode\": \"overlapped\", \"chunks\": 4"), "{json}");
        assert!(json.contains("\"hidden_fraction\": 0.6250"), "{json}");
        // Two candidate rows rendered.
        assert_eq!(json.matches("\"predicted_us\"").count(), 2, "{json}");
    }

    #[test]
    fn only_int8_is_quantized_on_the_wire() {
        assert_eq!(weight_wire_format(WeightFormat::Int8), WireFormat::Int8);
        assert_eq!(weight_wire_format(WeightFormat::Exact), WireFormat::Dense);
        assert_eq!(weight_wire_format(WeightFormat::Bf16), WireFormat::Dense);
    }
}
