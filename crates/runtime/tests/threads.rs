//! Intra-chip worker threads are a pure throughput knob: the engine's
//! logits — prefill and decode, f32 and int8-on-the-wire — must be
//! **bit-identical** at every thread count, because the banded kernels
//! give each output row band to exactly one worker running the unchanged
//! serial kernel (see `esti_tensor::pool`).

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{ContinuousBatcher, PartitionedEngine, ServingOptions, WeightFormat};
use esti_tensor::Tensor;

fn layouts() -> Vec<Layout> {
    vec![
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, 4, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        },
    ]
}

fn prompts() -> Vec<Vec<usize>> {
    (0..4).map(|b| vec![b + 1, b + 5, b + 9, b + 2]).collect()
}

/// Prefill + two decode steps at a given worker count; returns every
/// logits tensor produced so callers can compare runs bitwise.
fn run_at(model: &ReferenceModel, layout: Layout, fmt: WeightFormat, workers: usize) -> Vec<Tensor> {
    let mut engine = PartitionedEngine::new(model, layout, fmt);
    engine.set_intra_chip_threads(workers);
    assert_eq!(engine.intra_chip_threads(), workers.max(1));
    let tokens = prompts();
    let mut outs = vec![engine.prefill(&tokens)];
    let mut next: Vec<usize> = (0..tokens.len()).map(|b| (b + 1) % model.config().vocab).collect();
    for _ in 0..2 {
        let step = engine.decode_step(&next);
        next = next.iter().map(|&t| (t * 7 + 3) % model.config().vocab).collect();
        outs.push(step);
    }
    outs
}

#[test]
fn thread_count_is_invisible_in_the_logits() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 42);
    for layout in layouts() {
        for fmt in [WeightFormat::Exact, WeightFormat::Int8] {
            let serial = run_at(&model, layout, fmt, 1);
            for workers in [2usize, 3] {
                let threaded = run_at(&model, layout, fmt, workers);
                assert_eq!(serial.len(), threaded.len());
                for (i, (a, b)) in serial.iter().zip(&threaded).enumerate() {
                    assert_eq!(
                        a.data(),
                        b.data(),
                        "{} {fmt:?} workers={workers}: output {i} diverged bitwise",
                        layout.describe()
                    );
                }
            }
        }
    }
}

#[test]
fn serving_thread_knob_is_invisible_in_the_tokens() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let requests: Vec<_> = prompts()
        .into_iter()
        .map(|p| esti_runtime::ServingRequest::immediate(p, 4))
        .collect();
    let serve = |threads: usize| {
        let opts = ServingOptions { intra_chip_threads: threads, ..ServingOptions::default() };
        let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Int8, opts);
        batcher.serve(&requests).outputs
    };
    let baseline = serve(0); // 0 = engine default (ESTI_CHIP_THREADS or 1)
    assert_eq!(baseline, serve(2), "2 intra-chip workers changed served tokens");
    assert_eq!(baseline, serve(4), "4 intra-chip workers changed served tokens");
}
