//! Conformance tests for the analytic execution planner: whatever mode the
//! planner picks for a (layout, phase, dtype), a planner-driven engine
//! must produce **bit-identical** logits to a pinned-monolithic engine —
//! the planner optimizes time, never results — and its decision ledger
//! must stay inside the published candidate set. The probe is
//! host-dependent, so these tests never assert *which* mode wins, only
//! that every reachable choice is safe.

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_core::perf::Phase;
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::planner::CANDIDATE_CHUNKS;
use esti_runtime::{ExecMode, ExecPlan, PartitionedEngine, WeightFormat};
use esti_tensor::Tensor;
use proptest::prelude::*;

/// Every dataflow on four chips, plus the two-chip 1D case — the same
/// surface as the overlapped-executor conformance tests.
fn layouts(attn: AttnSharding) -> Vec<Layout> {
    vec![
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 2, 1) },
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 4, 1) },
        Layout { ffn: FfnLayout::WeightStationary2D, attn, mesh: MeshFactors::new(2, 2, 1) },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
    ]
}

/// Prefill + two decode steps, returning all logits and the final plan.
fn run(
    model: &ReferenceModel,
    layout: Layout,
    fmt: WeightFormat,
    exec: Option<ExecMode>,
    tokens: &[Vec<usize>],
) -> (Vec<Tensor>, ExecPlan) {
    let mut engine = match exec {
        Some(exec) => PartitionedEngine::new_with_exec(model, layout, fmt, exec),
        None => PartitionedEngine::new(model, layout, fmt),
    };
    let mut out = vec![engine.prefill(tokens)];
    let mut next: Vec<usize> = (0..tokens.len()).map(|b| (b + 3) % model.config().vocab).collect();
    for _ in 0..2 {
        out.push(engine.decode_step(&next));
        next = next.iter().map(|&t| (t * 5 + 1) % model.config().vocab).collect();
    }
    (out, engine.exec_plan().clone())
}

fn assert_planned_matches_monolithic(model: &ReferenceModel, layout: Layout, fmt: WeightFormat) {
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 5, b + 9, b + 2]).collect();
    let (mono, _) = run(model, layout, fmt, Some(ExecMode::Monolithic), &tokens);
    let (planned, plan) = run(model, layout, fmt, None, &tokens);
    for (step, (m, p)) in mono.iter().zip(&planned).enumerate() {
        assert_eq!(
            p.max_abs_diff(m),
            0.0,
            "{} {fmt:?} step {step}: planned != monolithic",
            layout.describe()
        );
    }
    // The ledger must cover exactly the two shapes this run planned —
    // prefill at (4, 4) and decode at (4, 1) — each decided once and
    // reused, every chosen mode drawn from the candidate sweep.
    assert_eq!(plan.decisions.len(), 2, "{}: one decision per shape", layout.describe());
    for (phase, tokens) in [(Phase::Prefill, 4), (Phase::Decode, 1)] {
        let d = plan
            .decision_for(phase, 4, tokens)
            .unwrap_or_else(|| panic!("{}: missing {phase:?} decision", layout.describe()));
        assert_eq!(
            d.candidates.iter().map(|c| c.chunks).collect::<Vec<_>>(),
            CANDIDATE_CHUNKS.to_vec(),
            "{}: candidate sweep",
            layout.describe()
        );
        let want = match d.chosen {
            ExecMode::Monolithic => 1,
            ExecMode::Overlapped { chunks } => chunks,
        };
        assert!(
            CANDIDATE_CHUNKS.contains(&want),
            "{}: chosen chunk count {want} outside the sweep",
            layout.describe()
        );
        assert!(d.chosen_cost().is_some(), "{}: chosen row must be costed", layout.describe());
    }
}

proptest! {
    // Each case spins up two engines (thread-per-chip); keep the sample
    // count modest — the space is only 5 layouts x 2 shardings x 3
    // formats, so 24 cases cover most of it every run.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planner-driven execution is bit-identical to monolithic on every
    /// layout x attention sharding x weight format, prefill and decode.
    #[test]
    fn planned_execution_is_bit_identical_to_monolithic(
        layout_ix in 0usize..5,
        batch_attn in prop::sample::select(vec![false, true]),
        fmt in prop::sample::select(vec![
            WeightFormat::Exact,
            WeightFormat::Int8,
            WeightFormat::Bf16,
        ]),
    ) {
        let attn = if batch_attn { AttnSharding::Batch } else { AttnSharding::Head };
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 70);
        let layout = layouts(attn)[layout_ix];
        assert_planned_matches_monolithic(&model, layout, fmt);
    }
}

#[test]
fn planner_decisions_are_cached_per_shape() {
    // Re-running the same decode shape must reuse the decision, not grow
    // the ledger; a new batch size must add exactly one decision.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 71);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 2]).collect();
    let _ = engine.prefill(&tokens);
    for _ in 0..3 {
        let _ = engine.decode_step(&[1, 2, 3, 4]);
    }
    assert_eq!(engine.exec_plan().decisions.len(), 2, "prefill + decode, each planned once");
}

#[test]
fn pinned_engines_do_not_plan() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 72);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut engine = PartitionedEngine::new_with_exec(
        &model,
        layout,
        WeightFormat::Exact,
        ExecMode::Overlapped { chunks: 4 },
    );
    let tokens: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 2]).collect();
    let _ = engine.prefill(&tokens);
    assert_eq!(engine.exec_mode(), ExecMode::Overlapped { chunks: 4 });
    assert!(engine.exec_plan().decisions.is_empty(), "pinned mode bypasses the planner");
}
