//! Conformance tests for the paged KV cache (copy-on-write prefix
//! sharing): backed by pages or slabs, the engine must emit bit-identical
//! token streams — across every decode layout, under randomized ragged
//! shared-prefix workloads, and through mid-decode faults — while paged
//! admission fits strictly more concurrent requests into the same KV
//! position budget on shared-prefix fleets.

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_core::serving::Priority;
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{
    ContinuousBatcher, KvBackend, ServeError, ServingOptions, ServingOutcome, ServingRequest,
    WeightFormat,
};
use esti_tensor::sample::Sampling;
use proptest::prelude::*;

/// Every decode layout shape the runtime implements, on four chips.
fn decode_layouts(attn: AttnSharding) -> Vec<Layout> {
    vec![
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 4, 1) },
        Layout { ffn: FfnLayout::WeightStationary2D, attn, mesh: MeshFactors::new(2, 2, 1) },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xy),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
    ]
}

/// A shared-prefix fleet: every prompt opens with the same `shared`-token
/// prefix (a system prompt) followed by a per-request unique tail.
fn shared_prefix_workload(
    n_req: usize,
    vocab: usize,
    shared: usize,
    unique: usize,
    max_new: usize,
) -> Vec<ServingRequest> {
    let prefix: Vec<usize> = (0..shared).map(|t| (11 + 13 * t) % vocab).collect();
    (0..n_req)
        .map(|i| {
            let mut prompt = prefix.clone();
            prompt.extend((0..unique).map(|t| (3 + 5 * i + 7 * t) % vocab));
            ServingRequest { prompt, max_new_tokens: max_new, seed: 900 + i as u64, arrival: 0.0, priority: Priority::Normal }
        })
        .collect()
}

/// Serve `requests` with an explicit KV backend (and optional position
/// budget) pinned into the scheduler.
fn serve_with(
    model: &ReferenceModel,
    layout: Layout,
    backend: KvBackend,
    budget: Option<usize>,
    cap: usize,
    requests: &[ServingRequest],
) -> ServingOutcome {
    let opts = ServingOptions {
        max_decode_batch: cap,
        sampling: Sampling::Greedy,
        kv_backend: Some(backend),
        kv_position_budget: budget,
        ..ServingOptions::default()
    };
    let mut batcher = ContinuousBatcher::new(model, layout, WeightFormat::Exact, opts);
    batcher.serve(requests)
}

/// The bit-identity check: the same workload served slab-backed and
/// paged-backed (at an awkward page size) must produce identical streams.
fn check_paged_matches_slab(model: &ReferenceModel, layout: Layout, page_size: usize) {
    let requests = shared_prefix_workload(6, model.config().vocab, 9, 3, 5);
    let cap = {
        let probe = ContinuousBatcher::new(
            model,
            layout,
            WeightFormat::Exact,
            ServingOptions::default(),
        );
        probe.decode_engine().min_batch().max(2)
    };
    let slab = serve_with(model, layout, KvBackend::Slab, None, cap, &requests);
    let paged =
        serve_with(model, layout, KvBackend::Paged { page_size }, None, cap, &requests);
    assert_eq!(
        paged.outputs,
        slab.outputs,
        "{} page_size={page_size}: paged streams diverged from slab",
        layout.describe()
    );
    // Sharing happens at page granularity: only prefixes spanning at least
    // one full page can be mapped into more than one block table.
    if page_size <= 9 {
        assert!(paged.report.kv_pages_shared >= 1, "shared prefixes must map shared pages");
    }
    assert_eq!(slab.report.kv_pages_shared, 0, "slab runs report no page sharing");
}

#[test]
fn paged_matches_slab_on_all_layouts_multiquery() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 21);
    for attn in [AttnSharding::Head, AttnSharding::Batch] {
        for layout in decode_layouts(attn) {
            check_paged_matches_slab(&model, layout, 4);
        }
    }
}

#[test]
fn paged_matches_slab_on_all_layouts_multihead() {
    // Batch-sharded attention requires multiquery; multihead covers the
    // head-sharded half of the matrix.
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 22);
    for layout in decode_layouts(AttnSharding::Head) {
        check_paged_matches_slab(&model, layout, 4);
    }
}

#[test]
fn page_size_never_changes_streams() {
    // Page-boundary stress: sizes that divide, straddle, and dwarf every
    // prompt in the workload, all bit-identical to the slab run.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 23);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    for page_size in [1, 2, 3, 8, 64] {
        check_paged_matches_slab(&model, layout, page_size);
    }
}

#[test]
fn mid_decode_fault_replays_paged_state() {
    // A decode-tier crash mid-stream: the rebuilt engine re-admits every
    // live request through the shared-prefix path (block tables and
    // copy-on-write state rebuilt from scratch) and must still recover
    // bit-identical streams.
    use esti_collectives::FaultPlan;
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 24);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let requests = shared_prefix_workload(6, model.config().vocab, 9, 3, 5);
    let opts = ServingOptions {
        max_decode_batch: 4,
        sampling: Sampling::Greedy,
        kv_backend: Some(KvBackend::Paged { page_size: 4 }),
        kv_position_budget: Some(80),
        ..ServingOptions::default()
    };
    let baseline = {
        let mut b = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
        b.serve(&requests)
    };
    assert_eq!(baseline.report.recovery.faults, 0);
    let mut chaotic = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
    chaotic.schedule_decode_fault(2, FaultPlan::new().crash(1, 0));
    let outcome = chaotic.serve(&requests);
    assert_eq!(
        outcome.outputs, baseline.outputs,
        "recovered paged streams diverged from the fault-free run"
    );
    assert_eq!(outcome.report.recovery.faults, 1);
    assert!(outcome.report.recovery.requests_replayed >= 1);
    assert!(outcome.report.kv_pages_shared >= 1, "replay must re-share prefix pages");
}

#[test]
fn paged_fits_over_twice_the_concurrency_at_equal_kv_budget() {
    // The headline capacity claim, in miniature. 16 requests share a
    // 48-token prefix (6 eight-token pages) with 8 unique prompt tokens
    // and 8 generated; each needs 64 positions at worst case. Budget: 256
    // positions. Slab pre-charges 64 per slot -> 4 concurrent. Paged
    // charges the shared pages once -> first request 8 pages, each
    // subsequent 2, so 13 fit in the same 32-page budget.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 25);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let requests = shared_prefix_workload(16, model.config().vocab, 48, 8, 8);
    let budget = Some(256);
    let slab = serve_with(&model, layout, KvBackend::Slab, budget, 13, &requests);
    let paged =
        serve_with(&model, layout, KvBackend::Paged { page_size: 8 }, budget, 13, &requests);
    assert_eq!(paged.outputs, slab.outputs, "budgeted runs must still stream identically");
    assert_eq!(slab.report.peak_decode_batch, 4, "slab fits budget/reserve slots");
    assert_eq!(paged.report.peak_decode_batch, 13, "paged fits the whole admissible fleet");
    assert!(
        paged.report.peak_decode_batch >= 2 * slab.report.peak_decode_batch,
        "capacity gate: paged {} vs slab {}",
        paged.report.peak_decode_batch,
        slab.report.peak_decode_batch
    );
    assert_eq!(paged.report.kv_pages_shared, 6, "the six shared prefix pages");
    assert_eq!(paged.report.kv_pages_free, 0, "the fleet fills the budget exactly");
}

#[test]
fn oversized_request_is_rejected_not_livelocked() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 26);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let requests = vec![ServingRequest::immediate((0..40).collect(), 8)];
    for backend in [KvBackend::Slab, KvBackend::Paged { page_size: 8 }] {
        let opts = ServingOptions {
            max_decode_batch: 2,
            kv_backend: Some(backend),
            kv_position_budget: Some(16),
            ..ServingOptions::default()
        };
        let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
        match batcher.try_serve(&requests) {
            Err(ServeError::KvBudgetExceeded { index: 0, needed, budget }) => {
                assert!(needed > budget, "{needed} must exceed {budget}");
            }
            other => panic!("{backend:?}: expected KvBudgetExceeded, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized ragged shared-prefix workloads: arbitrary page size,
    /// shared-prefix length (page-aligned or not), ragged unique tails and
    /// generation lengths — paged streams always match slab streams, with
    /// copy-on-write exercised whenever the prefix straddles a page.
    #[test]
    fn cow_streams_match_slab_under_random_ragged_workloads(
        page_size in 1usize..10,
        shared in 0usize..13,
        seed in 0u64..200,
        // Each code packs a (unique-tail length, max_new) pair.
        tail_codes in proptest::collection::vec(0usize..30, 3..7),
    ) {
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 27);
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, 4, 1),
        };
        let vocab = model.config().vocab;
        let prefix: Vec<usize> = (0..shared).map(|t| (5 + 3 * t) % vocab).collect();
        let requests: Vec<ServingRequest> = tail_codes
            .iter()
            .enumerate()
            .map(|(i, &code)| {
                let (unique, max_new) = (1 + code % 6, 2 + code / 6);
                let mut prompt = prefix.clone();
                prompt.extend((0..unique).map(|t| (seed as usize + 2 + 9 * i + t) % vocab));
                ServingRequest {
                    prompt,
                    max_new_tokens: max_new,
                    seed: seed + i as u64,
                    arrival: 0.0,
                    priority: Priority::Normal,
                }
            })
            .collect();
        let slab = serve_with(&model, layout, KvBackend::Slab, None, 3, &requests);
        let paged =
            serve_with(&model, layout, KvBackend::Paged { page_size }, None, 3, &requests);
        prop_assert_eq!(
            paged.outputs,
            slab.outputs,
            "page_size {} shared {} diverged",
            page_size,
            shared
        );
    }
}
