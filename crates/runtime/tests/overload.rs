//! Overload-serving conformance: priority admission, preemption replay,
//! and typed admission-control shedding.
//!
//! The claims under test:
//!
//! * **any** preemption schedule — arbitrary `(step, slot)` evictions
//!   driven through the scheduler's forced-preemption hook — yields token
//!   streams bit-identical to an un-preempted isolated `generate()` run
//!   (preemption re-queues the victim, which replays through the same
//!   machinery fault recovery uses);
//! * admission is priority-first: high-class requests prefill before
//!   lower classes that arrived with them;
//! * `queue_limit` and `ttft_deadline` shed with a typed
//!   [`ServeError::Overloaded`] per victim while the rest of the batch
//!   completes — overload is a per-request outcome, not a run failure.

use esti_core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors};
use esti_core::serving::Priority;
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{
    ContinuousBatcher, GenerateOptions, OverloadShed, PartitionedEngine, ServeError,
    ServingOptions, ServingRequest, WeightFormat,
};
use esti_tensor::sample::Sampling;
use proptest::prelude::*;

fn layout() -> Layout {
    Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    }
}

fn opts(cap: usize) -> ServingOptions {
    ServingOptions {
        max_decode_batch: cap,
        sampling: Sampling::Greedy,
        prefill_chunk: None,
        ..ServingOptions::default()
    }
}

/// A deterministic mixed-priority workload, all arriving at t=0.
fn workload(n_req: usize, vocab: usize) -> Vec<ServingRequest> {
    (0..n_req)
        .map(|i| ServingRequest {
            prompt: (0..2 + i % 4).map(|t| (3 + 5 * i + 7 * t) % vocab).collect(),
            max_new_tokens: 2 + (i * 2) % 5,
            seed: 2000 + i as u64,
            arrival: 0.0,
            priority: Priority::ALL[i % 3],
        })
        .collect()
}

/// Each request's stream when it has the machine to itself.
fn isolated_streams(model: &ReferenceModel, requests: &[ServingRequest]) -> Vec<Vec<usize>> {
    let mut engine = PartitionedEngine::new(model, layout(), WeightFormat::Exact);
    requests
        .iter()
        .map(|req| {
            let gopts = GenerateOptions {
                max_new_tokens: req.max_new_tokens,
                seed: req.seed,
                ..GenerateOptions::default()
            };
            engine.generate(std::slice::from_ref(&req.prompt), &gopts).swap_remove(0)
        })
        .collect()
}

#[test]
fn forced_preemption_replays_to_identical_streams_with_accounting() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(3, model.config().vocab);
    let isolated = isolated_streams(&model, &requests);

    let mut b = ContinuousBatcher::new(&model, layout(), WeightFormat::Exact, opts(2));
    b.schedule_preemptions(&[(1, 0)]);
    let outcome = b.serve(&requests);

    assert_eq!(outcome.outputs, isolated, "preempted streams diverged from isolated runs");
    assert_eq!(outcome.preemptions, 1, "the scheduled eviction must fire");
    assert!(
        outcome.preempted_tokens_replayed >= 1,
        "a victim evicted after a successful step holds tokens to replay"
    );
    assert!(outcome.shed.is_empty(), "no admission control is configured");
}

#[test]
fn priority_classes_prefill_highest_first() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let vocab = model.config().vocab;
    // Submission order low, low, normal, high — all arrive together, so
    // admission order is purely the class order.
    let classes = [Priority::Low, Priority::Low, Priority::Normal, Priority::High];
    let requests: Vec<ServingRequest> = classes
        .iter()
        .enumerate()
        .map(|(i, &priority)| {
            ServingRequest {
                prompt: vec![(1 + i) % vocab, (5 + 2 * i) % vocab],
                max_new_tokens: 3,
                seed: i as u64,
                arrival: 0.0,
                priority,
            }
        })
        .collect();
    let mut b = ContinuousBatcher::new(&model, layout(), WeightFormat::Exact, opts(2));
    let outcome = b.serve(&requests);

    // Prefill is serial, so prefill completion times order the admissions:
    // the high request strictly precedes the normal one, which strictly
    // precedes both lows.
    let at = |i: usize| outcome.report.requests[i].prefilled;
    assert!(at(3) < at(2), "high must prefill before normal: {} vs {}", at(3), at(2));
    assert!(at(2) < at(0) && at(2) < at(1), "normal must prefill before both lows");
    assert_eq!(outcome.outputs, isolated_streams(&model, &requests));
}

#[test]
fn queue_limit_sheds_newest_lowest_class_with_typed_error() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let vocab = model.config().vocab;
    let requests: Vec<ServingRequest> = (0..4)
        .map(|i| ServingRequest {
            prompt: vec![(2 + i) % vocab],
            max_new_tokens: 4,
            seed: i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect();
    let mut o = opts(2);
    o.queue_limit = Some(2);
    let mut b = ContinuousBatcher::new(&model, layout(), WeightFormat::Exact, o);
    let outcome = b.serve(&requests);

    // Boundary 0 sees 4 waiting > limit 2: the two newest are shed (3,
    // then 2), the survivors complete in full.
    assert_eq!(outcome.shed.len(), 2, "exactly two requests over the limit");
    let mut shed_idx: Vec<usize> = outcome
        .shed
        .iter()
        .map(|e| match e {
            ServeError::Overloaded { index, reason: OverloadShed::QueueFull { limit, .. } } => {
                assert_eq!(*limit, 2);
                *index
            }
            other => panic!("expected a QueueFull shed, got {other}"),
        })
        .collect();
    shed_idx.sort_unstable();
    assert_eq!(shed_idx, vec![2, 3], "newest requests shed first");
    assert_eq!(outcome.outputs[0].len(), 4);
    assert_eq!(outcome.outputs[1].len(), 4);
    assert!(outcome.outputs[2].is_empty() && outcome.outputs[3].is_empty());
    // Shed requests contribute no latency stats.
    assert_eq!(outcome.report.requests.len(), 2);
}

#[test]
fn ttft_deadline_sheds_expired_classes_but_not_exempt_ones() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let vocab = model.config().vocab;
    let mk = |i: usize, priority: Priority| ServingRequest {
        prompt: vec![(3 + i) % vocab, (1 + 2 * i) % vocab],
        max_new_tokens: 3,
        seed: 40 + i as u64,
        arrival: 0.0,
        priority,
    };
    let requests =
        vec![mk(0, Priority::Normal), mk(1, Priority::Normal), mk(2, Priority::High)];
    let mut o = opts(2);
    // Normal expires instantly; High has no deadline.
    o.ttft_deadline = [None, Some(0.0), None];
    let mut b = ContinuousBatcher::new(&model, layout(), WeightFormat::Exact, o);
    let outcome = b.serve(&requests);

    assert_eq!(outcome.shed.len(), 2, "both normals out-waited a zero deadline");
    for e in &outcome.shed {
        match e {
            ServeError::Overloaded { index, reason: OverloadShed::TtftDeadline { .. } } => {
                assert!(*index < 2, "only the normal requests expire");
            }
            other => panic!("expected a TtftDeadline shed, got {other}"),
        }
    }
    assert_eq!(outcome.outputs[2].len(), 3, "the exempt high request completes");
    assert_eq!(outcome.outputs[2], isolated_streams(&model, &requests)[2]);
}

#[test]
fn policy_preemption_keeps_streams_identical_and_accounts_replay() {
    // Low requests hold both slots when a high request arrives mid-run.
    // Whether the high arrival lands in time to preempt depends on wall
    // clock, so the assertions hold either way: streams always equal the
    // isolated oracle, and replay accounting is consistent with the
    // preemption count.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let vocab = model.config().vocab;
    let mut requests: Vec<ServingRequest> = (0..2)
        .map(|i| ServingRequest {
            prompt: vec![(7 + i) % vocab, (2 + 3 * i) % vocab],
            max_new_tokens: 40,
            seed: 60 + i as u64,
            arrival: 0.0,
            priority: Priority::Low,
        })
        .collect();
    requests.push(ServingRequest {
        prompt: vec![9 % vocab, 4 % vocab],
        max_new_tokens: 4,
        seed: 62,
        arrival: 0.002,
        priority: Priority::High,
    });
    let mut b = ContinuousBatcher::new(&model, layout(), WeightFormat::Exact, opts(2));
    let outcome = b.serve(&requests);

    assert_eq!(outcome.outputs, isolated_streams(&model, &requests));
    if outcome.preemptions == 0 {
        assert_eq!(outcome.preempted_tokens_replayed, 0);
    } else {
        assert!(
            outcome.preempted_tokens_replayed >= outcome.preemptions,
            "every victim held at least its prefill token plus progress"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any forced preemption schedule — arbitrary (step, slot) pairs,
    /// including repeats, empty slots, and steps past the run — yields
    /// streams bit-identical to the un-preempted isolated generate() runs.
    #[test]
    fn any_preemption_schedule_is_stream_transparent(
        packed_plan in proptest::collection::vec(0usize..12, 0..5),
        seed in 0u64..500,
    ) {
        // The vendored proptest has no tuple strategy; decode each entry
        // into (after_step in 0..6, slot in 0..2).
        let plan: Vec<(usize, usize)> =
            packed_plan.iter().map(|&v| (v / 2, v % 2)).collect();
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 21);
        let vocab = model.config().vocab;
        let requests: Vec<ServingRequest> = (0..4)
            .map(|i| ServingRequest {
                prompt: (0..2 + (i + seed as usize) % 3)
                    .map(|t| (seed as usize + 5 * i + 7 * t) % vocab)
                    .collect(),
                max_new_tokens: 2 + (i * 3 + seed as usize) % 5,
                seed: seed.wrapping_mul(31) + i as u64,
                arrival: 0.0,
                priority: Priority::ALL[(i + seed as usize) % 3],
            })
            .collect();
        let isolated = isolated_streams(&model, &requests);

        let mut b = ContinuousBatcher::new(&model, layout(), WeightFormat::Exact, opts(2));
        b.schedule_preemptions(&plan);
        let outcome = b.serve(&requests);

        prop_assert_eq!(&outcome.outputs, &isolated);
        if outcome.preemptions == 0 {
            prop_assert_eq!(outcome.preempted_tokens_replayed, 0);
        }
    }
}
