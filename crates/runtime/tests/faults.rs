//! Chaos conformance tests: deterministic fault injection against the
//! partitioned engine and the self-healing serving loop.
//!
//! The claims under test, for **every** decode layout the runtime
//! implements:
//!
//! * crashing an arbitrary chip at an arbitrary step recovers to token
//!   streams **bit-identical** to a fault-free run (the recovery replay is
//!   the original computation, by batch-row independence);
//! * a stalled chip surfaces a structured timeout within the collective
//!   deadline — never a hang;
//! * a delayed link is transparent: late, but bit-equal;
//! * the measured recovery accounting matches the analytic
//!   `esti_netsim::crash_recovery_cost` model exactly.

use std::time::{Duration, Instant};

use esti_collectives::FaultPlan;
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_core::serving::Priority;
use esti_model::{ModelConfig, ReferenceModel};
use esti_netsim::{crash_recovery_cost, LiveRequest, RecoveryModel};
use esti_runtime::{
    ContinuousBatcher, EngineError, PartitionedEngine, ServeError, ServingOptions,
    ServingRequest, WeightFormat, DEFAULT_COLLECTIVE_DEADLINE,
};
use esti_tensor::sample::Sampling;
use proptest::prelude::*;

/// Every decode layout shape the runtime implements, on four chips.
fn decode_layouts(attn: AttnSharding) -> Vec<Layout> {
    vec![
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 4, 1) },
        Layout { ffn: FfnLayout::WeightStationary2D, attn, mesh: MeshFactors::new(2, 2, 1) },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xy),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
    ]
}

/// A deterministic variable-length workload (same shape as the fault-free
/// conformance suite in `tests/serving.rs`).
fn workload(n_req: usize, vocab: usize) -> Vec<ServingRequest> {
    (0..n_req)
        .map(|i| ServingRequest {
            prompt: (0..2 + i % 4).map(|t| (3 + 5 * i + 7 * t) % vocab).collect(),
            max_new_tokens: 2 + (i * 2) % 5,
            seed: 1000 + i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect()
}

fn batcher(model: &ReferenceModel, layout: Layout, cap: usize) -> ContinuousBatcher {
    let opts =
        ServingOptions {
        max_decode_batch: cap,
        sampling: Sampling::Greedy,
        prefill_chunk: None,
        ..ServingOptions::default()
    };
    ContinuousBatcher::new(model, layout, WeightFormat::Exact, opts)
}

/// Serve the workload fault-free and with an injected decode-tier fault;
/// the faulted run must recover to bit-identical outputs.
fn check_crash_conformance(model: &ReferenceModel, layout: Layout, plan: FaultPlan, at_step: usize) {
    let cap = 4;
    let requests = workload(cap + 2, model.config().vocab);

    let baseline = batcher(model, layout, cap).serve(&requests);
    assert_eq!(baseline.report.recovery.faults, 0, "baseline must be fault-free");

    let mut chaotic = batcher(model, layout, cap);
    chaotic.schedule_decode_fault(at_step, plan.clone());
    let outcome = chaotic.serve(&requests);

    assert_eq!(
        outcome.outputs,
        baseline.outputs,
        "{} recovered streams diverged (fault {plan:?} at step {at_step})",
        layout.describe()
    );
    let rec = outcome.report.recovery;
    assert_eq!(rec.faults, 1, "{}: exactly one injected fault", layout.describe());
    assert!(rec.requests_replayed >= 1, "a mid-stream crash must replay live requests");
    assert!(rec.prefill_tokens_replayed >= 1, "replay re-prefills prompts");
    assert!(rec.recovery_seconds > 0.0, "recovery time must be accounted");
}

#[test]
fn crash_recovery_is_bit_identical_for_every_decode_layout() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    for attn in [AttnSharding::Head, AttnSharding::Batch] {
        for layout in decode_layouts(attn) {
            // Crash two different ranks at two different decode steps.
            check_crash_conformance(&model, layout, FaultPlan::new().crash(1, 0), 1);
            check_crash_conformance(&model, layout, FaultPlan::new().crash(3, 2), 3);
        }
    }
}

#[test]
fn crash_recovery_is_bit_identical_for_multihead_models() {
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 8);
    for layout in decode_layouts(AttnSharding::Head) {
        check_crash_conformance(&model, layout, FaultPlan::new().crash(2, 1), 2);
    }
}

#[test]
fn stall_recovery_is_bit_identical_with_short_deadline() {
    // A stall longer than the deadline surfaces as a timeout; the batcher
    // rebuilds and replays exactly like for a crash.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let cap = 4;
    let requests = workload(cap + 2, model.config().vocab);
    let baseline = batcher(&model, layout, cap).serve(&requests);

    let mut chaotic = batcher(&model, layout, cap);
    chaotic.set_collective_deadline(Some(Duration::from_millis(100)));
    chaotic.schedule_decode_fault(1, FaultPlan::new().stall(2, 0, Duration::from_secs(10)));
    let t = Instant::now();
    let outcome = chaotic.serve(&requests);
    assert!(
        t.elapsed() < Duration::from_secs(8),
        "the 10s stall must be cut short by the 100ms deadline, not waited out"
    );
    assert_eq!(outcome.outputs, baseline.outputs, "stall-recovered streams diverged");
    assert_eq!(outcome.report.recovery.faults, 1);
}

#[test]
fn stalled_rank_times_out_within_deadline_on_every_layout() {
    // Engine-level bound: with a deadline armed, a stalled chip produces a
    // structured error in bounded wall-clock on every layout — never a
    // hang, never a wait for the full stall.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    for layout in decode_layouts(AttnSharding::Head) {
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        engine.set_collective_deadline(Some(Duration::from_millis(100)));
        engine.inject_faults(FaultPlan::new().stall(0, 0, Duration::from_secs(30)));
        let pad = engine.min_batch();
        let prompts = vec![vec![1usize, 2, 3]; pad];
        let t = Instant::now();
        let res = engine.try_prefill(&prompts);
        let elapsed = t.elapsed();
        assert!(
            matches!(res, Err(EngineError::CollectiveTimeout { .. })),
            "{}: expected a structured timeout, got {res:?}",
            layout.describe()
        );
        assert!(
            elapsed < Duration::from_secs(10),
            "{}: timeout took {elapsed:?}, deadline was 100ms",
            layout.describe()
        );
        // The engine is poisoned: further steps refuse instead of
        // computing on inconsistent caches.
        assert!(engine.is_poisoned());
        assert_eq!(engine.try_prefill(&prompts), Err(EngineError::Poisoned));
    }
}

#[test]
fn engine_crash_names_the_faulted_rank() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    engine.inject_faults(FaultPlan::new().crash(3, 1));
    let res = engine.try_prefill(&[vec![1, 2, 3]]);
    match res {
        Err(EngineError::ChipCrashed { rank, .. }) => {
            assert_eq!(rank, 3, "the error must name the chip that died, not an observer");
        }
        other => panic!("expected ChipCrashed, got {other:?}"),
    }
    assert!(engine.is_poisoned());
}

#[test]
fn delayed_link_is_transparent_to_the_engine() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let prompts = vec![vec![1usize, 2, 3]];
    let mut clean = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let expect = clean.prefill(&prompts);

    let mut slow = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    slow.inject_faults(FaultPlan::new().delay(1, 0, Duration::from_millis(30)));
    let got = slow.try_prefill(&prompts).expect("a slow link is not a fault");
    assert_eq!(got.data(), expect.data(), "delayed execution must stay bit-identical");
    assert!(!slow.is_poisoned());
}

#[test]
fn default_deadline_is_armed_on_fresh_engines() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    assert_eq!(engine.collective_deadline(), Some(DEFAULT_COLLECTIVE_DEADLINE));
}

#[test]
fn empty_prompt_is_rejected_with_typed_error() {
    // Regression: an empty prompt used to reach the prefill path and panic
    // ("at least one prefill chunk"); it must be rejected at admission.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut b = batcher(&model, layout, 2);
    let requests = vec![
        ServingRequest::immediate(vec![1, 2], 3),
        ServingRequest::immediate(vec![], 3),
    ];
    assert!(matches!(
        b.try_serve(&requests),
        Err(ServeError::EmptyPrompt { index: 1 })
    ));
    // The rejection happens before any engine work: the batcher still
    // serves a valid workload afterwards.
    let outcome = b.try_serve(&[ServingRequest::immediate(vec![1, 2], 3)]).expect("valid");
    assert_eq!(outcome.outputs[0].len(), 3);

    assert!(matches!(b.try_serve(&[]), Err(ServeError::NoRequests)));
    let unsorted = vec![
        ServingRequest { prompt: vec![1], max_new_tokens: 1, seed: 0, arrival: 1.0, priority: Priority::Normal },
        ServingRequest { prompt: vec![1], max_new_tokens: 1, seed: 0, arrival: 0.0, priority: Priority::Normal },
    ];
    assert!(matches!(b.try_serve(&unsorted), Err(ServeError::UnsortedArrivals)));
}

#[test]
fn recovery_budget_limits_repeated_faults() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut b = batcher(&model, layout, 2);
    b.set_max_recoveries(0);
    b.schedule_decode_fault(0, FaultPlan::new().crash(1, 0));
    let res = b.try_serve(&workload(2, model.config().vocab));
    assert!(
        matches!(res, Err(ServeError::RecoveryLimit { faults: 1, .. })),
        "zero budget must refuse to recover, got {res:?}"
    );
}

#[test]
fn prefill_tier_fault_is_retried_transparently() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let requests = workload(3, model.config().vocab);
    let baseline = batcher(&model, layout, 2).serve(&requests);

    let mut chaotic = batcher(&model, layout, 2);
    chaotic.inject_prefill_fault(FaultPlan::new().crash(0, 1));
    let outcome = chaotic.serve(&requests);
    assert_eq!(outcome.outputs, baseline.outputs, "prefill retry diverged");
    assert_eq!(outcome.report.recovery.faults, 1);
    assert!(outcome.report.recovery.prefill_tokens_replayed >= 1);
}

#[test]
fn recovery_accounting_matches_the_netsim_model_exactly() {
    // A fully determined scenario: two uniform requests admitted at step
    // boundary zero, crash after exactly two successful decode steps. At
    // that moment both requests have emitted 3 tokens (1 from prefill + 2
    // decoded), so the netsim model predicts the replay workload in closed
    // form and the measured ledger must match it identically.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let requests = vec![
        ServingRequest { prompt: vec![1, 2, 3], max_new_tokens: 6, seed: 11, arrival: 0.0, priority: Priority::Normal },
        ServingRequest { prompt: vec![4, 5, 6], max_new_tokens: 6, seed: 12, arrival: 0.0, priority: Priority::Normal },
    ];
    let mut b = batcher(&model, layout, 2);
    b.schedule_decode_fault(2, FaultPlan::new().crash(1, 0));
    let outcome = b.serve(&requests);

    let live = [
        LiveRequest { prompt_len: 3, emitted: 3 },
        LiveRequest { prompt_len: 3, emitted: 3 },
    ];
    let cost = crash_recovery_cost(
        &live,
        &RecoveryModel {
            detection_s: 0.0,
            rebuild_s: 0.05,
            prefill_tokens_per_s: 1e4,
            step_s: 1e-3,
        },
    );
    let rec = outcome.report.recovery;
    assert_eq!(rec.requests_replayed, cost.requests_replayed);
    assert_eq!(rec.prefill_tokens_replayed, cost.prefill_tokens_replayed);
    assert_eq!(rec.decode_tokens_replayed, cost.decode_tokens_replayed);
    assert_eq!(rec.steps_lost, cost.steps_lost);
    assert_eq!(rec.faults, 1);
    // Every request still completes in full.
    assert!(outcome.outputs.iter().all(|o| o.len() == 6));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random layout × crashed rank × fault call index × arming step: the
    /// recovered streams always equal the fault-free oracle.
    #[test]
    fn random_crashes_recover_to_the_fault_free_oracle(
        layout_idx in 0usize..5,
        attn_idx in 0usize..2,
        seed in 0u64..1000,
        at_step in 0usize..4,
    ) {
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 20);
        let attn = if attn_idx == 0 { AttnSharding::Head } else { AttnSharding::Batch };
        let layout = decode_layouts(attn)[layout_idx];
        let cap = 4;
        let requests = workload(cap + 1, model.config().vocab);

        let baseline = batcher(&model, layout, cap).serve(&requests);
        let mut chaotic = batcher(&model, layout, cap);
        // Chip and call index drawn deterministically from the seed; the
        // call index may land in a later step than `at_step`, which only
        // moves the crash — every placement must recover.
        chaotic.schedule_decode_fault(at_step, FaultPlan::seeded_crash(seed, 4, 12));
        let outcome = chaotic.serve(&requests);

        prop_assert_eq!(&outcome.outputs, &baseline.outputs);
        let rec = outcome.report.recovery;
        // The fault may or may not fire before the workload drains; if it
        // did, the replay ledger must be populated (a decode-step fault
        // always has at least one live request).
        if rec.faults > 0 {
            prop_assert!(rec.requests_replayed >= 1);
        }
    }
}
