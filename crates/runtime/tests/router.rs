//! Multi-replica routing conformance: least-loaded dispatch, manual
//! drain/restore, and fault-aware failover.
//!
//! The central claim is **lossless failover**: when a replica dies
//! mid-serve (its recovery budget exhausted by an injected chip crash),
//! every request it held is re-routed to the survivors and replayed, and
//! — because per-request sampling streams are seeded independently of
//! batch composition — the merged outputs are bit-identical to a run
//! where the crash never happened.

use esti_collectives::FaultPlan;
use esti_core::layout::{AttnSharding, FfnLayout, Layout, MeshFactors};
use esti_core::serving::Priority;
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{
    ContinuousBatcher, OverloadShed, ReplicaRouter, RouterError, ServeError, ServingOptions,
    ServingRequest, WeightFormat,
};
use esti_tensor::sample::Sampling;

fn layout() -> Layout {
    Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    }
}

fn opts(cap: usize) -> ServingOptions {
    ServingOptions {
        max_decode_batch: cap,
        sampling: Sampling::Greedy,
        prefill_chunk: None,
        ..ServingOptions::default()
    }
}

fn workload(n_req: usize, vocab: usize) -> Vec<ServingRequest> {
    (0..n_req)
        .map(|i| ServingRequest {
            prompt: (0..2 + i % 3).map(|t| (3 + 5 * i + 7 * t) % vocab).collect(),
            max_new_tokens: 3,
            seed: 3000 + i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect()
}

/// The same workload served by a single standalone batcher — the oracle
/// every routed configuration must match token-for-token.
fn single_batcher_outputs(
    model: &ReferenceModel,
    requests: &[ServingRequest],
    cap: usize,
) -> Vec<Vec<usize>> {
    let mut b = ContinuousBatcher::new(model, layout(), WeightFormat::Exact, opts(cap));
    let outcome = b.serve(requests);
    assert!(outcome.shed.is_empty());
    outcome.outputs
}

#[test]
fn routed_outputs_match_single_replica_serving() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(6, model.config().vocab);
    let baseline = single_batcher_outputs(&model, &requests, 2);

    let mut router = ReplicaRouter::new(&model, layout(), WeightFormat::Exact, opts(2), 2);
    let outcome = router.try_serve(&requests).expect("healthy fleet serves");

    assert_eq!(outcome.outputs, baseline, "routing must not change any stream");
    // Uniform costs alternate across two equally loaded replicas.
    assert_eq!(outcome.served_per_replica, vec![3, 3]);
    assert_eq!(outcome.total_generated, baseline.iter().map(Vec::len).sum::<usize>());
    assert_eq!(outcome.report.recovery.failovers, 0);
    assert_eq!(outcome.report.requests.len(), requests.len());
}

#[test]
fn injected_replica_crash_loses_no_requests_and_keeps_streams() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(6, model.config().vocab);
    let baseline = single_batcher_outputs(&model, &requests, 2);

    let mut router = ReplicaRouter::new(&model, layout(), WeightFormat::Exact, opts(2), 2);
    // Replica 0 crashes on its first decode step with no recovery budget:
    // its serve call fails wholesale and commits nothing.
    router.batcher_mut(0).set_max_recoveries(0);
    router
        .batcher_mut(0)
        .schedule_decode_fault(0, FaultPlan::new().crash(1, 0));
    let outcome = router.try_serve(&requests).expect("survivor absorbs the share");

    // Zero lost requests: every stream present and bit-identical.
    assert_eq!(outcome.outputs, baseline, "failover must be stream-transparent");
    assert!(outcome.outputs.iter().all(|o| !o.is_empty()));
    // Replica 0's entire share (3 of 6) moved to replica 1.
    assert_eq!(outcome.report.recovery.failovers, 1);
    assert_eq!(outcome.report.recovery.requests_rerouted, 3);
    assert_eq!(outcome.served_per_replica, vec![0, 6]);
    assert_eq!(outcome.report.requests.len(), requests.len());
    // The failed replica is out of rotation until restored.
    assert!(!router.is_healthy(0));
    assert_eq!(router.healthy_count(), 1);
}

#[test]
fn manual_drain_routes_around_and_restore_rejoins() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(4, model.config().vocab);
    let baseline = single_batcher_outputs(&model, &requests, 2);

    let mut router = ReplicaRouter::new(&model, layout(), WeightFormat::Exact, opts(2), 2);
    router.drain(0);
    assert_eq!(router.healthy_count(), 1);
    let outcome = router.try_serve(&requests).expect("one healthy replica suffices");
    assert_eq!(outcome.outputs, baseline);
    assert_eq!(outcome.served_per_replica, vec![0, 4]);
    // A manual drain is planned, not a failure: no failover is recorded.
    assert_eq!(outcome.report.recovery.failovers, 0);

    router.restore(0);
    assert_eq!(router.healthy_count(), 2);
    assert!(router.is_healthy(0));
    let outcome = router.try_serve(&requests).expect("restored fleet serves");
    assert_eq!(outcome.outputs, baseline);
    assert_eq!(outcome.served_per_replica, vec![2, 2]);
}

#[test]
fn exhausting_every_replica_reports_all_failed() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(2, model.config().vocab);

    let mut router = ReplicaRouter::new(&model, layout(), WeightFormat::Exact, opts(2), 2);
    for r in 0..2 {
        router.batcher_mut(r).set_max_recoveries(0);
        router
            .batcher_mut(r)
            .schedule_decode_fault(0, FaultPlan::new().crash(1, 0));
    }
    match router.try_serve(&requests) {
        Err(RouterError::AllReplicasFailed { drained, .. }) => assert_eq!(drained, 2),
        other => panic!("expected AllReplicasFailed, got {other:?}"),
    }
    assert_eq!(router.healthy_count(), 0);
    // try_serve on a fully drained fleet fails fast without an engine call.
    assert!(matches!(router.try_serve(&requests), Err(RouterError::NoReplicas)));
}

#[test]
fn shed_indices_survive_per_replica_reindexing() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(4, model.config().vocab);

    let mut o = opts(2);
    o.queue_limit = Some(0);
    let mut router = ReplicaRouter::new(&model, layout(), WeightFormat::Exact, o, 2);
    let outcome = router.try_serve(&requests).expect("shedding is not a run failure");

    // With a zero queue limit every request is shed at its replica's first
    // boundary; the typed errors must carry submission-order indices.
    let mut shed_idx: Vec<usize> = outcome
        .shed
        .iter()
        .map(|e| match e {
            ServeError::Overloaded { index, reason: OverloadShed::QueueFull { .. } } => *index,
            other => panic!("expected QueueFull, got {other}"),
        })
        .collect();
    shed_idx.sort_unstable();
    assert_eq!(shed_idx, vec![0, 1, 2, 3]);
    assert!(outcome.outputs.iter().all(Vec::is_empty));
}

#[test]
fn zero_replica_router_is_an_error() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let requests = workload(1, model.config().vocab);
    let mut router = ReplicaRouter::new(&model, layout(), WeightFormat::Exact, opts(2), 0);
    assert!(matches!(router.try_serve(&requests), Err(RouterError::NoReplicas)));
}
