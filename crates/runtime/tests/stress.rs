//! Larger-mesh stress tests: eight simulated chips, a deeper model, longer
//! generation — checking that the equivalences of `equivalence.rs` survive
//! scale, not just the minimal configurations.

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{AttentionKind, BlockKind, KvCache, MlpKind, ModelConfig, PositionKind, ReferenceModel};
use esti_runtime::{GenerateOptions, PartitionedEngine, WeightFormat};

/// A mid-size config exercising non-trivial head/ff splits on 8 chips.
fn medium() -> ModelConfig {
    ModelConfig {
        name: "medium".to_owned(),
        n_layers: 3,
        d_model: 32,
        d_ff: 64,
        n_heads: 8,
        d_head: 8,
        vocab: 67,
        attention: AttentionKind::MultiQuery,
        block: BlockKind::Parallel,
        mlp: MlpKind::SwiGlu,
        position: PositionKind::Rope,
        max_seq: 128,
    }
}

fn prompts(b: usize, l: usize, v: usize) -> Vec<Vec<usize>> {
    (0..b).map(|i| (0..l).map(|j| (i * 13 + j * 7 + 1) % v).collect()).collect()
}

#[test]
fn eight_chip_layouts_match_reference() {
    let model = ReferenceModel::init_random(medium(), 200);
    let v = model.config().vocab;
    let tokens = prompts(8, 5, v);
    let mut cache = KvCache::new(model.config().n_layers);
    let expect = model.prefill(&tokens, &mut cache);

    let layouts = [
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(1, 8, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(2, 2, 2),
        },
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(4, 2, 1), // 4 gather groups x 2 local
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(8, 1, 1),
        },
    ];
    for layout in layouts {
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        let got = engine.prefill(&tokens);
        assert!(
            got.approx_eq(&expect, 5e-3),
            "{}: max diff {:e}",
            layout.describe(),
            got.max_abs_diff(&expect)
        );
    }
}

#[test]
fn long_generation_stays_locked_to_reference() {
    // 16 decode steps on 8 chips: error must not accumulate.
    let model = ReferenceModel::init_random(medium(), 201);
    let v = model.config().vocab;
    let tokens = prompts(8, 4, v);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary2D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(2, 2, 2),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let opts = GenerateOptions { max_new_tokens: 16, ..GenerateOptions::default() };
    let got = engine.generate(&tokens, &opts);

    // Reference greedy loop.
    let mut cache = KvCache::new(model.config().n_layers);
    let logits = model.prefill(&tokens, &mut cache);
    let mut last = logits.slice(1, 3, 1).into_reshape(vec![8, v]);
    let mut expect: Vec<Vec<usize>> = vec![Vec::new(); 8];
    for _ in 0..16 {
        let next: Vec<usize> = (0..8)
            .map(|b| esti_tensor::sample::argmax(&last.data()[b * v..(b + 1) * v]))
            .collect();
        for (e, &t) in expect.iter_mut().zip(&next) {
            e.push(t);
        }
        last = model.decode_step(&next, &mut cache);
    }
    assert_eq!(got, expect);
}

#[test]
fn int8_generation_is_deterministic_and_plausible() {
    let model = ReferenceModel::init_random(medium(), 202);
    let tokens = prompts(8, 4, model.config().vocab);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 8, 1),
    };
    let opts = GenerateOptions { max_new_tokens: 8, ..GenerateOptions::default() };
    let mut a = PartitionedEngine::new(&model, layout, WeightFormat::Int8);
    let mut b = PartitionedEngine::new(&model, layout, WeightFormat::Int8);
    let out_a = a.generate(&tokens, &opts);
    let out_b = b.generate(&tokens, &opts);
    assert_eq!(out_a, out_b, "int8 generation must be deterministic");
    for seq in &out_a {
        assert!(seq.iter().all(|&t| t < model.config().vocab));
    }
}
