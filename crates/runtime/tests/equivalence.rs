//! The central correctness claim of the functional runtime: every
//! partitioned layout computes exactly what the single-chip reference
//! computes, for both phases, both attention variants, and both block
//! formulations.

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{KvCache, ModelConfig, ReferenceModel};
use esti_runtime::{PartitionedEngine, WeightFormat};
use esti_tensor::Tensor;

const TOL: f32 = 2e-3;

fn layouts_for(n: usize, attn: AttnSharding) -> Vec<Layout> {
    let mut v = vec![
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn,
            mesh: MeshFactors::new(1, n, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn,
            mesh: MeshFactors::new(n, 1, 1),
        },
    ];
    if n == 4 {
        v.push(Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        });
    }
    v
}

fn reference_prefill(model: &ReferenceModel, tokens: &[Vec<usize>]) -> (Tensor, KvCache) {
    let mut cache = KvCache::new(model.config().n_layers);
    let logits = model.prefill(tokens, &mut cache);
    (logits, cache)
}

fn check_prefill_and_decode(model: &ReferenceModel, layout: Layout, tokens: &[Vec<usize>]) {
    let (ref_logits, mut ref_cache) = reference_prefill(model, tokens);
    let mut engine = PartitionedEngine::new(model, layout, WeightFormat::Exact);
    let logits = engine.prefill(tokens);
    assert!(
        logits.approx_eq(&ref_logits, TOL),
        "{} prefill: max diff {:e}",
        layout.describe(),
        logits.max_abs_diff(&ref_logits)
    );

    // Two decode steps, checking every step.
    let mut next: Vec<usize> = (0..tokens.len()).map(|b| (b + 1) % model.config().vocab).collect();
    for step in 0..2 {
        let ref_step = model.decode_step(&next, &mut ref_cache);
        let eng_step = engine.decode_step(&next);
        assert!(
            eng_step.approx_eq(&ref_step, TOL),
            "{} decode step {step}: max diff {:e}",
            layout.describe(),
            eng_step.max_abs_diff(&ref_step)
        );
        next = next.iter().map(|&t| (t * 7 + 3) % model.config().vocab).collect();
    }
}

#[test]
fn multiquery_head_sharded_matches_reference() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 42);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 5, b + 9, b + 2]).collect();
    for n in [1usize, 2, 4] {
        for layout in layouts_for(n, AttnSharding::Head) {
            check_prefill_and_decode(&model, layout, &tokens);
        }
    }
}

#[test]
fn multiquery_batch_sharded_matches_reference() {
    // The paper's optimized layout: Q/K/V resharded over batch by
    // all-to-all, KV cache divided n ways (Section 3.3, Figure 5b).
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 43);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 5, b + 9, b + 2]).collect();
    for n in [2usize, 4] {
        for layout in layouts_for(n, AttnSharding::Batch) {
            check_prefill_and_decode(&model, layout, &tokens);
        }
    }
}

#[test]
fn multihead_serial_matches_reference() {
    // Megatron-style model: multihead attention, serialized blocks, GELU.
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 44);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 3, b + 1, b + 7, b]).collect();
    for n in [2usize, 4] {
        for layout in layouts_for(n, AttnSharding::Head) {
            check_prefill_and_decode(&model, layout, &tokens);
        }
    }
}

#[test]
fn serial_multiquery_matches_reference() {
    let mut cfg = ModelConfig::tiny();
    cfg.block = esti_model::BlockKind::Serial;
    let model = ReferenceModel::init_random(cfg, 45);
    let tokens: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 4, b + 6]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 2, 1),
    };
    check_prefill_and_decode(&model, layout, &tokens);
}

#[test]
fn batch_sharded_kv_cache_is_divided_n_ways() {
    // Table 1's mechanism, observed directly: batch sharding divides the
    // per-chip KV cache by n; head sharding (baseline multiquery)
    // replicates it.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 46);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b; 6]).collect();
    let n = 4;
    let head = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, n, 1),
    };
    let batch = Layout { attn: AttnSharding::Batch, ..head };
    let mut e_head = PartitionedEngine::new(&model, head, WeightFormat::Exact);
    let mut e_batch = PartitionedEngine::new(&model, batch, WeightFormat::Exact);
    let _ = e_head.prefill(&tokens);
    let _ = e_batch.prefill(&tokens);
    let head_kv = e_head.max_cache_elements_per_chip();
    let batch_kv = e_batch.max_cache_elements_per_chip();
    assert_eq!(head_kv, n * batch_kv, "batch sharding must divide the KV cache {n} ways");
}

#[test]
fn incremental_prefill_matches_single_shot() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 47);
    let tokens: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 2, b + 3, b + 4, b + 5, b + 6]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut one = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let full = one.prefill(&tokens);

    let mut two = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let first: Vec<Vec<usize>> = tokens.iter().map(|t| t[..2].to_vec()).collect();
    let rest: Vec<Vec<usize>> = tokens.iter().map(|t| t[2..].to_vec()).collect();
    let _ = two.prefill(&first);
    let tail = two.prefill(&rest);
    assert!(tail.approx_eq(&full.slice(1, 2, 4), TOL));
    assert_eq!(one.cache_len(), two.cache_len());
}

#[test]
fn int8_weights_stay_close_to_exact() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 48);
    let tokens: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 8]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut exact = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let mut int8 = PartitionedEngine::new(&model, layout, WeightFormat::Int8);
    let le = exact.prefill(&tokens);
    let li = int8.prefill(&tokens);
    assert!(!le.approx_eq(&li, 1e-6), "int8 must actually quantize");
    // Logit scale for the tiny model is O(10); int8 noise stays small.
    let rel = li.max_abs_diff(&le)
        / le.data().iter().fold(0.0f32, |a, &b| a.max(b.abs())).max(1.0);
    assert!(rel < 0.08, "int8 relative error {rel}");
}

#[test]
fn bf16_weights_stay_close_to_exact() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 48);
    let tokens: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 8]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut exact = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let mut bf16 = PartitionedEngine::new(&model, layout, WeightFormat::Bf16);
    let le = exact.prefill(&tokens);
    let lb = bf16.prefill(&tokens);
    let rel = lb.max_abs_diff(&le)
        / le.data().iter().fold(0.0f32, |a, &b| a.max(b.abs())).max(1.0);
    assert!(rel < 0.02, "bf16 relative error {rel}");
}

#[test]
fn generation_matches_reference_greedy() {
    use esti_runtime::GenerateOptions;
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 49);
    let prompts: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 2, b + 3, b + 4]).collect();

    // Reference greedy generation.
    let mut cache = KvCache::new(model.config().n_layers);
    let logits = model.prefill(&prompts, &mut cache);
    let v = model.config().vocab;
    let mut last = logits.slice(1, 3, 1).into_reshape(vec![2, v]);
    let mut expect: Vec<Vec<usize>> = vec![Vec::new(); 2];
    for _ in 0..5 {
        let next: Vec<usize> = (0..2)
            .map(|b| {
                let row = &last.data()[b * v..(b + 1) * v];
                esti_tensor::sample::argmax(row)
            })
            .collect();
        for (e, &t) in expect.iter_mut().zip(&next) {
            e.push(t);
        }
        last = model.decode_step(&next, &mut cache);
    }

    for n in [1usize, 2] {
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, n, 1),
        };
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        let opts = GenerateOptions { max_new_tokens: 5, ..GenerateOptions::default() };
        let out = engine.generate(&prompts, &opts);
        assert_eq!(out, expect, "greedy generation must match reference (n={n})");
    }
}

#[test]
fn chunked_prefill_generation_matches_unchunked() {
    use esti_runtime::GenerateOptions;
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 50);
    let prompts: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 2, b + 3, b + 4, b + 5]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let whole = engine.generate(
        &prompts,
        &GenerateOptions { max_new_tokens: 4, ..GenerateOptions::default() },
    );
    let chunked = engine.generate(
        &prompts,
        &GenerateOptions { max_new_tokens: 4, prefill_chunk: Some(2), ..GenerateOptions::default() },
    );
    assert_eq!(whole, chunked);
}

#[test]
#[should_panic(expected = "requires multiquery")]
fn batch_sharding_rejected_for_multihead() {
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 51);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let _ = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
}

#[test]
#[should_panic(expected = "batch divisible")]
fn batch_sharding_requires_divisible_batch() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 52);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let _ = engine.prefill(&[vec![1, 2, 3]]); // batch 1 on 4 chips
}

#[test]
fn multi_sample_expansion_matches_repeated_prefill() {
    // The Section 4.4 low-latency recipe: prefill a small batch, expand the
    // KV cache k times, decode k samples per prompt. Must equal prefilling
    // the repeated prompts directly.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 53);
    let prompts: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 5, b + 9]).collect();
    let repeated: Vec<Vec<usize>> = prompts
        .iter()
        .flat_map(|p| std::iter::repeat_n(p.clone(), 2))
        .collect(); // [p0, p0, p1, p1]

    let mut ref_cache = KvCache::new(model.config().n_layers);
    let _ = model.prefill(&repeated, &mut ref_cache);
    let expect = model.decode_step(&[7, 8, 9, 10], &mut ref_cache);

    for layout in [
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(1, 2, 1),
        },
        // 2D mesh of two chips (x only) so the batch of 2 divides evenly.
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(2, 1, 1),
        },
    ] {
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        let _ = engine.prefill(&prompts);
        engine.expand_batch(2);
        let got = engine.decode_step(&[7, 8, 9, 10]);
        assert!(
            got.approx_eq(&expect, TOL),
            "{}: max diff {:e}",
            layout.describe(),
            got.max_abs_diff(&expect)
        );
    }
}

#[test]
#[should_panic(expected = "prior prefill")]
fn expand_batch_requires_prefill() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 54);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    engine.expand_batch(2);
}

#[test]
fn hybrid_weight_gathered_matches_reference() {
    // The X / XY hybrid layouts (Figure A.2): batch sharded over the
    // gather groups, 1D weight-stationary within each local group.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 55);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 6, b + 11]).collect();
    for (mesh, extent) in [
        // 4 chips as 2 gather groups x 2 local chips.
        (MeshFactors::new(2, 2, 1), GatherExtent::X),
        // 4 chips as 4 gather groups... XY on 2x2 mesh = full gather,
        // exercising the degradation path.
        (MeshFactors::new(2, 2, 1), GatherExtent::Xy),
    ] {
        for attn in [AttnSharding::Head, AttnSharding::Batch] {
            let layout = Layout { ffn: FfnLayout::WeightGathered(extent), attn, mesh };
            check_prefill_and_decode(&model, layout, &tokens);
        }
    }
}

#[test]
fn hybrid_weight_gathered_multihead_serial() {
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 56);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 2, b + 9]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightGathered(GatherExtent::X),
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(2, 2, 1),
    };
    check_prefill_and_decode(&model, layout, &tokens);
}

#[test]
fn hybrid_gathers_less_weight_traffic_than_full_wg() {
    // The point of the hybrid (Figure 3): gathering over N < n chips moves
    // N/n of the weight bytes per layer.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 57);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 2]).collect();
    let mesh = MeshFactors::new(2, 2, 1);
    let mut hybrid = PartitionedEngine::new(
        &model,
        Layout { ffn: FfnLayout::WeightGathered(GatherExtent::X), attn: AttnSharding::Head, mesh },
        WeightFormat::Exact,
    );
    let mut full = PartitionedEngine::new(
        &model,
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        },
        WeightFormat::Exact,
    );
    let _ = hybrid.prefill(&tokens);
    let _ = full.prefill(&tokens);
    use esti_collectives::CollectiveOp;
    let h = hybrid.traffic().bytes(CollectiveOp::AllGather);
    let f = full.traffic().bytes(CollectiveOp::AllGather);
    assert!(h < f, "hybrid gathered {h} bytes vs full WG {f}");
}

#[test]
fn n_samples_generation_diversifies_and_stays_consistent() {
    use esti_runtime::GenerateOptions;
    use esti_tensor::sample::Sampling;
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 58);
    let prompts: Vec<Vec<usize>> = (0..2).map(|b| vec![b + 1, b + 4, b + 7]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };

    // Greedy with n_samples: every sample of a prompt is identical, and
    // identical to the plain-generation output.
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let plain = engine.generate(
        &prompts,
        &GenerateOptions { max_new_tokens: 5, ..GenerateOptions::default() },
    );
    let multi = engine.generate(
        &prompts,
        &GenerateOptions { max_new_tokens: 5, n_samples: 3, ..GenerateOptions::default() },
    );
    assert_eq!(multi.len(), 6);
    for p in 0..2 {
        for s in 0..3 {
            assert_eq!(multi[p * 3 + s], plain[p], "prompt {p} sample {s}");
        }
    }

    // Stochastic sampling: samples of the same prompt should not all agree.
    let sampled = engine.generate(
        &prompts,
        &GenerateOptions {
            max_new_tokens: 6,
            n_samples: 4,
            sampling: Sampling::TopK(8),
            seed: 11,
            ..GenerateOptions::default()
        },
    );
    let first_prompt: Vec<_> = sampled[0..4].to_vec();
    assert!(
        first_prompt.iter().any(|s| s != &first_prompt[0]),
        "top-k samples should diversify: {first_prompt:?}"
    );
}
