//! Conformance tests for the continuous-batching scheduler: every request
//! served through the two-tier [`ContinuousBatcher`] must produce exactly
//! the token stream it would produce running alone through
//! [`PartitionedEngine::generate`] — for every built-in decode layout,
//! with variable-length prompts admitted mid-stream into a mixed-age
//! decode batch. This is the paper's continuous-batching claim made
//! falsifiable: batching requests together changes *when* tokens appear,
//! never *which* tokens appear.

use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_core::serving::{simulate, Priority, ServingConfig};
use esti_core::Machine;
use esti_hal::DType;
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{
    ContinuousBatcher, GenerateOptions, PartitionedEngine, ServingOptions, ServingRequest,
    WeightFormat,
};
use esti_tensor::sample::Sampling;
use proptest::prelude::*;

/// Every decode layout shape the runtime implements, on four chips.
fn decode_layouts(attn: AttnSharding) -> Vec<Layout> {
    vec![
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 4, 1) },
        Layout { ffn: FfnLayout::WeightStationary2D, attn, mesh: MeshFactors::new(2, 2, 1) },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xy),
            attn,
            mesh: MeshFactors::new(2, 2, 1),
        },
    ]
}

/// A deterministic variable-length workload: more requests than the cap can
/// hold, staggered generation lengths, so late requests are admitted
/// mid-stream as earlier ones free their slots.
fn workload(n_req: usize, vocab: usize) -> Vec<ServingRequest> {
    (0..n_req)
        .map(|i| ServingRequest {
            prompt: (0..2 + i % 4).map(|t| (3 + 5 * i + 7 * t) % vocab).collect(),
            max_new_tokens: 2 + (i * 2) % 5,
            seed: 1000 + i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect()
}

/// One request's tokens when it runs alone (padded to the layout's minimum
/// batch by replication, which leaves row 0 bitwise unchanged).
fn isolated_tokens(
    engine: &mut PartitionedEngine,
    req: &ServingRequest,
    sampling: Sampling,
    prefill_chunk: Option<usize>,
) -> Vec<usize> {
    let pad = engine.min_batch();
    let opts = GenerateOptions {
        max_new_tokens: req.max_new_tokens,
        sampling,
        seed: req.seed,
        prefill_chunk,
        n_samples: 1,
    };
    let prompts = vec![req.prompt.clone(); pad];
    engine.generate(&prompts, &opts).swap_remove(0)
}

/// The conformance check: serve a workload through the scheduler, then
/// replay each request in isolation and demand identical token streams.
fn check_conformance(model: &ReferenceModel, layout: Layout, prefill_chunk: Option<usize>) {
    let mut isolated = PartitionedEngine::new(model, layout, WeightFormat::Exact);
    let cap = isolated.min_batch().max(2);
    let requests = workload(cap + 2, model.config().vocab);
    let opts = ServingOptions {
        max_decode_batch: cap,
        sampling: Sampling::Greedy,
        prefill_chunk,
        ..ServingOptions::default()
    };
    let mut batcher = ContinuousBatcher::new(model, layout, WeightFormat::Exact, opts);
    let outcome = batcher.serve(&requests);
    assert_eq!(outcome.outputs.len(), requests.len());
    for (i, req) in requests.iter().enumerate() {
        let expect = isolated_tokens(&mut isolated, req, Sampling::Greedy, prefill_chunk);
        assert_eq!(
            outcome.outputs[i],
            expect,
            "{} request {i} (prompt len {}, gen {}) diverged from isolated run",
            layout.describe(),
            req.prompt.len(),
            req.max_new_tokens
        );
    }
}

#[test]
fn scheduler_matches_isolated_generate_multiquery() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    for attn in [AttnSharding::Head, AttnSharding::Batch] {
        for layout in decode_layouts(attn) {
            check_conformance(&model, layout, None);
        }
    }
}

#[test]
fn scheduler_matches_isolated_generate_multihead() {
    // Megatron-style model (multihead, serial block, learned positions) —
    // head-sharded attention, as in the equivalence suite.
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 8);
    for layout in decode_layouts(AttnSharding::Head) {
        check_conformance(&model, layout, None);
    }
}

#[test]
fn scheduler_conformance_survives_chunked_prefill() {
    // Incremental prefill (Section 4.2's latency knob) must not change any
    // request's tokens — on a layout that pads prefill batches, too.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let layouts = [
        Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, 4, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(4, 1, 1),
        },
    ];
    for layout in layouts {
        check_conformance(&model, layout, Some(2));
    }
}

#[test]
fn stochastic_streams_match_isolated_batch1() {
    // Per-request RNG streams: with sampling enabled, a request's tokens
    // still match its isolated run (same seed) on a min-batch-1 layout,
    // regardless of what shares the decode batch.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 10);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let sampling = Sampling::TopK(5);
    let requests = workload(5, model.config().vocab);
    let opts = ServingOptions {
        max_decode_batch: 3,
        sampling,
        prefill_chunk: None,
        ..ServingOptions::default()
    };
    let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
    let outcome = batcher.serve(&requests);
    let mut isolated = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    assert_eq!(isolated.min_batch(), 1, "stochastic conformance needs a batch-1 isolated run");
    for (i, req) in requests.iter().enumerate() {
        let expect = isolated_tokens(&mut isolated, req, sampling, None);
        assert_eq!(outcome.outputs[i], expect, "stochastic request {i} diverged");
    }
}

#[test]
fn zero_and_one_token_requests_are_served() {
    // Degenerate lengths: a 0-token request finishes at prefill, a 1-token
    // request finishes without ever taking a decode slot.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 11);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let requests = vec![
        ServingRequest { prompt: vec![1, 2, 3], max_new_tokens: 0, seed: 1, arrival: 0.0, priority: Priority::Normal },
        ServingRequest { prompt: vec![4, 5], max_new_tokens: 1, seed: 2, arrival: 0.0, priority: Priority::Normal },
        ServingRequest { prompt: vec![6, 7, 8, 9], max_new_tokens: 3, seed: 3, arrival: 0.0, priority: Priority::Normal },
    ];
    let opts = ServingOptions { max_decode_batch: 2, ..ServingOptions::default() };
    let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
    let outcome = batcher.serve(&requests);
    let mut isolated = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    assert!(outcome.outputs[0].is_empty());
    assert_eq!(outcome.outputs[1].len(), 1);
    assert_eq!(outcome.outputs[2].len(), 3);
    for (i, req) in requests.iter().enumerate().skip(1) {
        let expect = isolated_tokens(&mut isolated, req, Sampling::Greedy, None);
        assert_eq!(outcome.outputs[i], expect);
    }
    let r = &outcome.report.requests[0];
    assert!(r.finished >= r.prefilled && r.prefilled >= r.arrival);
}

#[test]
fn arrivals_gate_admission() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 12);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let requests = vec![
        ServingRequest { prompt: vec![1, 2], max_new_tokens: 2, seed: 1, arrival: 0.0, priority: Priority::Normal },
        ServingRequest { prompt: vec![3, 4], max_new_tokens: 2, seed: 2, arrival: 0.05, priority: Priority::Normal },
    ];
    let opts = ServingOptions { max_decode_batch: 2, ..ServingOptions::default() };
    let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
    let outcome = batcher.serve(&requests);
    let late = &outcome.report.requests[1];
    assert!(
        late.prefilled >= 0.05,
        "request prefilled at {} before its arrival at 0.05",
        late.prefilled
    );
    // And gating never changes tokens.
    let mut isolated = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    for (i, req) in requests.iter().enumerate() {
        let expect = isolated_tokens(&mut isolated, req, Sampling::Greedy, None);
        assert_eq!(outcome.outputs[i], expect);
    }
}

#[test]
fn measured_stats_cross_check_analytical_simulator() {
    // The measured scheduler and the analytical simulator account for work
    // identically: every decode step generates one token per live slot, so
    // total occupancy equals decode-generated tokens, and the step count is
    // bracketed by perfect packing below and serial service above. Uniform
    // workload so both schedules are deterministic.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 13);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let (n_req, gen, cap) = (5usize, 4usize, 2usize);
    let requests: Vec<ServingRequest> = (0..n_req)
        .map(|i| ServingRequest {
            prompt: vec![(i + 1) % 41, (i + 3) % 41, (i + 5) % 41],
            max_new_tokens: gen,
            seed: i as u64,
            arrival: 0.0,
            priority: Priority::Normal,
        })
        .collect();
    let opts = ServingOptions { max_decode_batch: cap, ..ServingOptions::default() };
    let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
    let outcome = batcher.serve(&requests);

    // The first token of each request comes from prefill, so the decode
    // tier generates gen-1 per request.
    let decode_tokens = n_req * (gen - 1);
    let occupancy: usize = outcome.step_log.iter().map(|&(live, _)| live).sum();
    assert_eq!(occupancy, decode_tokens, "occupancy must equal decode-generated tokens");
    assert_eq!(outcome.total_generated, n_req * gen);
    let steps = outcome.report.decode_steps;
    assert_eq!(steps, outcome.step_log.len());
    assert!(steps >= decode_tokens.div_ceil(cap) && steps <= decode_tokens);
    let mean = outcome.report.mean_decode_batch;
    assert!((mean - occupancy as f64 / steps as f64).abs() < 1e-12);

    // The analytical model of the same workload (gen-1 decode tokens per
    // request) conserves the same occupancy and obeys the same bracket.
    let cfg = ServingConfig {
        prefill_machine: Machine::tpu_v4_slice(4).expect("4-chip slice"),
        decode_machine: Machine::tpu_v4_slice(4).expect("4-chip slice"),
        max_decode_batch: cap,
        input_len: 3,
        gen_len: gen - 1,
        weight_dtype: DType::Bf16,
    };
    let analytic = simulate(&ModelConfig::tiny(), &cfg, &vec![0.0; n_req]);
    let analytic_occupancy =
        (analytic.mean_decode_batch * analytic.decode_steps as f64).round() as usize;
    assert_eq!(analytic_occupancy, occupancy, "analytic and measured occupancy disagree");
    assert!(
        analytic.decode_steps >= decode_tokens.div_ceil(cap)
            && analytic.decode_steps <= decode_tokens
    );

    // Measured wall-clock statistics are well-formed.
    for r in &outcome.report.requests {
        assert!(r.prefilled >= r.arrival && r.finished >= r.prefilled);
    }
    assert!(outcome.report.makespan > 0.0);
    assert!(outcome.throughput_tokens_per_sec() > 0.0);
    let p50 = outcome.report.latency_percentile(50.0);
    let p100 = outcome.report.latency_percentile(100.0);
    assert!(p50 <= p100 && p100 <= outcome.report.makespan);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized ragged workloads on the cheapest layout: arbitrary prompt
    /// lengths, generation lengths, admission pressure (cap), and seeds —
    /// the scheduler must always reproduce isolated token streams.
    #[test]
    fn random_ragged_workloads_match_isolated(
        prompt_lens in prop::collection::vec(1usize..8, 1..6),
        gens in prop::collection::vec(1usize..5, 1..6),
        cap in 1usize..4,
        seed in 0u64..1000,
    ) {
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 20);
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(1, 2, 1),
        };
        let vocab = model.config().vocab;
        let requests: Vec<ServingRequest> = prompt_lens
            .iter()
            .zip(gens.iter().cycle())
            .enumerate()
            .map(|(i, (&pl, &gen))| ServingRequest {
                prompt: (0..pl).map(|t| (seed as usize + 11 * i + 3 * t) % vocab).collect(),
                max_new_tokens: gen,
                seed: seed + i as u64,
                arrival: 0.0,
                priority: Priority::Normal,
            })
            .collect();
        let opts = ServingOptions {
            max_decode_batch: cap,
            sampling: Sampling::Greedy,
            prefill_chunk: None,
            ..ServingOptions::default()
        };
        let mut batcher = ContinuousBatcher::new(&model, layout, WeightFormat::Exact, opts);
        let outcome = batcher.serve(&requests);
        let mut isolated = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        for (i, req) in requests.iter().enumerate() {
            let expect = isolated_tokens(&mut isolated, req, Sampling::Greedy, None);
            prop_assert_eq!(&outcome.outputs[i], &expect, "request {} diverged", i);
        }
    }
}
