//! Cross-validation of the analytical communication model against the
//! runtime's measured collective traffic.
//!
//! The `esti-collectives` ledger records every collective call with the
//! Appendix A.1 byte conventions, so for layouts whose runtime dataflow
//! matches the paper's accounting exactly (1D weight-stationary parallel
//! blocks), the measured bytes must equal `Layout::layer_comm` to the byte.
//! Richer dataflows (2D, batch-sharded attention) are checked to agree
//! within a small factor, since the analytical model deliberately ignores
//! the small projection collectives the paper folds into fused einsums.

use esti_collectives::CollectiveOp;
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors, PieceKind};
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{PartitionedEngine, WeightFormat};

fn prompts(b: usize, l: usize) -> Vec<Vec<usize>> {
    (0..b).map(|i| (0..l).map(|j| (i * l + j) % 40).collect()).collect()
}

#[test]
fn ws1d_measured_bytes_equal_analytic_exactly() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 7);
    let cfg = model.config();
    let n = 4;
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, n, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let (b, l) = (2usize, 3usize);
    let _ = engine.prefill(&prompts(b, l));

    // Analytic: per layer, one all-gather + one reduce-scatter of B·L·E
    // elements each (= one all-reduce), in bf16 accounting bytes.
    let tokens = (b * l) as f64;
    let analytic_per_layer: f64 = layout
        .layer_comm(cfg, tokens)
        .iter()
        .map(|p| p.elements * 2.0)
        .sum();
    let analytic = analytic_per_layer * cfg.n_layers as f64;

    let measured = engine.traffic().total_bytes() as f64;
    assert_eq!(measured, analytic, "1D ledger must match Appendix A.1 exactly");
    // And it is recorded as all-reduces (the fused parallel-block sum).
    assert_eq!(engine.traffic().calls(CollectiveOp::AllReduce) as usize, cfg.n_layers);
    assert_eq!(engine.traffic().calls(CollectiveOp::AllGather), 0);
}

#[test]
fn serial_block_measures_twice_the_all_reduces() {
    let mut cfg = ModelConfig::tiny();
    cfg.block = esti_model::BlockKind::Serial;
    let model = ReferenceModel::init_random(cfg, 8);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let _ = engine.prefill(&prompts(2, 3));
    // Section 3.4/4.3: the serialized formulation needs two all-reduces per
    // layer instead of one.
    assert_eq!(
        engine.traffic().calls(CollectiveOp::AllReduce) as usize,
        2 * model.config().n_layers
    );
}

#[test]
fn batch_sharded_attention_adds_two_all_to_alls_per_layer() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 9);
    let cfg = model.config();
    let n = 4;
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, n, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let (b, l) = (4usize, 2usize);
    let _ = engine.prefill(&prompts(b, l));
    assert_eq!(
        engine.traffic().calls(CollectiveOp::AllToAll) as usize,
        2 * cfg.n_layers,
        "one Q reshard + one output reshard per layer (Figure 5b)"
    );
    // Measured all-to-all bytes within 2x of the analytic pieces (the
    // model also charges the K/V reshard, which multiquery gets for free).
    let tokens = (b * l) as f64;
    let analytic: f64 = layout
        .layer_comm(cfg, tokens)
        .iter()
        .filter(|p| p.kind == PieceKind::AllToAll)
        .map(|p| p.elements * 2.0)
        .sum::<f64>()
        * cfg.n_layers as f64;
    let measured = engine.traffic().bytes(CollectiveOp::AllToAll) as f64;
    assert!(
        measured <= 2.0 * analytic && measured >= 0.5 * analytic,
        "a2a measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn weight_gathered_traffic_is_weights_not_activations() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 10);
    let cfg = model.config();
    let n = 4;
    let layout = Layout {
        ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(n, 1, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let (b, l) = (4usize, 2usize);
    let _ = engine.prefill(&prompts(b, l));
    let stats = engine.traffic();
    // Per layer: one all-gather per weight matrix (wq, wo, w_in, w_gate,
    // w_out; MQ K/V are replicated), plus one final logit gather.
    assert_eq!(
        stats.calls(CollectiveOp::AllGather) as usize,
        5 * cfg.n_layers + 1
    );
    // Gathered weight volume per layer ≈ the analytic weights piece (which
    // uses params_per_layer and so also counts the K/V projections and
    // norms the runtime does not gather).
    let analytic_weights: f64 = layout
        .layer_comm(cfg, (b * l) as f64)
        .iter()
        .filter(|p| p.is_weights)
        .map(|p| p.elements * 2.0)
        .sum::<f64>()
        * cfg.n_layers as f64;
    let gathered_per_layer = (cfg.attn_dim() * cfg.d_model * 2 // wq, wo
        + cfg.d_model * cfg.d_ff * 3) as f64 // w_in, w_gate, w_out
        * 2.0;
    let measured = stats.bytes(CollectiveOp::AllGather) as f64;
    let expected = gathered_per_layer * cfg.n_layers as f64
        + (b * l * cfg.vocab) as f64 * 2.0; // final logit gather
    assert_eq!(measured, expected, "WG ledger mismatch");
    assert!(
        (measured - analytic_weights).abs() / analytic_weights < 0.1,
        "measured {measured} vs analytic weights {analytic_weights}"
    );
}

#[test]
fn symbolic_schedule_call_counts_match_measured_runtime() {
    // The static analyzer (esti-verify Pass 2) replays per-chip programs
    // derived from the symbolic schedule, so the schedule must describe
    // what the runtime actually does. For 1D weight-stationary layouts the
    // correspondence is exact: the engine must issue precisely the
    // collective calls the schedule predicts, group-for-group.
    use esti_core::schedule::{build_schedule, Step, SymOp};

    fn op_kind(op: SymOp) -> CollectiveOp {
        match op {
            SymOp::AllGather { .. } => CollectiveOp::AllGather,
            SymOp::ReduceScatter { .. } => CollectiveOp::ReduceScatter,
            SymOp::AllReduce => CollectiveOp::AllReduce,
            SymOp::AllToAll { .. } => CollectiveOp::AllToAll,
        }
    }

    for attn in [AttnSharding::Head, AttnSharding::Batch] {
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 12);
        let cfg = model.config();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn,
            mesh: MeshFactors::new(1, 4, 1),
        };
        let (b, l) = (4usize, 2usize);
        let schedule = build_schedule(cfg, &layout, b * l, 1).expect("schedule");
        let torus = schedule.torus;
        let mut expected = std::collections::HashMap::new();
        for (steps, reps) in [(&schedule.layer, cfg.n_layers), (&schedule.final_steps, 1)] {
            for step in steps {
                if let Step::Collective { op, axes, .. } = step {
                    // One ledger entry per group instance (rank 0 records).
                    let groups = torus.chip_count() / torus.group_size(*axes);
                    *expected.entry(op_kind(*op)).or_insert(0u64) += (groups * reps) as u64;
                }
            }
        }
        let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
        let _ = engine.prefill(&prompts(b, l));
        for op in CollectiveOp::ALL {
            assert_eq!(
                engine.traffic().calls(op),
                expected.get(&op).copied().unwrap_or(0),
                "{op:?} call count with {attn:?} attention"
            );
        }
    }
}

#[test]
fn decode_step_traffic_scales_with_batch_not_context() {
    // The FFN collectives during decode depend on batch size only — the
    // KV cache is read from local HBM, never communicated (Section 3.3).
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 11);
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Batch,
        mesh: MeshFactors::new(1, 2, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let _ = engine.prefill(&prompts(2, 2));
    engine.traffic().reset();
    let _ = engine.decode_step(&[1, 2]);
    let short_ctx = engine.traffic().total_bytes();
    // Grow the context by several tokens, then measure another step.
    for t in 0..5 {
        let _ = engine.decode_step(&[t % 7, (t + 1) % 7]);
    }
    engine.traffic().reset();
    let _ = engine.decode_step(&[3, 4]);
    let long_ctx = engine.traffic().total_bytes();
    assert_eq!(short_ctx, long_ctx, "decode traffic must not grow with context");
}
