//! Conformance tests for the overlapped (Looped CollectiveEinsum)
//! executor: for every layout, overlapped execution must be *bit-identical*
//! to monolithic execution — `max_abs_diff == 0.0`, not a tolerance — for
//! every chunk count, while both stay within tolerance of the single-chip
//! reference. The traffic ledger must also be identical: chunking changes
//! transport granularity, never the bytes an op is charged.

use esti_collectives::CollectiveOp;
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{KvCache, ModelConfig, ReferenceModel};
use esti_runtime::{ExecMode, PartitionedEngine, WeightFormat};
use esti_tensor::Tensor;

const TOL: f32 = 2e-3;

/// Every dataflow on four chips, plus the two-chip 1D case.
fn layouts(attn: AttnSharding) -> Vec<Layout> {
    vec![
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 2, 1) },
        Layout { ffn: FfnLayout::WeightStationary1D, attn, mesh: MeshFactors::new(1, 4, 1) },
        Layout { ffn: FfnLayout::WeightStationary2D, attn, mesh: MeshFactors::new(2, 2, 1) },
        Layout { ffn: FfnLayout::WeightGathered(GatherExtent::Xyz), attn, mesh: MeshFactors::new(4, 1, 1) },
        Layout { ffn: FfnLayout::WeightGathered(GatherExtent::X), attn, mesh: MeshFactors::new(2, 2, 1) },
    ]
}

/// Runs prefill + two decode steps under `exec`, returning all logits.
fn run(
    model: &ReferenceModel,
    layout: Layout,
    fmt: WeightFormat,
    exec: ExecMode,
    tokens: &[Vec<usize>],
) -> Vec<Tensor> {
    let mut engine = PartitionedEngine::new_with_exec(model, layout, fmt, exec);
    let mut out = vec![engine.prefill(tokens)];
    let mut next: Vec<usize> =
        (0..tokens.len()).map(|b| (b + 3) % model.config().vocab).collect();
    for _ in 0..2 {
        out.push(engine.decode_step(&next));
        next = next.iter().map(|&t| (t * 5 + 1) % model.config().vocab).collect();
    }
    out
}

fn assert_bit_identical(model: &ReferenceModel, layout: Layout, fmt: WeightFormat) {
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 5, b + 9, b + 2]).collect();
    let mono = run(model, layout, fmt, ExecMode::Monolithic, &tokens);
    for chunks in [2usize, 4] {
        let over = run(model, layout, fmt, ExecMode::Overlapped { chunks }, &tokens);
        for (step, (m, o)) in mono.iter().zip(&over).enumerate() {
            assert_eq!(
                o.max_abs_diff(m),
                0.0,
                "{} chunks={chunks} step {step}: overlapped != monolithic",
                layout.describe()
            );
        }
    }
}

#[test]
fn overlapped_bit_identical_to_monolithic_multiquery() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 60);
    for attn in [AttnSharding::Head, AttnSharding::Batch] {
        for layout in layouts(attn) {
            assert_bit_identical(&model, layout, WeightFormat::Exact);
        }
    }
}

#[test]
fn overlapped_bit_identical_to_monolithic_multihead_serial() {
    let model = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 61);
    for layout in layouts(AttnSharding::Head) {
        assert_bit_identical(&model, layout, WeightFormat::Exact);
    }
}

#[test]
fn overlapped_bit_identical_for_int8_and_bf16() {
    // Quantized weights stream their int8 wire format through the looped
    // helpers (fused dequant-GEMM on each arriving slice), so the
    // mode-equivalence must hold for genuinely chunked int8 transport.
    // bf16 exercises dense storage with rounded values.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 62);
    for fmt in [WeightFormat::Int8, WeightFormat::Bf16] {
        for layout in layouts(AttnSharding::Head) {
            assert_bit_identical(&model, layout, fmt);
        }
    }
}

#[test]
fn overlapped_matches_reference_within_tolerance() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 63);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 2, b + 6, b + 1, b + 8]).collect();
    let mut cache = KvCache::new(model.config().n_layers);
    let expect = model.prefill(&tokens, &mut cache);
    for layout in layouts(AttnSharding::Batch) {
        let mut engine = PartitionedEngine::new_with_exec(
            &model,
            layout,
            WeightFormat::Exact,
            ExecMode::Overlapped { chunks: 4 },
        );
        let got = engine.prefill(&tokens);
        assert!(
            got.approx_eq(&expect, TOL),
            "{}: max diff {:e}",
            layout.describe(),
            got.max_abs_diff(&expect)
        );
    }
}

#[test]
fn chunking_does_not_change_the_traffic_ledger() {
    // A chunked collective is one logical op: same calls, same bytes.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 64);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 4]).collect();
    for attn in [AttnSharding::Head, AttnSharding::Batch] {
        for layout in layouts(attn) {
            let mut mono = PartitionedEngine::new_with_exec(
                &model,
                layout,
                WeightFormat::Exact,
                ExecMode::Monolithic,
            );
            let mut over = PartitionedEngine::new_with_exec(
                &model,
                layout,
                WeightFormat::Exact,
                ExecMode::Overlapped { chunks: 4 },
            );
            let _ = mono.prefill(&tokens);
            let _ = over.prefill(&tokens);
            let _ = mono.decode_step(&[1, 2, 3, 4]);
            let _ = over.decode_step(&[1, 2, 3, 4]);
            for op in CollectiveOp::ALL {
                assert_eq!(
                    mono.traffic().calls(op),
                    over.traffic().calls(op),
                    "{} {op:?} call count",
                    layout.describe()
                );
                assert_eq!(
                    mono.traffic().bytes(op),
                    over.traffic().bytes(op),
                    "{} {op:?} bytes",
                    layout.describe()
                );
            }
        }
    }
}

#[test]
fn comm_times_are_recorded_per_chip() {
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 65);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 4]).collect();
    let layout = Layout {
        ffn: FfnLayout::WeightStationary1D,
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(1, 4, 1),
    };
    let mut engine = PartitionedEngine::new(&model, layout, WeightFormat::Exact);
    let _ = engine.prefill(&tokens);
    let times = engine.comm_times();
    assert_eq!(times.len(), 4);
    assert!(
        times.iter().any(|t| t.total_nanos() > 0),
        "collectives must record blocking time"
    );
    let summary = engine.comm_time_summary();
    assert!(summary.lines().count() == 4 && summary.contains("chip 0"), "{summary}");
    engine.reset_comm_times();
    assert!(engine.comm_times().iter().all(|t| t.total_nanos() == 0));
}
