//! Int8-specific conformance: the quantized data path must be (a)
//! bit-identical between overlapped and monolithic execution for arbitrary
//! chunk counts, and (b) charged on the wire at its *quantized* volume —
//! int8 values plus per-column f32 scales — never at dense f32/bf16 volume.

use esti_collectives::CollectiveOp;
use esti_core::layout::{AttnSharding, FfnLayout, GatherExtent, Layout, MeshFactors};
use esti_model::{ModelConfig, ReferenceModel};
use esti_runtime::{ExecMode, PartitionedEngine, WeightFormat};
use esti_tensor::Tensor;
use proptest::prelude::*;

fn prompts(b: usize, l: usize) -> Vec<Vec<usize>> {
    (0..b).map(|i| (0..l).map(|j| (i * l + j) % 40).collect()).collect()
}

/// The layouts whose weight matrices actually move over the interconnect
/// quantized: fully weight-gathered, hybrid weight-gathered (monolithic
/// quantized gather + 1D compute), and the 2D blocks whose int8 shards run
/// the streamed activation-gather contraction.
fn quant_layouts() -> Vec<Layout> {
    vec![
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 1, 1),
        },
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::X),
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(2, 2, 1),
        },
    ]
}

fn run(model: &ReferenceModel, layout: Layout, exec: ExecMode) -> Vec<Tensor> {
    let mut engine = PartitionedEngine::new_with_exec(model, layout, WeightFormat::Int8, exec);
    let tokens: Vec<Vec<usize>> = (0..4).map(|b| vec![b + 1, b + 5, b + 9, b + 2]).collect();
    let mut out = vec![engine.prefill(&tokens)];
    let mut next: Vec<usize> = (0..tokens.len()).map(|b| (b + 3) % model.config().vocab).collect();
    for _ in 0..2 {
        out.push(engine.decode_step(&next));
        next = next.iter().map(|&t| (t * 5 + 1) % model.config().vocab).collect();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn int8_overlapped_bit_identical_for_any_chunk_count(
        li in 0usize..3,
        chunks in 1usize..7,
        seed in 0u64..100,
    ) {
        // Streaming quantized slices through the fused dequant-GEMM must
        // reproduce the monolithic quantized result exactly — any drift
        // means a scale was applied in a chunk-count-dependent place.
        let model = ReferenceModel::init_random(ModelConfig::tiny(), 70 + seed);
        let layout = quant_layouts()[li];
        let mono = run(&model, layout, ExecMode::Monolithic);
        let over = run(&model, layout, ExecMode::Overlapped { chunks });
        for (step, (m, o)) in mono.iter().zip(&over).enumerate() {
            prop_assert_eq!(
                o.max_abs_diff(m),
                0.0,
                "{} chunks={} step {}",
                layout.describe(),
                chunks,
                step
            );
        }
    }
}

#[test]
fn int8_weight_gathered_traffic_is_quantized_volume() {
    // Every weight all-gather in the int8 WG dataflow must be charged at
    // its wire volume: 1 byte per int8 value + 4 bytes per f32 scale.
    // Column-sharded matrices (wq, w_in, w_gate) partition their columns
    // across k shards, so the full matrix ships exactly one scale per
    // output column; row-sharded matrices (wo, w_out) ship each rank's
    // full per-column scale vector, k·e scales in total.
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 71);
    let cfg = model.config();
    let k = 4usize;
    let layout = Layout {
        ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(k, 1, 1),
    };
    let (b, l) = (4usize, 2usize);
    let (e, attn, ff) = (cfg.d_model, cfg.attn_dim(), cfg.d_ff);
    // Int8 values: the full matrix, 1 byte each (MQ K/V are replicated).
    let values_per_layer = e * attn + attn * e + e * ff * 2 + ff * e;
    // f32 scales: one per column for column gathers, one per (rank,
    // column) for row gathers.
    let scales_per_layer = (attn + ff * 2) * 4 + 2 * (k * e) * 4;
    let logit_bytes = b * l * cfg.vocab * 2; // final f32 gather, bf16 accounting
    let expected =
        ((values_per_layer + scales_per_layer) * cfg.n_layers + logit_bytes) as u64;

    for exec in [ExecMode::Monolithic, ExecMode::Overlapped { chunks: 4 }] {
        let mut engine = PartitionedEngine::new_with_exec(&model, layout, WeightFormat::Int8, exec);
        let _ = engine.prefill(&prompts(b, l));
        assert_eq!(
            engine.traffic().bytes(CollectiveOp::AllGather),
            expected,
            "{exec:?}: int8 WG bytes must equal quantized wire volume"
        );
        assert_eq!(
            engine.traffic().calls(CollectiveOp::AllGather) as usize,
            5 * cfg.n_layers + 1
        );
    }

    // Cross-check against the analytic model, which charges the gathered
    // weights at 1 byte/element for int8 storage. It counts the replicated
    // K/V projections and norm vectors the runtime never gathers, so the
    // match is approximate; the scale overhead is removed explicitly since
    // the analytic model folds it into its per-element byte rate.
    let analytic: f64 = layout
        .layer_comm(cfg, (b * l) as f64)
        .iter()
        .filter(|p| p.is_weights)
        .map(|p| p.elements * 1.0)
        .sum::<f64>()
        * cfg.n_layers as f64;
    let measured_values = (values_per_layer * cfg.n_layers) as f64;
    assert!(
        (measured_values - analytic).abs() / analytic < 0.15,
        "measured int8 values {measured_values} vs analytic {analytic}"
    );
}

#[test]
fn int8_halves_weight_gather_bytes_vs_bf16() {
    // The point of the int8 wire format: the same layout moves less than
    // 0.55x the weight-gather bytes of the f32/bf16 path (1 byte vs 2 per
    // element, plus the small per-column scale overhead).
    let model = ReferenceModel::init_random(ModelConfig::tiny(), 72);
    let layout = Layout {
        ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
        attn: AttnSharding::Head,
        mesh: MeshFactors::new(4, 1, 1),
    };
    let bytes = |fmt: WeightFormat| {
        let mut engine =
            PartitionedEngine::new_with_exec(&model, layout, fmt, ExecMode::Overlapped { chunks: 4 });
        let _ = engine.prefill(&prompts(4, 2));
        engine.traffic().reset();
        let _ = engine.decode_step(&[1, 2, 3, 4]);
        engine.traffic().bytes(CollectiveOp::AllGather) as f64
    };
    let ratio = bytes(WeightFormat::Int8) / bytes(WeightFormat::Exact);
    assert!(ratio < 0.75, "int8/f32 weight-gather byte ratio {ratio}");
}
