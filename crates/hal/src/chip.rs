//! Accelerator chip specification.

use crate::units::{ByteCount, Seconds, GB, GIB, TFLOPS};

/// Specification of a single accelerator chip and its torus links.
///
/// The analytical model (in `esti-core`) and the network simulator (in
/// `esti-netsim`) both consume this description, so a single struct defines
/// the hardware for every experiment.
///
/// Interconnect bandwidth is the paper's headline per-chip figure (270 GB/s
/// for TPU v4) spread evenly over the three torus axes; a collective that
/// runs along one axis has `interconnect_bw / 3` bytes/s available per chip,
/// and collectives running along two or three axes concurrently scale
/// accordingly (Section 3.1, Appendix A.1).
///
/// # Examples
///
/// ```
/// use esti_hal::ChipSpec;
///
/// let chip = ChipSpec::tpu_v4();
/// assert_eq!(chip.torus_axes, 3);
/// // One axis gets a third of the interconnect bandwidth.
/// assert!((chip.axis_bandwidth(1) - 90e9).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Human-readable name, e.g. `"TPU v4"`.
    pub name: String,
    /// Peak dense-matmul throughput in FLOP/s (multiply+add counted as 2).
    pub peak_flops: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: ByteCount,
    /// HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// Total chip-to-chip interconnect bandwidth in bytes/s, summed over all
    /// torus links of the chip.
    pub interconnect_bw: f64,
    /// Number of torus axes the interconnect is spread over (3 for TPU v4).
    pub torus_axes: u32,
}

impl ChipSpec {
    /// The TPU v4 specification from Section 4 of the paper: 275 TFLOPS
    /// bf16, 32 GiB HBM at 1200 GB/s, 270 GB/s interconnect on a 3D torus.
    #[must_use]
    pub fn tpu_v4() -> Self {
        ChipSpec {
            name: "TPU v4".to_owned(),
            peak_flops: 275.0 * TFLOPS,
            hbm_capacity: 32.0 * GIB,
            hbm_bandwidth: 1200.0 * GB,
            interconnect_bw: 270.0 * GB,
            torus_axes: 3,
        }
    }

    /// An A100-80GiB-like specification (312 TFLOPS bf16, 80 GiB HBM at
    /// 2039 GB/s, 600 GB/s NVLink), used when replaying the
    /// FasterTransformer comparison of Section 5. NVLink is an all-to-all
    /// fabric rather than a torus; we model it as a single fat axis.
    #[must_use]
    pub fn a100_80g() -> Self {
        ChipSpec {
            name: "A100 80GiB".to_owned(),
            peak_flops: 312.0 * TFLOPS,
            hbm_capacity: 80.0 * GIB,
            hbm_bandwidth: 2039.0 * GB,
            interconnect_bw: 600.0 * GB,
            torus_axes: 1,
        }
    }

    /// Bandwidth in bytes/s available to a collective using `axes` of the
    /// torus concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is zero or exceeds [`ChipSpec::torus_axes`].
    #[must_use]
    pub fn axis_bandwidth(&self, axes: u32) -> f64 {
        assert!(
            axes >= 1 && axes <= self.torus_axes,
            "collective must use between 1 and {} axes, got {axes}",
            self.torus_axes
        );
        self.interconnect_bw * f64::from(axes) / f64::from(self.torus_axes)
    }

    /// Time to move `bytes` between HBM and the compute core of one chip.
    #[must_use]
    pub fn hbm_transfer_time(&self, bytes: u64) -> Seconds {
        bytes as f64 / self.hbm_bandwidth
    }

    /// Time to execute `flops` floating-point operations at peak throughput.
    #[must_use]
    pub fn compute_time_at_peak(&self, flops: f64) -> Seconds {
        flops / self.peak_flops
    }

    /// Returns a copy with the interconnect bandwidth scaled by `factor`,
    /// useful for sensitivity sweeps ("what if the network were 2x faster").
    #[must_use]
    pub fn with_interconnect_scale(&self, factor: f64) -> Self {
        let mut spec = self.clone();
        spec.interconnect_bw *= factor;
        spec.name = format!("{} (interconnect x{factor})", self.name);
        spec
    }
}

impl Default for ChipSpec {
    /// Defaults to [`ChipSpec::tpu_v4`], the paper's evaluation platform.
    fn default() -> Self {
        ChipSpec::tpu_v4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_v4_headline_numbers() {
        let chip = ChipSpec::tpu_v4();
        assert_eq!(chip.peak_flops, 275e12);
        assert_eq!(chip.hbm_capacity, 32.0 * GIB);
        assert_eq!(chip.hbm_bandwidth, 1.2e12);
        assert_eq!(chip.interconnect_bw, 270e9);
    }

    #[test]
    fn axis_bandwidth_splits_three_ways() {
        let chip = ChipSpec::tpu_v4();
        assert!((chip.axis_bandwidth(1) - 90e9).abs() < 1e-6);
        assert!((chip.axis_bandwidth(2) - 180e9).abs() < 1e-6);
        assert!((chip.axis_bandwidth(3) - 270e9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "between 1 and 3")]
    fn axis_bandwidth_rejects_zero_axes() {
        let _ = ChipSpec::tpu_v4().axis_bandwidth(0);
    }

    #[test]
    #[should_panic(expected = "between 1 and 3")]
    fn axis_bandwidth_rejects_too_many_axes() {
        let _ = ChipSpec::tpu_v4().axis_bandwidth(4);
    }

    #[test]
    fn hbm_transfer_time_is_linear() {
        let chip = ChipSpec::tpu_v4();
        let t1 = chip.hbm_transfer_time(1 << 30);
        let t2 = chip.hbm_transfer_time(1 << 31);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn peak_compute_time() {
        let chip = ChipSpec::tpu_v4();
        // 275 TFLOP of work should take exactly one second at peak.
        assert!((chip.compute_time_at_peak(275e12) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interconnect_scaling() {
        let chip = ChipSpec::tpu_v4().with_interconnect_scale(2.0);
        assert!((chip.interconnect_bw - 540e9).abs() < 1e-3);
        assert!(chip.name.contains("x2"));
    }

    #[test]
    fn a100_uses_single_axis_fabric() {
        let chip = ChipSpec::a100_80g();
        assert_eq!(chip.torus_axes, 1);
        assert!((chip.axis_bandwidth(1) - 600e9).abs() < 1e-3);
    }
}
