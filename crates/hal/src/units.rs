//! Scalar unit aliases and constants used throughout the workspace.
//!
//! Times are plain `f64` seconds and sizes plain `f64`/`u64` bytes; the
//! aliases exist to make signatures self-describing without the friction of
//! full newtypes in arithmetic-heavy cost formulas.

/// A duration in seconds.
pub type Seconds = f64;

/// A size in bytes (fractional values arise from per-chip division).
pub type ByteCount = f64;

/// One decimal gigabyte (10^9 bytes), the unit used for link bandwidths.
pub const GB: f64 = 1e9;

/// One binary gibibyte (2^30 bytes), the unit used for HBM capacity.
pub const GIB: f64 = (1u64 << 30) as f64;

/// One decimal megabyte (10^6 bytes).
pub const MB: f64 = 1e6;

/// One teraflop per second.
pub const TFLOPS: f64 = 1e12;

/// Formats a duration with an adaptive unit (`s`, `ms`, `us`).
///
/// # Examples
///
/// ```
/// assert_eq!(esti_hal::units::format_seconds(0.0285), "28.50ms");
/// assert_eq!(esti_hal::units::format_seconds(1.9), "1.900s");
/// ```
pub fn format_seconds(t: Seconds) -> String {
    if t >= 1.0 {
        format!("{t:.3}s")
    } else if t >= 1e-3 {
        format!("{:.2}ms", t * 1e3)
    } else {
        format!("{:.1}us", t * 1e6)
    }
}

/// Formats a byte count with an adaptive unit (`B`, `KiB`, `MiB`, `GiB`).
///
/// # Examples
///
/// ```
/// assert_eq!(esti_hal::units::format_bytes(1536.0), "1.50KiB");
/// ```
pub fn format_bytes(b: ByteCount) -> String {
    const KIB: f64 = 1024.0;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2}KiB", b / KIB)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(GB, 1e9);
        assert_eq!(GIB, 1073741824.0);
    }

    #[test]
    fn format_seconds_units() {
        assert_eq!(format_seconds(2.5), "2.500s");
        assert_eq!(format_seconds(0.002), "2.00ms");
        assert_eq!(format_seconds(0.0000005), "0.5us");
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(12.0), "12B");
        assert_eq!(format_bytes(2048.0), "2.00KiB");
        assert_eq!(format_bytes(3.0 * 1024.0 * 1024.0), "3.00MiB");
        assert_eq!(format_bytes(1.5 * GIB), "1.50GiB");
    }
}
