//! Element data types used in memory and communication accounting.

use std::fmt;

/// An element type, as it contributes to memory footprint and traffic.
///
/// The paper's cost model cares only about *byte width*: bf16 weights cost
/// two bytes per parameter of HBM traffic, int8-quantized weights cost one
/// (Section 3.6). Arithmetic is always performed in bf16/f32 regardless of
/// the storage type, matching the paper ("the matmuls still use bfloat16
/// arithmetic").
///
/// # Examples
///
/// ```
/// use esti_hal::DType;
/// assert_eq!(DType::Bf16.bytes(), 2);
/// assert!(DType::Int8.bytes() < DType::F32.bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit IEEE float: accumulators and reference computations.
    F32,
    /// bfloat16: the native activation/weight format on the modeled chip.
    Bf16,
    /// 8-bit signed integer with per-channel scales (AQT-style weight
    /// quantization, Section 3.6).
    Int8,
}

impl DType {
    /// Width of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::Bf16 => 2,
            DType::Int8 => 1,
        }
    }

    /// Width of one element in bytes as `f64`, convenient in cost formulas.
    #[must_use]
    pub const fn bytes_f(self) -> f64 {
        self.bytes() as f64
    }

    /// Short lowercase name (`"f32"`, `"bf16"`, `"int8"`), used in reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::Bf16 => "bf16",
            DType::Int8 => "int8",
        }
    }

    /// All supported dtypes, for sweeps.
    #[must_use]
    pub const fn all() -> [DType; 3] {
        [DType::F32, DType::Bf16, DType::Int8]
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for DType {
    /// The default storage type is bf16, the paper's baseline weight format.
    fn default() -> Self {
        DType::Bf16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::Int8.bytes(), 1);
    }

    #[test]
    fn display_matches_name() {
        for d in DType::all() {
            assert_eq!(d.to_string(), d.name());
        }
    }

    #[test]
    fn ordering_by_declaration_not_width() {
        // Ord exists for use in BTreeMap keys; sanity-check it is stable.
        assert!(DType::F32 < DType::Bf16);
    }

    #[test]
    fn default_is_bf16() {
        assert_eq!(DType::default(), DType::Bf16);
    }
}
