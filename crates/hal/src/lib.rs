//! Hardware abstraction layer for the `esti` inference-scaling simulator.
//!
//! This crate describes the *accelerator chip* that every other crate reasons
//! about: peak matrix-multiply throughput, high-bandwidth-memory (HBM)
//! capacity and bandwidth, and chip-to-chip interconnect bandwidth on a 3D
//! torus. The default specification, [`ChipSpec::tpu_v4`], matches the
//! numbers published in Section 4 of *Efficiently Scaling Transformer
//! Inference* (Pope et al., MLSYS 2023): 275 TFLOPS of bfloat16 arithmetic,
//! 32 GiB of HBM at 1200 GB/s, and 270 GB/s of interconnect bandwidth spread
//! over the three torus axes.
//!
//! The crate also defines [`DType`], the element types that appear in the
//! paper's memory accounting (bfloat16 weights/activations, int8 quantized
//! weights, float32 accumulators), so that byte counts are computed the same
//! way everywhere.
//!
//! # Examples
//!
//! ```
//! use esti_hal::{ChipSpec, DType};
//!
//! let chip = ChipSpec::tpu_v4();
//! // Time to stream 16 GiB of weights from HBM on one chip:
//! let t = chip.hbm_transfer_time(16 * (1 << 30));
//! assert!(t > 0.013 && t < 0.015);
//! assert_eq!(DType::Int8.bytes(), 1);
//! ```

pub mod chip;
pub mod dtype;
pub mod units;

pub use chip::ChipSpec;
pub use dtype::DType;
pub use units::{ByteCount, Seconds, GB, GIB, MB, TFLOPS};
