//! The model checker checking itself: it must find races and deadlocks
//! that depend on scheduling, and pass race-free protocols.

use loom::sync::{Arc, Condvar, Mutex};

#[test]
fn finds_interleavings_and_passes_atomic_updates() {
    // Increment under a single critical section: correct under every
    // interleaving, so the model must complete without a failure.
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0));
        let c2 = Arc::clone(&counter);
        let h = loom::thread::spawn(move || {
            *c2.lock().expect("lock") += 1;
        });
        *counter.lock().expect("lock") += 1;
        h.join().expect("join");
        assert_eq!(*counter.lock().expect("lock"), 2);
    });
}

#[test]
#[should_panic(expected = "model check failed")]
fn finds_lost_update_race() {
    // Read and write in separate critical sections: some interleaving has
    // both threads read 0 and both write 1, losing an update. The checker
    // must find that schedule.
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0));
        let c2 = Arc::clone(&counter);
        let h = loom::thread::spawn(move || {
            let seen = *c2.lock().expect("lock");
            *c2.lock().expect("lock") = seen + 1;
        });
        let seen = *counter.lock().expect("lock");
        *counter.lock().expect("lock") = seen + 1;
        h.join().expect("join");
        assert_eq!(*counter.lock().expect("lock"), 2);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn finds_ab_ba_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = loom::thread::spawn(move || {
            let _gb = b2.lock().expect("lock b");
            let _ga = a2.lock().expect("lock a");
        });
        let _ga = a.lock().expect("lock a");
        let _gb = b.lock().expect("lock b");
        drop((_ga, _gb));
        h.join().expect("join");
    });
}

#[test]
fn condvar_handoff_is_race_free() {
    // Producer sets a flag and notifies; consumer waits on the predicate.
    // Correct under every interleaving, including notify-before-wait.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (flag, cv) = &*p2;
            *flag.lock().expect("lock") = true;
            cv.notify_all();
        });
        let (flag, cv) = &*pair;
        let mut ready = flag.lock().expect("lock");
        while !*ready {
            ready = cv.wait(ready).expect("wait");
        }
        drop(ready);
        h.join().expect("join");
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn missed_wakeup_without_predicate_deadlocks() {
    // Consumer waits without re-checking a predicate first: if the
    // producer's notify lands before the wait, the wakeup is lost forever.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (_flag, cv) = &*p2;
            cv.notify_all();
        });
        let (flag, cv) = &*pair;
        let guard = flag.lock().expect("lock");
        let guard = cv.wait(guard).expect("wait");
        drop(guard);
        h.join().expect("join");
    });
}
