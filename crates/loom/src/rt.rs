//! Scheduler runtime: serializes managed OS threads through a token and
//! explores scheduling decisions by depth-first search with replay.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to abandon threads of a failed iteration. Threads
/// unwinding with this payload did not themselves fail; they are being torn
/// down because another thread panicked or a deadlock was detected.
pub(crate) struct Abandoned;

/// What a managed thread is currently doing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Ready to run (or running, if `current` points at it).
    Runnable,
    /// Waiting to acquire the mutex with this resource id.
    BlockedMutex(usize),
    /// Waiting on the condvar with this resource id.
    BlockedCv(usize),
    /// Waiting on the condvar with this resource id, with a timeout: the
    /// wait expires (the thread becomes runnable with its timed-out flag
    /// set) if the run otherwise reaches quiescence.
    BlockedCvTimed(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    /// Returned or unwound; never runs again.
    Finished,
}

impl TState {
    fn is_blocked(self) -> bool {
        matches!(
            self,
            TState::BlockedMutex(_)
                | TState::BlockedCv(_)
                | TState::BlockedCvTimed(_)
                | TState::BlockedJoin(_)
        )
    }
}

impl State {
    /// Whether thread `me` holds the scheduler token and may run.
    fn scheduled(&self, me: usize) -> bool {
        self.current == me && self.threads[me] == TState::Runnable
    }
}

struct State {
    threads: Vec<TState>,
    /// Per-thread flag: the thread's last timed condvar wait expired
    /// (rather than being notified). Read and cleared by the waiter.
    timed_out: Vec<bool>,
    /// The one thread allowed to run user code right now.
    current: usize,
    /// Logical owner of each registered mutex.
    mutex_held: Vec<Option<usize>>,
    /// Number of registered condvars.
    n_condvars: usize,
    /// Planned decision indices to replay from previous iterations.
    prefix: Vec<usize>,
    /// Next decision position (index into `prefix` while replaying).
    pos: usize,
    /// Candidate-set size at every decision point taken this iteration.
    sizes: Vec<usize>,
    /// Decision index actually taken at every decision point.
    chosen: Vec<usize>,
    /// First failure (panic message or deadlock report), if any.
    failed: Option<String>,
    /// Set on failure: all threads must stop unwinding with [`Abandoned`].
    abort: bool,
}

/// One model-checking iteration's shared runtime.
pub(crate) struct Rt {
    state: StdMutex<State>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The current thread's (runtime, managed thread id), if it is managed.
pub(crate) fn ctx() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Mark the calling OS thread as managed thread `id` of run `rt`.
pub(crate) fn enter(rt: Arc<Rt>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((rt, id)));
}

impl Rt {
    fn new(prefix: Vec<usize>) -> Self {
        Rt {
            state: StdMutex::new(State {
                threads: vec![TState::Runnable],
                timed_out: vec![false],
                current: 0,
                mutex_held: Vec::new(),
                n_condvars: 0,
                prefix,
                pos: 0,
                sizes: Vec::new(),
                chosen: Vec::new(),
                failed: None,
                abort: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a new mutex; returns its resource id.
    pub(crate) fn new_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutex_held.push(None);
        s.mutex_held.len() - 1
    }

    /// Register a new condvar; returns its resource id.
    pub(crate) fn new_condvar(&self) -> usize {
        let mut s = self.lock();
        s.n_condvars += 1;
        s.n_condvars - 1
    }

    /// Register a new managed thread; returns its thread id. The OS thread
    /// backing it must call [`Rt::wait_first`] before running user code.
    pub(crate) fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(TState::Runnable);
        s.timed_out.push(false);
        s.threads.len() - 1
    }

    /// Pick the next thread to run. Called with the state lock held, at
    /// every point where the current thread stops running (yield, block,
    /// exit). Records the decision for DFS replay/backtracking.
    fn pick_next(&self, s: &mut State) {
        if s.abort {
            self.cv.notify_all();
            return;
        }
        let mut candidates: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            // Quiescence: the model has no clock, so timed condvar waits
            // expire exactly here — the earliest point where a real timeout
            // could change behavior. Only if none exist is this a deadlock.
            let State { threads, timed_out, .. } = &mut *s;
            for (i, t) in threads.iter_mut().enumerate() {
                if matches!(*t, TState::BlockedCvTimed(_)) {
                    *t = TState::Runnable;
                    timed_out[i] = true;
                    candidates.push(i);
                }
            }
        }
        if candidates.is_empty() {
            if s.threads.iter().any(|t| t.is_blocked()) {
                let stuck: Vec<String> = s
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_blocked())
                    .map(|(i, t)| format!("thread {i} {t:?}"))
                    .collect();
                s.failed = Some(format!(
                    "deadlock: no thread is runnable but some are blocked [{}]",
                    stuck.join(", ")
                ));
                s.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let idx = if s.pos < s.prefix.len() {
            // Replaying: the candidate set is deterministic given the
            // prefix, so the recorded index is always in range; clamp
            // defensively anyway.
            s.prefix[s.pos].min(candidates.len() - 1)
        } else {
            0
        };
        s.pos += 1;
        s.sizes.push(candidates.len());
        s.chosen.push(idx);
        s.current = candidates[idx];
        self.cv.notify_all();
    }

    /// Block until this thread holds the scheduler token. Panics with
    /// [`Abandoned`] if the iteration was aborted.
    fn wait_turn<'a>(&'a self, me: usize, mut s: StdMutexGuard<'a, State>) {
        while !(s.abort || s.scheduled(me)) {
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let abort = s.abort;
        drop(s);
        if abort {
            std::panic::panic_any(Abandoned);
        }
    }

    /// First gate of a freshly spawned managed thread: wait to be scheduled.
    pub(crate) fn wait_first(&self, me: usize) {
        let s = self.lock();
        self.wait_turn(me, s);
    }

    /// Scheduling point: any runnable thread (including the caller) may be
    /// chosen to run next.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut s = self.lock();
        if s.abort {
            drop(s);
            std::panic::panic_any(Abandoned);
        }
        self.pick_next(&mut s);
        self.wait_turn(me, s);
    }

    /// Logically acquire mutex `rid`, blocking (and rescheduling) while it
    /// is held. Includes a scheduling point before the acquire.
    pub(crate) fn mutex_lock(&self, me: usize, rid: usize) {
        self.yield_point(me);
        self.mutex_lock_relocked(me, rid);
    }

    /// Acquire without the leading scheduling point (used to re-acquire
    /// after a condvar wait, whose wake-up is already a scheduling point).
    fn mutex_lock_relocked(&self, me: usize, rid: usize) {
        let mut s = self.lock();
        loop {
            if s.abort {
                drop(s);
                std::panic::panic_any(Abandoned);
            }
            if s.mutex_held[rid].is_none() {
                s.mutex_held[rid] = Some(me);
                return;
            }
            s.threads[me] = TState::BlockedMutex(rid);
            self.pick_next(&mut s);
            while !(s.abort || s.scheduled(me)) {
                s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Logically release mutex `rid`; contenders become runnable. The
    /// caller keeps the scheduler token (release is not a yield point).
    pub(crate) fn mutex_unlock(&self, me: usize, rid: usize) {
        let mut s = self.lock();
        if s.abort {
            // Unwinding guards must not panic again; just let go.
            return;
        }
        debug_assert_eq!(s.mutex_held[rid], Some(me), "unlock of a mutex not held");
        s.mutex_held[rid] = None;
        for t in &mut s.threads {
            if *t == TState::BlockedMutex(rid) {
                *t = TState::Runnable;
            }
        }
    }

    /// Atomically release mutex `rid`, wait on condvar `cvid`, and
    /// re-acquire the mutex after being notified.
    pub(crate) fn condvar_wait(&self, me: usize, cvid: usize, rid: usize) {
        let mut s = self.lock();
        if s.abort {
            drop(s);
            std::panic::panic_any(Abandoned);
        }
        debug_assert_eq!(s.mutex_held[rid], Some(me), "condvar wait without the lock");
        s.mutex_held[rid] = None;
        for t in &mut s.threads {
            if *t == TState::BlockedMutex(rid) {
                *t = TState::Runnable;
            }
        }
        s.threads[me] = TState::BlockedCv(cvid);
        self.pick_next(&mut s);
        self.wait_turn(me, s);
        self.mutex_lock_relocked(me, rid);
    }

    /// Like [`Rt::condvar_wait`], but the wait may expire at quiescence
    /// (see [`Rt::pick_next`]); returns true iff it did.
    pub(crate) fn condvar_wait_timed(&self, me: usize, cvid: usize, rid: usize) -> bool {
        let mut s = self.lock();
        if s.abort {
            drop(s);
            std::panic::panic_any(Abandoned);
        }
        debug_assert_eq!(s.mutex_held[rid], Some(me), "condvar wait without the lock");
        s.mutex_held[rid] = None;
        for t in &mut s.threads {
            if *t == TState::BlockedMutex(rid) {
                *t = TState::Runnable;
            }
        }
        s.timed_out[me] = false;
        s.threads[me] = TState::BlockedCvTimed(cvid);
        self.pick_next(&mut s);
        self.wait_turn(me, s);
        let timed_out = {
            let mut s = self.lock();
            std::mem::replace(&mut s.timed_out[me], false)
        };
        self.mutex_lock_relocked(me, rid);
        timed_out
    }

    /// Wake one or all waiters of condvar `cvid` (they then contend for the
    /// mutex). Includes a scheduling point before the notify.
    pub(crate) fn condvar_notify(&self, me: usize, cvid: usize, all: bool) {
        self.yield_point(me);
        let mut s = self.lock();
        if s.abort {
            drop(s);
            std::panic::panic_any(Abandoned);
        }
        let State { threads, timed_out, .. } = &mut *s;
        for (i, t) in threads.iter_mut().enumerate() {
            if *t == TState::BlockedCv(cvid) || *t == TState::BlockedCvTimed(cvid) {
                *t = TState::Runnable;
                timed_out[i] = false;
                if !all {
                    break;
                }
            }
        }
    }

    /// Block until thread `target` finishes.
    pub(crate) fn join(&self, me: usize, target: usize) {
        self.yield_point(me);
        let mut s = self.lock();
        while s.threads[target] != TState::Finished {
            if s.abort {
                drop(s);
                std::panic::panic_any(Abandoned);
            }
            s.threads[me] = TState::BlockedJoin(target);
            self.pick_next(&mut s);
            while !(s.abort || s.scheduled(me)) {
                s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let abort = s.abort;
        drop(s);
        if abort {
            std::panic::panic_any(Abandoned);
        }
    }

    /// Mark this thread finished, wake joiners, and hand off the token.
    pub(crate) fn exit(&self, me: usize) {
        let mut s = self.lock();
        s.threads[me] = TState::Finished;
        if s.abort {
            self.cv.notify_all();
            return;
        }
        for t in &mut s.threads {
            if *t == TState::BlockedJoin(me) {
                *t = TState::Runnable;
            }
        }
        self.pick_next(&mut s);
    }

    /// Record a panic from a managed thread and abort the iteration.
    /// [`Abandoned`] unwinds are tear-down, not failures.
    pub(crate) fn handle_panic(&self, me: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut s = self.lock();
        s.threads[me] = TState::Finished;
        if !payload.is::<Abandoned>() && s.failed.is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|m| (*m).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "thread panicked".to_string());
            s.failed = Some(msg);
            s.abort = true;
        }
        self.cv.notify_all();
    }

    /// Wait (from the unmanaged driver thread) for the iteration to end:
    /// either every managed thread finished or the iteration aborted.
    fn wait_done(&self) {
        let mut s = self.lock();
        while !s.abort && s.threads.iter().any(|t| *t != TState::Finished) {
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Model-checking configuration.
pub struct Builder {
    /// Maximum number of interleavings to explore. Exploration is
    /// exhaustive iff the DFS completes within this many iterations.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let max_iterations = std::env::var("ESTI_LOOM_MAX_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4096);
        Builder { max_iterations }
    }
}

impl Builder {
    /// Run `f` under every explored interleaving; panic on the first
    /// failing schedule with its decision trace.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        for iteration in 0..self.max_iterations {
            let rt = Arc::new(Rt::new(prefix.clone()));
            let main = {
                let rt = Arc::clone(&rt);
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    enter(Arc::clone(&rt), 0);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        rt.wait_first(0);
                        f();
                    }));
                    match result {
                        Ok(()) => rt.exit(0),
                        Err(payload) => rt.handle_panic(0, payload),
                    }
                })
            };
            rt.wait_done();
            let _ = main.join();
            let (failed, chosen, sizes) = {
                let s = rt.lock();
                (s.failed.clone(), s.chosen.clone(), s.sizes.clone())
            };
            if let Some(msg) = failed {
                panic!("model check failed (iteration {iteration}, schedule {chosen:?}): {msg}");
            }
            // DFS backtrack: advance the deepest decision that still has an
            // unexplored alternative; exploration is complete when none does.
            let mut next = chosen;
            loop {
                match next.pop() {
                    None => return,
                    Some(taken) => {
                        if taken + 1 < sizes[next.len()] {
                            next.push(taken + 1);
                            break;
                        }
                    }
                }
            }
            prefix = next;
        }
        // Iteration cap reached: bounded (partial) exploration, not a failure.
    }
}

/// Check `f` under every explored thread interleaving (bounded DFS).
///
/// Panics if any interleaving panics, fails an assertion, or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f);
}
