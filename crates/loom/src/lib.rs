//! `esti-loom` — a minimal, dependency-free concurrency model checker with a
//! [loom](https://docs.rs/loom)-compatible API surface.
//!
//! The real `loom` crate is not vendored in this workspace, so this crate
//! provides the subset the collectives tests need: [`model`] re-runs a test
//! closure under every (bounded) interleaving of its threads, serializing
//! real OS threads through a scheduler token and exploring schedules by
//! depth-first search over the scheduling decisions.
//!
//! # What is modeled
//!
//! Threads interleave at *synchronization points*: [`sync::Mutex`] acquire,
//! [`sync::Condvar`] wait/notify, and [`thread::JoinHandle::join`]. Between
//! sync points a thread's code runs atomically — which is exactly the level
//! of granularity needed to model-check a mailbox-and-barrier protocol
//! whose every shared access goes through a mutex.
//!
//! # What is checked
//!
//! * assertion failures and panics in any thread, reported with the
//!   scheduling decision trace that produced them;
//! * deadlocks: a state where no thread is runnable but some are blocked on
//!   a mutex, condvar, or join.
//!
//! # Bounds
//!
//! Exploration is depth-first with replay and is exhaustive when the state
//! space fits under the iteration cap (default 4096, override with the
//! `ESTI_LOOM_MAX_ITERS` environment variable or [`Builder`]). Spurious
//! condvar wakeups are not modeled (an under-approximation; waiters are only
//! woken by notify), and a thread's data accesses between sync points are
//! not reordered.
//!
//! Outside [`model`], the primitives degrade to their `std::sync`
//! equivalents so code written against them still runs normally.

pub mod sync;
pub mod thread;

mod rt;

pub use rt::{model, Builder};
