//! Managed threads: spawned threads register with the current model run's
//! scheduler and interleave only at synchronization points. Outside a model
//! run, spawns degrade to plain `std::thread::spawn`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::ctx;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Managed {
        os: std::thread::JoinHandle<()>,
        /// Managed thread id, for the logical join.
        target: usize,
        /// The child's return value, deposited before it exits.
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned thread; see [`spawn`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawn a thread. Under [`crate::model`] the child is registered with the
/// scheduler and does not start until it is scheduled.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
        Some((rt, _me)) => {
            let target = rt.register_thread();
            let result = Arc::new(StdMutex::new(None));
            let os = {
                let result = Arc::clone(&result);
                std::thread::spawn(move || {
                    crate::rt::enter(Arc::clone(&rt), target);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        rt.wait_first(target);
                        f()
                    }));
                    match outcome {
                        Ok(value) => {
                            *result
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
                            rt.exit(target);
                        }
                        Err(payload) => rt.handle_panic(target, payload),
                    }
                })
            };
            JoinHandle {
                inner: Inner::Managed { os, target, result },
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    ///
    /// # Errors
    ///
    /// Returns the child's panic payload if it panicked (only reachable in
    /// the unmanaged fallback; a managed child's panic aborts the whole
    /// model iteration instead).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Managed { os, target, result } => {
                let (rt, me) = ctx().expect("managed handles are joined from managed threads");
                rt.join(me, target);
                // Logically finished; the OS thread exits imminently.
                os.join()?;
                let value = result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("finished thread deposited its result");
                Ok(value)
            }
        }
    }
}
