//! Mutex and condvar whose blocking goes through the model-checking
//! scheduler when running under [`crate::model`], and through `std::sync`
//! otherwise.

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
};

use crate::rt::{ctx, Rt};

pub use std::sync::Arc;

/// Error half of the `lock()`/`wait()` results. The managed primitives do
/// not actually poison (a panicking iteration aborts wholesale), but the
/// `Result` return keeps the call sites source-compatible with `std::sync`.
#[derive(Debug)]
pub struct PoisonError;

/// A mutex whose lock acquisition is a model-checking scheduling point.
pub struct Mutex<T> {
    rid: OnceLock<usize>,
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releases the logical lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// `(rt, thread id, resource id)` when locked under the scheduler.
    managed: Option<(Arc<Rt>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            rid: OnceLock::new(),
            inner: StdMutex::new(value),
        }
    }

    fn rid(&self, rt: &Rt) -> usize {
        *self.rid.get_or_init(|| rt.new_mutex())
    }

    /// Acquire the lock, scheduling other threads while blocked.
    ///
    /// # Errors
    ///
    /// Never actually errors; see [`PoisonError`].
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError> {
        match ctx() {
            None => {
                let inner = self
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    managed: None,
                })
            }
            Some((rt, me)) => {
                let rid = self.rid(&rt);
                rt.mutex_lock(me, rid);
                // The logical lock is held, so the std mutex must be free.
                let inner = self
                    .inner
                    .try_lock()
                    .expect("scheduler invariant: logical lock held but std mutex contended");
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    managed: Some((rt, me, rid)),
                })
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the logical one so the next logical
        // owner's try_lock cannot race the unlock.
        self.inner.take();
        if let Some((rt, me, rid)) = self.managed.take() {
            rt.mutex_unlock(me, rid);
        }
    }
}

/// A condition variable whose wait/notify are model-checking scheduling
/// points.
pub struct Condvar {
    cvid: OnceLock<usize>,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            cvid: OnceLock::new(),
            inner: StdCondvar::new(),
        }
    }

    fn cvid(&self, rt: &Rt) -> usize {
        *self.cvid.get_or_init(|| rt.new_condvar())
    }

    /// Release `guard`'s lock, wait to be notified, and re-acquire it.
    ///
    /// # Errors
    ///
    /// Never actually errors; see [`PoisonError`].
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, PoisonError> {
        match guard.managed.take() {
            None => {
                let inner = guard.inner.take().expect("guard holds the lock");
                let inner = self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard.inner = Some(inner);
                Ok(guard)
            }
            Some((rt, me, rid)) => {
                let lock = guard.lock;
                // Defuse the guard: wait() releases the lock itself.
                guard.inner.take();
                drop(guard);
                let cvid = self.cvid(&rt);
                rt.condvar_wait(me, cvid, rid);
                let inner = lock
                    .inner
                    .try_lock()
                    .expect("scheduler invariant: logical lock held but std mutex contended");
                Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    managed: Some((rt, me, rid)),
                })
            }
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        match ctx() {
            None => self.inner.notify_all(),
            Some((rt, me)) => {
                let cvid = self.cvid(&rt);
                rt.condvar_notify(me, cvid, true);
            }
        }
    }

    /// Wake one waiter (the lowest-id blocked thread, deterministically).
    pub fn notify_one(&self) {
        match ctx() {
            None => self.inner.notify_one(),
            Some((rt, me)) => {
                let cvid = self.cvid(&rt);
                rt.condvar_notify(me, cvid, false);
            }
        }
    }
}
