//! Mutex and condvar whose blocking goes through the model-checking
//! scheduler when running under [`crate::model`], and through `std::sync`
//! otherwise.

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
};
use std::time::Duration;

use crate::rt::{ctx, Rt};

pub use std::sync::Arc;

/// Error half of the `lock()`/`wait()` results. The managed primitives do
/// not actually poison (a panicking iteration aborts wholesale), but the
/// `Result` return — and `into_inner`, mirroring `std::sync::PoisonError` —
/// keeps the call sites source-compatible with `std::sync`.
pub struct PoisonError<T> {
    inner: T,
}

impl<T> std::fmt::Debug for PoisonError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoisonError { .. }")
    }
}

impl<T> PoisonError<T> {
    /// Recover the guard (or guard/timeout pair) carried by the error.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because the wait expired
/// rather than because it was notified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait ended by timing out.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A mutex whose lock acquisition is a model-checking scheduling point.
pub struct Mutex<T> {
    rid: OnceLock<usize>,
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releases the logical lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// `(rt, thread id, resource id)` when locked under the scheduler.
    managed: Option<(Arc<Rt>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            rid: OnceLock::new(),
            inner: StdMutex::new(value),
        }
    }

    fn rid(&self, rt: &Rt) -> usize {
        *self.rid.get_or_init(|| rt.new_mutex())
    }

    /// Acquire the lock, scheduling other threads while blocked.
    ///
    /// # Errors
    ///
    /// Never actually errors; see [`PoisonError`].
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        match ctx() {
            None => {
                let inner = self
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    managed: None,
                })
            }
            Some((rt, me)) => {
                let rid = self.rid(&rt);
                rt.mutex_lock(me, rid);
                // The logical lock is held, so the std mutex must be free.
                let inner = self
                    .inner
                    .try_lock()
                    .expect("scheduler invariant: logical lock held but std mutex contended");
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    managed: Some((rt, me, rid)),
                })
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the logical one so the next logical
        // owner's try_lock cannot race the unlock.
        self.inner.take();
        if let Some((rt, me, rid)) = self.managed.take() {
            rt.mutex_unlock(me, rid);
        }
    }
}

/// A condition variable whose wait/notify are model-checking scheduling
/// points.
pub struct Condvar {
    cvid: OnceLock<usize>,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            cvid: OnceLock::new(),
            inner: StdCondvar::new(),
        }
    }

    fn cvid(&self, rt: &Rt) -> usize {
        *self.cvid.get_or_init(|| rt.new_condvar())
    }

    /// Release `guard`'s lock, wait to be notified, and re-acquire it.
    ///
    /// # Errors
    ///
    /// Never actually errors; see [`PoisonError`].
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
        match guard.managed.take() {
            None => {
                let inner = guard.inner.take().expect("guard holds the lock");
                let inner = self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard.inner = Some(inner);
                Ok(guard)
            }
            Some((rt, me, rid)) => {
                let lock = guard.lock;
                // Defuse the guard: wait() releases the lock itself.
                guard.inner.take();
                drop(guard);
                let cvid = self.cvid(&rt);
                rt.condvar_wait(me, cvid, rid);
                let inner = lock
                    .inner
                    .try_lock()
                    .expect("scheduler invariant: logical lock held but std mutex contended");
                Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    managed: Some((rt, me, rid)),
                })
            }
        }
    }

    /// Release `guard`'s lock and wait to be notified, giving up after
    /// `dur`. Under the model checker there is no clock: the wait "times
    /// out" exactly when the run reaches quiescence (no thread can make
    /// progress otherwise), which is the earliest schedule on which a real
    /// timeout could matter and the only one that changes behavior.
    ///
    /// # Errors
    ///
    /// Never actually errors; see [`PoisonError`].
    #[allow(clippy::type_complexity)]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> Result<
        (MutexGuard<'a, T>, WaitTimeoutResult),
        PoisonError<(MutexGuard<'a, T>, WaitTimeoutResult)>,
    > {
        match guard.managed.take() {
            None => {
                let inner = guard.inner.take().expect("guard holds the lock");
                let (inner, res) = self
                    .inner
                    .wait_timeout(inner, dur)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard.inner = Some(inner);
                Ok((guard, WaitTimeoutResult { timed_out: res.timed_out() }))
            }
            Some((rt, me, rid)) => {
                let lock = guard.lock;
                // Defuse the guard: the wait releases the lock itself.
                guard.inner.take();
                drop(guard);
                let cvid = self.cvid(&rt);
                let timed_out = rt.condvar_wait_timed(me, cvid, rid);
                let inner = lock
                    .inner
                    .try_lock()
                    .expect("scheduler invariant: logical lock held but std mutex contended");
                Ok((
                    MutexGuard {
                        lock,
                        inner: Some(inner),
                        managed: Some((rt, me, rid)),
                    },
                    WaitTimeoutResult { timed_out },
                ))
            }
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        match ctx() {
            None => self.inner.notify_all(),
            Some((rt, me)) => {
                let cvid = self.cvid(&rt);
                rt.condvar_notify(me, cvid, true);
            }
        }
    }

    /// Wake one waiter (the lowest-id blocked thread, deterministically).
    pub fn notify_one(&self) {
        match ctx() {
            None => self.inner.notify_one(),
            Some((rt, me)) => {
                let cvid = self.cvid(&rt);
                rt.condvar_notify(me, cvid, false);
            }
        }
    }
}
