//! Model hyperparameters and shape accounting.

use esti_hal::DType;

/// Attention variant (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKind {
    /// Standard multihead attention: `n_heads` key/value heads.
    MultiHead,
    /// Multiquery attention: a single key/value head shared by all query
    /// heads (Shazeer 2019; used by PaLM). Shrinks the KV cache by a factor
    /// of `n_heads`.
    MultiQuery,
}

/// Transformer block formulation (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// PaLM's parallel formulation: `y = x + attn(ln(x)) + mlp(ln(x))`, one
    /// layernorm and *one* collective pair per layer.
    Parallel,
    /// The standard serialized formulation:
    /// `x = x + attn(ln1(x)); y = x + mlp(ln2(x))`, two collective pairs.
    Serial,
}

/// Positional-information scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PositionKind {
    /// Rotary positional embeddings applied to Q and K (PaLM).
    Rope,
    /// Learned absolute position embeddings added to the input
    /// (Megatron-Turing NLG).
    Learned,
    /// No positional information (NoPE) — an ablation control.
    None,
}

/// Feedforward variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MlpKind {
    /// SwiGLU (PaLM): three `E × F` matrices (gate, up, down).
    SwiGlu,
    /// Classic two-matrix MLP with GELU (Megatron-Turing NLG).
    Gelu,
}

/// A decoder-only Transformer configuration.
///
/// Named constructors provide every model evaluated in the paper; custom
/// configurations can be built directly since all fields are public.
///
/// # Examples
///
/// ```
/// use esti_model::ModelConfig;
///
/// let m = ModelConfig::palm_62b();
/// assert_eq!(m.n_layers, 64);
/// assert_eq!(m.d_ff, 4 * m.d_model);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Number of Transformer layers.
    pub n_layers: usize,
    /// Model (embedding) dimension `E`/`d_model`.
    pub d_model: usize,
    /// Feedforward intermediate dimension `F`/`d_ff`.
    pub d_ff: usize,
    /// Number of query heads `H`.
    pub n_heads: usize,
    /// Dimension per head.
    pub d_head: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Attention variant.
    pub attention: AttentionKind,
    /// Block formulation.
    pub block: BlockKind,
    /// Feedforward variant.
    pub mlp: MlpKind,
    /// Positional-information scheme.
    pub position: PositionKind,
    /// Maximum sequence length (sizes the learned position table; RoPE
    /// models use it only as a serving-time bound).
    pub max_seq: usize,
}

impl ModelConfig {
    /// PaLM 540B (Chowdhery et al. 2022; Table D.1): 118 layers,
    /// `d_model` 18432, `d_ff` 73728, 48 heads of 256, multiquery
    /// attention, parallel blocks, SwiGLU, 256k vocabulary.
    #[must_use]
    pub fn palm_540b() -> Self {
        ModelConfig {
            name: "PaLM 540B".to_owned(),
            n_layers: 118,
            d_model: 18432,
            d_ff: 73728,
            n_heads: 48,
            d_head: 256,
            vocab: 256_000,
            attention: AttentionKind::MultiQuery,
            block: BlockKind::Parallel,
            mlp: MlpKind::SwiGlu,
            position: PositionKind::Rope,
            max_seq: 2048,
        }
    }

    /// PaLM 540B with the head count padded from 48 to 64 so that heads
    /// partition evenly on 64+ chips (Section 4, "Methodology"). Adds ~18B
    /// parameters, as the paper notes.
    #[must_use]
    pub fn palm_540b_padded() -> Self {
        let mut m = ModelConfig::palm_540b();
        m.name = "PaLM 540B (64 heads)".to_owned();
        m.n_heads = 64;
        m
    }

    /// The multihead-attention control variant of Section 4.2: `d_head`
    /// halved to 128 to keep attention parameter count equal.
    #[must_use]
    pub fn palm_540b_multihead() -> Self {
        let mut m = ModelConfig::palm_540b();
        m.name = "PaLM 540B (multihead)".to_owned();
        m.attention = AttentionKind::MultiHead;
        m.d_head = 128;
        m
    }

    /// The 8-layer PaLM 540B variant used in Figure 8.
    #[must_use]
    pub fn palm_540b_8layer() -> Self {
        let mut m = ModelConfig::palm_540b_padded();
        m.name = "PaLM 540B (8 layers)".to_owned();
        m.n_layers = 8;
        m
    }

    /// PaLM 62B: 64 layers, `d_model` 8192, 32 heads of 256.
    #[must_use]
    pub fn palm_62b() -> Self {
        ModelConfig {
            name: "PaLM 62B".to_owned(),
            n_layers: 64,
            d_model: 8192,
            d_ff: 32768,
            n_heads: 32,
            d_head: 256,
            vocab: 256_000,
            attention: AttentionKind::MultiQuery,
            block: BlockKind::Parallel,
            mlp: MlpKind::SwiGlu,
            position: PositionKind::Rope,
            max_seq: 2048,
        }
    }

    /// PaLM 8B: 32 layers, `d_model` 4096, 16 heads of 256.
    #[must_use]
    pub fn palm_8b() -> Self {
        ModelConfig {
            name: "PaLM 8B".to_owned(),
            n_layers: 32,
            d_model: 4096,
            d_ff: 16384,
            n_heads: 16,
            d_head: 256,
            vocab: 256_000,
            attention: AttentionKind::MultiQuery,
            block: BlockKind::Parallel,
            mlp: MlpKind::SwiGlu,
            position: PositionKind::Rope,
            max_seq: 2048,
        }
    }

    /// Megatron-Turing NLG 530B (Smith et al. 2022; Table D.1): 105 layers,
    /// `d_model` 20480, `d_ff` 81920, 128 heads of 160, multihead
    /// attention, serial blocks, two-matrix GELU MLP.
    #[must_use]
    pub fn mt_nlg_530b() -> Self {
        ModelConfig {
            name: "MT-NLG 530B".to_owned(),
            n_layers: 105,
            d_model: 20480,
            d_ff: 81920,
            n_heads: 128,
            d_head: 160,
            vocab: 51_200,
            attention: AttentionKind::MultiHead,
            block: BlockKind::Serial,
            mlp: MlpKind::Gelu,
            position: PositionKind::Learned,
            max_seq: 2048,
        }
    }

    /// All four paper-scale models, for sweeps.
    #[must_use]
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::palm_8b(),
            ModelConfig::palm_62b(),
            ModelConfig::palm_540b(),
            ModelConfig::mt_nlg_530b(),
        ]
    }

    /// A tiny structurally-PaLM config for functional tests: multiquery,
    /// parallel block, SwiGLU.
    #[must_use]
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny".to_owned(),
            n_layers: 2,
            d_model: 16,
            d_ff: 32,
            n_heads: 4,
            d_head: 8,
            vocab: 41,
            attention: AttentionKind::MultiQuery,
            block: BlockKind::Parallel,
            mlp: MlpKind::SwiGlu,
            position: PositionKind::Rope,
            max_seq: 64,
        }
    }

    /// A tiny structurally-Megatron config: multihead, serial block, GELU.
    #[must_use]
    pub fn tiny_multihead() -> Self {
        ModelConfig {
            name: "tiny-mh".to_owned(),
            n_layers: 2,
            d_model: 16,
            d_ff: 32,
            n_heads: 4,
            d_head: 8,
            vocab: 41,
            attention: AttentionKind::MultiHead,
            block: BlockKind::Serial,
            mlp: MlpKind::Gelu,
            position: PositionKind::Learned,
            max_seq: 64,
        }
    }

    /// Number of key/value heads: `n_heads` for multihead, 1 for multiquery.
    #[must_use]
    pub fn n_kv_heads(&self) -> usize {
        match self.attention {
            AttentionKind::MultiHead => self.n_heads,
            AttentionKind::MultiQuery => 1,
        }
    }

    /// Width of the fused attention output, `n_heads * d_head` (may differ
    /// from `d_model`, e.g. 12288 vs 18432 on PaLM 540B).
    #[must_use]
    pub fn attn_dim(&self) -> usize {
        self.n_heads * self.d_head
    }

    /// Number of `E × F`-shaped matrices in the MLP.
    #[must_use]
    pub fn mlp_matrices(&self) -> usize {
        match self.mlp {
            MlpKind::SwiGlu => 3,
            MlpKind::Gelu => 2,
        }
    }

    /// Parameters in one Transformer layer (attention + MLP + norms).
    #[must_use]
    pub fn params_per_layer(&self) -> u64 {
        let e = self.d_model as u64;
        let f = self.d_ff as u64;
        let qo = 2 * e * self.attn_dim() as u64; // W_Q and W_O
        let kv = 2 * e * (self.n_kv_heads() * self.d_head) as u64; // W_K and W_V
        let mlp = self.mlp_matrices() as u64 * e * f;
        let norms = match self.block {
            BlockKind::Parallel => e,
            BlockKind::Serial => 2 * e,
        };
        qo + kv + mlp + norms
    }

    /// Embedding parameters (input/output embeddings are shared,
    /// PaLM-style), plus the learned position table if the model has one.
    #[must_use]
    pub fn embedding_params(&self) -> u64 {
        let pos = match self.position {
            PositionKind::Rope | PositionKind::None => 0,
            PositionKind::Learned => self.max_seq as u64 * self.d_model as u64,
        };
        self.vocab as u64 * self.d_model as u64 + pos
    }

    /// Total parameter count `N`.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        self.n_layers as u64 * self.params_per_layer()
            + self.embedding_params()
            + self.d_model as u64 // final layernorm
    }

    /// Matmul FLOPs per token, `2N` (Kaplan et al. 2020; Section 2). This is
    /// the numerator of the paper's MFU definition and excludes the
    /// attention dot products.
    #[must_use]
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.param_count() as f64
    }

    /// Attention-einsum FLOPs per token at a given context length: the
    /// `QK^T` and `AV` products, `4 · n_layers · H · d_head · L` (counted
    /// with multiply+add = 2). Excluded from MFU but included in latency.
    #[must_use]
    pub fn attn_flops_per_token(&self, context_len: usize) -> f64 {
        4.0 * self.n_layers as f64
            * self.n_heads as f64
            * self.d_head as f64
            * context_len as f64
    }

    /// Bytes of model weights at a given storage type.
    #[must_use]
    pub fn weight_bytes(&self, dtype: DType) -> f64 {
        self.param_count() as f64 * dtype.bytes_f()
    }

    /// KV-cache bytes for *one token of one sequence* across all layers
    /// (key + value), at the given storage type. Multiply by `B × L` for a
    /// batch. Multiquery attention divides this by `n_heads` relative to
    /// multihead (Section 3.3).
    #[must_use]
    pub fn kv_bytes_per_token(&self, dtype: DType) -> f64 {
        2.0 * self.n_layers as f64
            * (self.n_kv_heads() * self.d_head) as f64
            * dtype.bytes_f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() / b.abs() <= rel
    }

    #[test]
    fn palm_540b_param_count() {
        let n = ModelConfig::palm_540b().param_count() as f64;
        assert!(close(n, 540.35e9, 0.005), "540B params: {n:.3e}");
    }

    #[test]
    fn palm_padding_adds_about_18b() {
        let base = ModelConfig::palm_540b().param_count() as f64;
        let padded = ModelConfig::palm_540b_padded().param_count() as f64;
        let added = padded - base;
        assert!(close(added, 18e9, 0.05), "padding added {added:.3e}");
    }

    #[test]
    fn palm_62b_param_count() {
        let n = ModelConfig::palm_62b().param_count() as f64;
        assert!(close(n, 62.5e9, 0.01), "62B params: {n:.3e}");
    }

    #[test]
    fn palm_8b_param_count() {
        let n = ModelConfig::palm_8b().param_count() as f64;
        assert!(close(n, 8.63e9, 0.01), "8B params: {n:.3e}");
    }

    #[test]
    fn mt_nlg_param_count() {
        let n = ModelConfig::mt_nlg_530b().param_count() as f64;
        assert!(close(n, 530e9, 0.01), "530B params: {n:.3e}");
    }

    #[test]
    fn multihead_variant_keeps_attention_params() {
        // Section 4.2: d_head shrinks 256 -> 128 so that attention parameter
        // count stays constant between the MQ and MH variants.
        let mq = ModelConfig::palm_540b();
        let mh = ModelConfig::palm_540b_multihead();
        let attn = |m: &ModelConfig| {
            2 * m.d_model as u64 * m.attn_dim() as u64
                + 2 * m.d_model as u64 * (m.n_kv_heads() * m.d_head) as u64
        };
        // MH: Q+O = 2*E*48*128, K+V = 2*E*48*128 -> total 4*E*6144
        // MQ: Q+O = 2*E*48*256 = 4*E*6144, K+V = 2*E*256 (small)
        let (a_mq, a_mh) = (attn(&mq) as f64, attn(&mh) as f64);
        assert!(close(a_mh, a_mq, 0.05), "attn params: mq {a_mq:.3e} mh {a_mh:.3e}");
    }

    #[test]
    fn multiquery_kv_cache_is_n_heads_smaller() {
        let mq = ModelConfig::palm_540b();
        let mut mh = mq.clone();
        mh.attention = AttentionKind::MultiHead;
        let ratio = mh.kv_bytes_per_token(DType::Bf16) / mq.kv_bytes_per_token(DType::Bf16);
        assert_eq!(ratio, mq.n_heads as f64);
    }

    #[test]
    fn kv_cache_headline_number() {
        // Section 2.1: for a 500B+ multihead model at batch 512 and context
        // 2048, the KV cache totals ~3TB. Check with the MH variant of PaLM
        // (d_head 128): 2*118*48*128*2B * 512 * 2048 = 3.05e12.
        let mh = ModelConfig::palm_540b_multihead();
        let total = mh.kv_bytes_per_token(DType::Bf16) * 512.0 * 2048.0;
        assert!(close(total, 3e12, 0.1), "KV cache total {total:.3e}");
    }

    #[test]
    fn flops_per_token_is_2n() {
        let m = ModelConfig::palm_8b();
        assert_eq!(m.flops_per_token(), 2.0 * m.param_count() as f64);
    }

    #[test]
    fn attn_flops_scale_with_context() {
        let m = ModelConfig::palm_540b();
        assert_eq!(
            m.attn_flops_per_token(2048),
            2.0 * m.attn_flops_per_token(1024)
        );
        // Attention flops are small relative to matmul flops at ctx 2048.
        assert!(m.attn_flops_per_token(2048) < 0.05 * m.flops_per_token());
    }

    #[test]
    fn weight_bytes_by_dtype() {
        let m = ModelConfig::palm_62b();
        assert_eq!(m.weight_bytes(DType::Int8), m.weight_bytes(DType::Bf16) / 2.0);
        assert_eq!(m.weight_bytes(DType::F32), m.weight_bytes(DType::Bf16) * 2.0);
    }

    #[test]
    fn tiny_configs_are_consistent() {
        for m in [ModelConfig::tiny(), ModelConfig::tiny_multihead()] {
            assert!(m.param_count() > 0);
            assert_eq!(m.attn_dim(), m.n_heads * m.d_head);
            assert!(m.n_kv_heads() <= m.n_heads);
        }
        assert_eq!(ModelConfig::tiny().n_kv_heads(), 1);
        assert_eq!(ModelConfig::tiny_multihead().n_kv_heads(), 4);
    }
}
