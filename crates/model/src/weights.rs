//! Weight containers and random initialization.

use rand::rngs::StdRng;
use rand::SeedableRng;

use esti_tensor::Tensor;

use crate::config::{BlockKind, MlpKind, ModelConfig, PositionKind};

/// Weights of one Transformer layer.
///
/// Matrix conventions (inputs on the left, `x · W`):
/// `wq: [E, H·dh]`, `wk/wv: [E, Hkv·dh]`, `wo: [H·dh, E]`,
/// `w_in/w_gate: [E, F]`, `w_out: [F, E]`. `w_gate` is `None` for
/// two-matrix (GELU) MLPs; `ln2` is `None` for parallel blocks, which use a
/// single layernorm (Section 3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Query projection `[E, H·dh]`.
    pub wq: Tensor,
    /// Key projection `[E, Hkv·dh]`.
    pub wk: Tensor,
    /// Value projection `[E, Hkv·dh]`.
    pub wv: Tensor,
    /// Output projection `[H·dh, E]`.
    pub wo: Tensor,
    /// MLP input projection `[E, F]`.
    pub w_in: Tensor,
    /// SwiGLU gate projection `[E, F]`, absent for GELU MLPs.
    pub w_gate: Option<Tensor>,
    /// MLP output projection `[F, E]`.
    pub w_out: Tensor,
    /// First (or only) layernorm gain `[E]`.
    pub ln1: Tensor,
    /// Second layernorm gain `[E]` for serial blocks.
    pub ln2: Option<Tensor>,
}

/// Full model weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    /// Shared input/output embedding `[V, E]`.
    pub embed: Tensor,
    /// Learned position embeddings `[max_seq, E]`, present only for
    /// [`PositionKind::Learned`] models.
    pub pos_embed: Option<Tensor>,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final layernorm gain `[E]`.
    pub ln_final: Tensor,
}

impl Weights {
    /// Draws random weights for `cfg` with variance-preserving scales,
    /// deterministically from `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use esti_model::{ModelConfig, Weights};
    /// let w = Weights::random(&ModelConfig::tiny(), 0);
    /// assert_eq!(w.layers.len(), 2);
    /// ```
    #[must_use]
    pub fn random(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = cfg.d_model;
        let f = cfg.d_ff;
        let qdim = cfg.attn_dim();
        let kvdim = cfg.n_kv_heads() * cfg.d_head;
        let se = 1.0 / (e as f32).sqrt();
        let sf = 1.0 / (f as f32).sqrt();
        let sq = 1.0 / (qdim as f32).sqrt();
        let layers = (0..cfg.n_layers)
            .map(|_| LayerWeights {
                wq: Tensor::randn(&mut rng, vec![e, qdim], se),
                wk: Tensor::randn(&mut rng, vec![e, kvdim], se),
                wv: Tensor::randn(&mut rng, vec![e, kvdim], se),
                wo: Tensor::randn(&mut rng, vec![qdim, e], sq),
                w_in: Tensor::randn(&mut rng, vec![e, f], se),
                w_gate: match cfg.mlp {
                    MlpKind::SwiGlu => Some(Tensor::randn(&mut rng, vec![e, f], se)),
                    MlpKind::Gelu => None,
                },
                w_out: Tensor::randn(&mut rng, vec![f, e], sf),
                ln1: Tensor::ones(vec![e]),
                ln2: match cfg.block {
                    BlockKind::Parallel => None,
                    BlockKind::Serial => Some(Tensor::ones(vec![e])),
                },
            })
            .collect();
        Weights {
            embed: Tensor::randn(&mut rng, vec![cfg.vocab, e], 0.5),
            pos_embed: match cfg.position {
                PositionKind::Rope | PositionKind::None => None,
                PositionKind::Learned => {
                    Some(Tensor::randn(&mut rng, vec![cfg.max_seq, e], 0.1))
                }
            },
            layers,
            ln_final: Tensor::ones(vec![e]),
        }
    }

    /// Actual parameter count held in the tensors, for cross-checking
    /// [`ModelConfig::param_count`].
    #[must_use]
    pub fn actual_param_count(&self) -> u64 {
        let layer_params: u64 = self
            .layers
            .iter()
            .map(|l| {
                (l.wq.numel()
                    + l.wk.numel()
                    + l.wv.numel()
                    + l.wo.numel()
                    + l.w_in.numel()
                    + l.w_gate.as_ref().map_or(0, Tensor::numel)
                    + l.w_out.numel()
                    + l.ln1.numel()
                    + l.ln2.as_ref().map_or(0, Tensor::numel)) as u64
            })
            .sum();
        layer_params
            + self.embed.numel() as u64
            + self.pos_embed.as_ref().map_or(0, Tensor::numel) as u64
            + self.ln_final.numel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_follow_config() {
        let cfg = ModelConfig::tiny();
        let w = Weights::random(&cfg, 1);
        let l = &w.layers[0];
        assert_eq!(l.wq.shape(), &[16, 32]);
        assert_eq!(l.wk.shape(), &[16, 8]); // single KV head
        assert_eq!(l.wo.shape(), &[32, 16]);
        assert!(l.w_gate.is_some());
        assert!(l.ln2.is_none());
        assert_eq!(w.embed.shape(), &[41, 16]);
    }

    #[test]
    fn multihead_serial_shapes() {
        let cfg = ModelConfig::tiny_multihead();
        let w = Weights::random(&cfg, 1);
        let l = &w.layers[0];
        assert_eq!(l.wk.shape(), &[16, 32]); // full KV heads
        assert!(l.w_gate.is_none());
        assert!(l.ln2.is_some());
    }

    #[test]
    fn actual_param_count_matches_config_formula() {
        for cfg in [ModelConfig::tiny(), ModelConfig::tiny_multihead()] {
            let w = Weights::random(&cfg, 2);
            assert_eq!(w.actual_param_count(), cfg.param_count(), "{}", cfg.name);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = ModelConfig::tiny();
        let a = Weights::random(&cfg, 7);
        let b = Weights::random(&cfg, 7);
        let c = Weights::random(&cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
