//! The attention key/value cache.
//!
//! The KV cache is the second-largest tensor group in generative inference
//! (Section 2, "Memory costs"): keys and values of every layer must persist
//! for the whole decode. This container stores them as preallocated
//! `[B, capacity, Hkv · d_head]` slabs per layer with a valid length per
//! batch row, so decode steps write in place (amortized O(1) per token
//! instead of rebuilding the whole cache via concat), and so sequences of
//! different ages can coexist in one batch — the slot management that
//! continuous batching needs.

use esti_tensor::Tensor;

/// One layer's key/value slab: `k`/`v` are `[B, capacity, D]` buffers of
/// which row `r` holds `lens[r]` valid positions (the rest is scratch).
#[derive(Debug, Clone)]
struct Entry {
    k: Tensor,
    v: Tensor,
    lens: Vec<usize>,
}

impl Entry {
    fn capacity(&self) -> usize {
        self.k.dim(1)
    }

    fn width(&self) -> usize {
        self.k.dim(2)
    }

    fn batch(&self) -> usize {
        self.k.dim(0)
    }

    /// Grows both slabs to at least `need` positions per row, copying the
    /// valid prefixes. Doubles the current capacity so repeated one-token
    /// appends stay amortized O(1).
    fn ensure_capacity(&mut self, need: usize) {
        let cap = self.capacity();
        if need <= cap {
            return;
        }
        let new_cap = need.max(cap * 2);
        let (b, d) = (self.batch(), self.width());
        let mut k = Tensor::zeros(vec![b, new_cap, d]);
        let mut v = Tensor::zeros(vec![b, new_cap, d]);
        for (r, &len) in self.lens.iter().enumerate() {
            let src = r * cap * d;
            let dst = r * new_cap * d;
            k.data_mut()[dst..dst + len * d].copy_from_slice(&self.k.data()[src..src + len * d]);
            v.data_mut()[dst..dst + len * d].copy_from_slice(&self.v.data()[src..src + len * d]);
        }
        self.k = k;
        self.v = v;
    }

    /// Writes `l` positions into row `r` starting at offset `at`.
    /// `k_src`/`v_src` are contiguous `[l * D]` slices.
    fn write_row(&mut self, r: usize, at: usize, k_src: &[f32], v_src: &[f32]) {
        let (cap, d) = (self.capacity(), self.width());
        let off = (r * cap + at) * d;
        self.k.data_mut()[off..off + k_src.len()].copy_from_slice(k_src);
        self.v.data_mut()[off..off + v_src.len()].copy_from_slice(v_src);
    }
}

/// Per-layer key/value slabs for a batch of sequences.
///
/// # Examples
///
/// ```
/// use esti_model::KvCache;
/// use esti_tensor::Tensor;
///
/// let mut cache = KvCache::new(1);
/// cache.append(0, &Tensor::zeros(vec![2, 3, 8]), &Tensor::zeros(vec![2, 3, 8]));
/// assert_eq!(cache.len(), 3);
/// cache.append(0, &Tensor::zeros(vec![2, 1, 8]), &Tensor::zeros(vec![2, 1, 8]));
/// assert_eq!(cache.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<Option<Entry>>,
    /// Minimum per-row capacity for new or growing slabs, set by
    /// [`KvCache::reserve`] so a known decode horizon allocates once.
    reserve_hint: usize,
}

impl KvCache {
    /// Creates an empty cache for a model with `n_layers` layers.
    #[must_use]
    pub fn new(n_layers: usize) -> Self {
        KvCache { layers: vec![None; n_layers], reserve_hint: 0 }
    }

    /// Pre-sizes the cache: every layer's slab (current and future) will
    /// hold at least `positions` per row before any further reallocation.
    pub fn reserve(&mut self, positions: usize) {
        self.reserve_hint = self.reserve_hint.max(positions);
        for entry in self.layers.iter_mut().flatten() {
            entry.ensure_capacity(positions);
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of cached token positions (0 if nothing appended yet) — for
    /// ragged batches, the longest row. All layers hold the same lengths
    /// between forward passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len_of_first()
    }

    fn len_of_first(&self) -> usize {
        self.layers
            .first()
            .and_then(|l| l.as_ref())
            .map_or(0, |e| e.lens.iter().copied().max().unwrap_or(0))
    }

    /// Whether the cache holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached positions for one specific layer (longest row). During a
    /// forward pass, layers before the current one have already appended
    /// the new chunk, so per-layer lengths are what positional encodings
    /// must use.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn len_of(&self, layer: usize) -> usize {
        self.layers[layer]
            .as_ref()
            .map_or(0, |e| e.lens.iter().copied().max().unwrap_or(0))
    }

    /// Valid positions per batch row for `layer` (empty if nothing cached).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn row_lens(&self, layer: usize) -> &[usize] {
        self.layers[layer].as_ref().map_or(&[], |e| &e.lens)
    }

    /// Appends new key/value tensors (`[B, L_new, Hkv·dh]`) for `layer`,
    /// writing in place at each row's current length.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or batch/feature dims disagree
    /// with existing contents.
    pub fn append(&mut self, layer: usize, k: &Tensor, v: &Tensor) {
        assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
        assert_eq!(k.rank(), 3, "KV tensors must be [B, L, Hkv*dh]");
        let (b, l, d) = (k.dim(0), k.dim(1), k.dim(2));
        let hint = self.reserve_hint;
        let entry = self.layers[layer].get_or_insert_with(|| Entry {
            k: Tensor::zeros(vec![b, l.max(hint), d]),
            v: Tensor::zeros(vec![b, l.max(hint), d]),
            lens: vec![0; b],
        });
        assert_eq!(entry.batch(), b, "batch dim disagrees with cached contents");
        assert_eq!(entry.width(), d, "feature dim disagrees with cached contents");
        let need = entry.lens.iter().copied().max().unwrap_or(0) + l;
        entry.ensure_capacity(need.max(hint));
        for r in 0..b {
            let at = entry.lens[r];
            let src = r * l * d;
            // Split borrows: copy out of the (immutable) inputs into the slab.
            entry.write_row(r, at, &k.data()[src..src + l * d], &v.data()[src..src + l * d]);
            entry.lens[r] = at + l;
        }
    }

    /// Overwrites one batch row of `layer` with a single sequence
    /// (`[l, Hkv·dh]`), creating the layer's slab for `batch` rows if it
    /// does not exist yet — the insertion half of slot management.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `row >= batch`.
    pub fn write_slot(&mut self, layer: usize, row: usize, batch: usize, k: &Tensor, v: &Tensor) {
        assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
        assert_eq!(k.rank(), 2, "slot KV tensors must be [l, Hkv*dh]");
        assert!(row < batch, "row {row} out of range for batch {batch}");
        let (l, d) = (k.dim(0), k.dim(1));
        let hint = self.reserve_hint;
        let entry = self.layers[layer].get_or_insert_with(|| Entry {
            k: Tensor::zeros(vec![batch, l.max(hint), d]),
            v: Tensor::zeros(vec![batch, l.max(hint), d]),
            lens: vec![0; batch],
        });
        assert_eq!(entry.batch(), batch, "batch dim disagrees with cached contents");
        assert_eq!(entry.width(), d, "feature dim disagrees with cached contents");
        entry.ensure_capacity(l.max(hint));
        entry.write_row(row, 0, k.data(), v.data());
        entry.lens[row] = l;
    }

    /// Reads one batch row of `layer` back as `([l, D], [l, D])` tensors —
    /// the extraction half of slot management.
    ///
    /// # Panics
    ///
    /// Panics if `layer` has no contents or `row` is out of range.
    #[must_use]
    pub fn read_slot(&self, layer: usize, row: usize) -> (Tensor, Tensor) {
        // Vetted: the documented usage-contract panic (read before any
        // append) — an assert with a message, not a swallowed runtime fault.
        #[allow(clippy::expect_used)]
        let entry = self.layers[layer].as_ref().expect("layer has no cached contents");
        let (cap, d) = (entry.capacity(), entry.width());
        let len = entry.lens[row];
        let off = row * cap * d;
        let k = Tensor::from_vec(vec![len, d], entry.k.data()[off..off + len * d].to_vec());
        let v = Tensor::from_vec(vec![len, d], entry.v.data()[off..off + len * d].to_vec());
        (k, v)
    }

    /// Marks one batch row empty in every layer (eviction). The slab keeps
    /// its capacity; the row's contents become scratch.
    pub fn clear_slot(&mut self, row: usize) {
        for entry in self.layers.iter_mut().flatten() {
            entry.lens[row] = 0;
        }
    }

    /// The raw cached `(K, V)` slabs for `layer` (`[B, capacity, Hkv·dh]`),
    /// if any rows exist. Positions beyond [`KvCache::row_lens`] are
    /// scratch; masked attention must consume only the valid prefixes.
    #[must_use]
    pub fn get(&self, layer: usize) -> Option<(&Tensor, &Tensor)> {
        self.layers[layer].as_ref().map(|e| (&e.k, &e.v))
    }

    /// The cached `(K, V)` pair for `layer` trimmed to the valid length —
    /// the dense `[B, L, Hkv·dh]` view the old concat-based cache exposed.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths (use [`KvCache::read_slot`]
    /// for ragged contents).
    #[must_use]
    pub fn contents(&self, layer: usize) -> Option<(Tensor, Tensor)> {
        let entry = self.layers[layer].as_ref()?;
        let len = entry.lens[0];
        assert!(
            entry.lens.iter().all(|&l| l == len),
            "contents() requires uniform row lengths; got {:?}",
            entry.lens
        );
        let (b, cap, d) = (entry.batch(), entry.capacity(), entry.width());
        let mut k = Tensor::zeros(vec![b, len, d]);
        let mut v = Tensor::zeros(vec![b, len, d]);
        for r in 0..b {
            let src = r * cap * d;
            let dst = r * len * d;
            k.data_mut()[dst..dst + len * d].copy_from_slice(&entry.k.data()[src..src + len * d]);
            v.data_mut()[dst..dst + len * d].copy_from_slice(&entry.v.data()[src..src + len * d]);
        }
        Some((k, v))
    }

    /// Total *valid* elements held (keys + values across all layers), the
    /// quantity the memory model charges per decode step. Reserved-but-
    /// unwritten capacity is not counted.
    #[must_use]
    pub fn total_elements(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(|e| 2 * e.width() * e.lens.iter().sum::<usize>())
            .sum()
    }

    /// Replicates every cached sequence `k` times along the batch
    /// dimension (`[s0, s1] → [s0, s0, s1, s1]` for `k = 2`) — the
    /// mechanism behind the paper's low-latency recipe of combining a
    /// batch-1 prefill with a batch-64 decode by "generating multiple
    /// samples from the same input text" (Section 4.4).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn repeat_batch(&mut self, k: usize) {
        assert!(k > 0, "repeat factor must be positive");
        for entry in self.layers.iter_mut().flatten() {
            entry.k = entry.k.repeat_interleave(0, k);
            entry.v = entry.v.repeat_interleave(0, k);
            entry.lens = entry.lens.iter().flat_map(|&l| std::iter::repeat_n(l, k)).collect();
        }
    }

    /// Drops all cached tokens, keeping the layer count.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            *l = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache() {
        let c = KvCache::new(3);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 3);
        assert!(c.get(0).is_none());
        assert_eq!(c.total_elements(), 0);
    }

    #[test]
    fn append_grows_sequence_dim() {
        let mut c = KvCache::new(1);
        let k1 = Tensor::full(vec![2, 2, 4], 1.0);
        c.append(0, &k1, &k1);
        let k2 = Tensor::full(vec![2, 1, 4], 2.0);
        c.append(0, &k2, &k2);
        assert_eq!(c.len(), 3);
        let (k, _) = c.contents(0).unwrap();
        assert_eq!(k.shape(), &[2, 3, 4]);
        assert_eq!(k.at(&[0, 0, 0]), 1.0);
        assert_eq!(k.at(&[0, 2, 0]), 2.0);
    }

    #[test]
    fn append_is_in_place_after_reserve() {
        // The O(L^2)-copy bugfix, pinned: with capacity reserved up front,
        // appending must not reallocate the slab, and contents/len() must
        // behave exactly as the concat-based cache did.
        let mut c = KvCache::new(1);
        c.reserve(64);
        let step = |v: f32| Tensor::full(vec![1, 1, 2], v);
        c.append(0, &step(0.0), &step(0.0));
        let ptr = c.get(0).unwrap().0.data().as_ptr();
        for i in 1..64 {
            c.append(0, &step(i as f32), &step(-(i as f32)));
        }
        assert_eq!(c.len(), 64);
        assert_eq!(c.get(0).unwrap().0.data().as_ptr(), ptr, "append must write in place");
        let (k, v) = c.contents(0).unwrap();
        assert_eq!(k.shape(), &[1, 64, 2]);
        for i in 0..64 {
            assert_eq!(k.at(&[0, i, 0]), i as f32);
            assert_eq!(v.at(&[0, i, 1]), -(i as f32));
        }
    }

    #[test]
    fn unreserved_append_grows_amortized() {
        let mut c = KvCache::new(1);
        let step = Tensor::full(vec![1, 1, 2], 1.0);
        for _ in 0..100 {
            c.append(0, &step, &step);
        }
        assert_eq!(c.len(), 100);
        let cap = c.get(0).unwrap().0.dim(1);
        assert!((100..=256).contains(&cap), "capacity {cap} should double geometrically");
        assert_eq!(c.total_elements(), 2 * 100 * 2, "only valid elements are counted");
    }

    #[test]
    fn total_elements_counts_k_and_v() {
        let mut c = KvCache::new(2);
        let t = Tensor::zeros(vec![1, 4, 8]);
        c.append(0, &t, &t);
        c.append(1, &t, &t);
        assert_eq!(c.total_elements(), 4 * (4 * 8));
    }

    #[test]
    fn repeat_batch_replicates_sequences() {
        let mut c = KvCache::new(1);
        let k = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        c.append(0, &k, &k);
        c.repeat_batch(3);
        let (kk, _) = c.contents(0).unwrap();
        assert_eq!(kk.shape(), &[6, 1, 2]);
        assert_eq!(kk.at(&[0, 0, 0]), 1.0);
        assert_eq!(kk.at(&[2, 0, 0]), 1.0);
        assert_eq!(kk.at(&[3, 0, 0]), 3.0);
        assert_eq!(c.len(), 1); // sequence length unchanged
    }

    #[test]
    fn slots_insert_read_and_evict() {
        let mut c = KvCache::new(2);
        let ka = Tensor::from_vec(vec![3, 2], (0..6).map(|i| i as f32).collect());
        let va = ka.scale(10.0);
        for layer in 0..2 {
            c.write_slot(layer, 1, 4, &ka, &va);
        }
        assert_eq!(c.row_lens(0), &[0, 3, 0, 0]);
        let (k, v) = c.read_slot(0, 1);
        assert_eq!(k.data(), ka.data());
        assert_eq!(v.data(), va.data());
        assert_eq!(c.read_slot(1, 0).0.dim(0), 0, "untouched rows are empty");
        // Overwrite with a shorter sequence, then evict.
        let kb = Tensor::from_vec(vec![1, 2], vec![7.0, 8.0]);
        c.write_slot(0, 1, 4, &kb, &kb);
        assert_eq!(c.row_lens(0), &[0, 1, 0, 0]);
        assert_eq!(c.read_slot(0, 1).0.data(), &[7.0, 8.0]);
        c.clear_slot(1);
        assert_eq!(c.row_lens(0), &[0, 0, 0, 0]);
        assert_eq!(c.row_lens(1), &[0, 0, 0, 0]);
    }

    #[test]
    fn ragged_rows_append_independently() {
        let mut c = KvCache::new(1);
        let ka = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        c.write_slot(0, 0, 2, &ka, &ka);
        let step = Tensor::full(vec![2, 1, 2], 9.0);
        c.append(0, &step, &step);
        assert_eq!(c.row_lens(0), &[3, 1]);
        assert_eq!(c.read_slot(0, 0).0.data(), &[1.0, 2.0, 3.0, 4.0, 9.0, 9.0]);
        assert_eq!(c.read_slot(0, 1).0.data(), &[9.0, 9.0]);
    }

    #[test]
    fn clear_resets() {
        let mut c = KvCache::new(1);
        let t = Tensor::zeros(vec![1, 1, 2]);
        c.append(0, &t, &t);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 1);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn mismatched_kv_rejected() {
        let mut c = KvCache::new(1);
        c.append(0, &Tensor::zeros(vec![1, 1, 2]), &Tensor::zeros(vec![1, 1, 3]));
    }
}
