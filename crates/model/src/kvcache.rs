//! The attention key/value cache.
//!
//! The KV cache is the second-largest tensor group in generative inference
//! (Section 2, "Memory costs"): keys and values of every layer must persist
//! for the whole decode. This container stores them as
//! `[B, L, Hkv · d_head]` per layer and grows along `L` as prefill chunks
//! and decode steps append.

use esti_tensor::Tensor;

/// Per-layer key/value tensors for a batch of sequences.
///
/// # Examples
///
/// ```
/// use esti_model::KvCache;
/// use esti_tensor::Tensor;
///
/// let mut cache = KvCache::new(1);
/// cache.append(0, &Tensor::zeros(vec![2, 3, 8]), &Tensor::zeros(vec![2, 3, 8]));
/// assert_eq!(cache.len(), 3);
/// cache.append(0, &Tensor::zeros(vec![2, 1, 8]), &Tensor::zeros(vec![2, 1, 8]));
/// assert_eq!(cache.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KvCache {
    /// `layers[i] = Some((k, v))` with `k`, `v` of shape `[B, L, Hkv·dh]`.
    layers: Vec<Option<(Tensor, Tensor)>>,
}

impl KvCache {
    /// Creates an empty cache for a model with `n_layers` layers.
    #[must_use]
    pub fn new(n_layers: usize) -> Self {
        KvCache { layers: vec![None; n_layers] }
    }

    /// Number of layers.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of cached token positions (0 if nothing appended yet).
    /// All layers always hold the same length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers
            .first()
            .and_then(|l| l.as_ref())
            .map_or(0, |(k, _)| k.dim(1))
    }

    /// Whether the cache holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached positions for one specific layer. During a forward pass,
    /// layers before the current one have already appended the new chunk,
    /// so per-layer lengths are what positional encodings must use.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn len_of(&self, layer: usize) -> usize {
        self.layers[layer].as_ref().map_or(0, |(k, _)| k.dim(1))
    }

    /// Appends new key/value tensors (`[B, L_new, Hkv·dh]`) for `layer`
    /// along the sequence dimension.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or batch/feature dims disagree
    /// with existing contents.
    pub fn append(&mut self, layer: usize, k: &Tensor, v: &Tensor) {
        assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
        assert_eq!(k.rank(), 3, "KV tensors must be [B, L, Hkv*dh]");
        let entry = &mut self.layers[layer];
        *entry = Some(match entry.take() {
            None => (k.clone(), v.clone()),
            Some((old_k, old_v)) => (
                Tensor::concat(&[&old_k, k], 1),
                Tensor::concat(&[&old_v, v], 1),
            ),
        });
    }

    /// The cached `(K, V)` pair for `layer`, if any tokens are cached.
    #[must_use]
    pub fn get(&self, layer: usize) -> Option<(&Tensor, &Tensor)> {
        self.layers[layer].as_ref().map(|(k, v)| (k, v))
    }

    /// Total elements held (keys + values across all layers), the quantity
    /// the memory model charges per decode step.
    #[must_use]
    pub fn total_elements(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(|(k, v)| k.numel() + v.numel())
            .sum()
    }

    /// Replicates every cached sequence `k` times along the batch
    /// dimension (`[s0, s1] → [s0, s0, s1, s1]` for `k = 2`) — the
    /// mechanism behind the paper's low-latency recipe of combining a
    /// batch-1 prefill with a batch-64 decode by "generating multiple
    /// samples from the same input text" (Section 4.4).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn repeat_batch(&mut self, k: usize) {
        assert!(k > 0, "repeat factor must be positive");
        for entry in &mut self.layers {
            if let Some((key, value)) = entry.take() {
                *entry = Some((key.repeat_interleave(0, k), value.repeat_interleave(0, k)));
            }
        }
    }

    /// Drops all cached tokens, keeping the layer count.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            *l = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache() {
        let c = KvCache::new(3);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 3);
        assert!(c.get(0).is_none());
        assert_eq!(c.total_elements(), 0);
    }

    #[test]
    fn append_grows_sequence_dim() {
        let mut c = KvCache::new(1);
        let k1 = Tensor::full(vec![2, 2, 4], 1.0);
        c.append(0, &k1, &k1);
        let k2 = Tensor::full(vec![2, 1, 4], 2.0);
        c.append(0, &k2, &k2);
        assert_eq!(c.len(), 3);
        let (k, _) = c.get(0).unwrap();
        assert_eq!(k.shape(), &[2, 3, 4]);
        assert_eq!(k.at(&[0, 0, 0]), 1.0);
        assert_eq!(k.at(&[0, 2, 0]), 2.0);
    }

    #[test]
    fn total_elements_counts_k_and_v() {
        let mut c = KvCache::new(2);
        let t = Tensor::zeros(vec![1, 4, 8]);
        c.append(0, &t, &t);
        c.append(1, &t, &t);
        assert_eq!(c.total_elements(), 4 * (4 * 8));
    }

    #[test]
    fn repeat_batch_replicates_sequences() {
        let mut c = KvCache::new(1);
        let k = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        c.append(0, &k, &k);
        c.repeat_batch(3);
        let (kk, _) = c.get(0).unwrap();
        assert_eq!(kk.shape(), &[6, 1, 2]);
        assert_eq!(kk.at(&[0, 0, 0]), 1.0);
        assert_eq!(kk.at(&[2, 0, 0]), 1.0);
        assert_eq!(kk.at(&[3, 0, 0]), 3.0);
        assert_eq!(c.len(), 1); // sequence length unchanged
    }

    #[test]
    fn clear_resets() {
        let mut c = KvCache::new(1);
        let t = Tensor::zeros(vec![1, 1, 2]);
        c.append(0, &t, &t);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 1);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn mismatched_kv_rejected() {
        let mut c = KvCache::new(1);
        c.append(0, &Tensor::zeros(vec![1, 1, 2]), &Tensor::zeros(vec![1, 1, 3]));
    }
}
