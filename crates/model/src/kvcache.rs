//! The attention key/value cache.
//!
//! The KV cache is the second-largest tensor group in generative inference
//! (Section 2, "Memory costs"): keys and values of every layer must persist
//! for the whole decode. Two storage backends live behind one API:
//!
//! * **Slab** ([`KvCache::new`]): preallocated `[B, capacity, Hkv·d_head]`
//!   slabs per layer with a valid length per batch row, so decode steps
//!   write in place (amortized O(1) per token instead of rebuilding the
//!   whole cache via concat). This is the PR 3 design and remains the
//!   reference oracle.
//! * **Paged** ([`KvCache::paged`]): a global pool of fixed-size pages
//!   (`page_size` positions each, holding every layer's K and V for those
//!   positions) addressed through a per-row block table. Pages are
//!   refcounted: [`KvCache::insert_row_shared`] maps prompt-prefix pages
//!   already resident (keyed by the exact token prefix they cache) instead
//!   of rewriting them, and any in-place write to a page referenced by more
//!   than one row first copies it out (copy-on-write). Eviction is
//!   page-granular: a shared page returns to the free list only when its
//!   last reference drops.
//!
//! Determinism makes prefix sharing exact rather than approximate: causal
//! attention means K/V at position `p` depend only on tokens `0..=p`, and
//! every kernel in this workspace is bit-deterministic, so a page keyed by
//! a token prefix holds *bitwise* the same values any other request with
//! that prefix would have written. Skipping the write on a registry hit is
//! therefore invisible in the token streams (proven by the paged
//! conformance suite).

use std::collections::HashMap;

use esti_tensor::Tensor;

/// One layer's key/value slab: `k`/`v` are `[B, capacity, D]` buffers of
/// which row `r` holds `lens[r]` valid positions (the rest is scratch).
#[derive(Debug, Clone)]
struct Entry {
    k: Tensor,
    v: Tensor,
    lens: Vec<usize>,
}

impl Entry {
    fn capacity(&self) -> usize {
        self.k.dim(1)
    }

    fn width(&self) -> usize {
        self.k.dim(2)
    }

    fn batch(&self) -> usize {
        self.k.dim(0)
    }

    /// Grows both slabs to at least `need` positions per row, copying the
    /// valid prefixes. Doubles the current capacity so repeated one-token
    /// appends stay amortized O(1).
    fn ensure_capacity(&mut self, need: usize) {
        let cap = self.capacity();
        if need <= cap {
            return;
        }
        let new_cap = need.max(cap * 2);
        let (b, d) = (self.batch(), self.width());
        let mut k = Tensor::zeros(vec![b, new_cap, d]);
        let mut v = Tensor::zeros(vec![b, new_cap, d]);
        for (r, &len) in self.lens.iter().enumerate() {
            let src = r * cap * d;
            let dst = r * new_cap * d;
            k.data_mut()[dst..dst + len * d].copy_from_slice(&self.k.data()[src..src + len * d]);
            v.data_mut()[dst..dst + len * d].copy_from_slice(&self.v.data()[src..src + len * d]);
        }
        self.k = k;
        self.v = v;
    }

    /// Writes `l` positions into row `r` starting at offset `at`.
    /// `k_src`/`v_src` are contiguous `[l * D]` slices.
    fn write_row(&mut self, r: usize, at: usize, k_src: &[f32], v_src: &[f32]) {
        let (cap, d) = (self.capacity(), self.width());
        let off = (r * cap + at) * d;
        self.k.data_mut()[off..off + k_src.len()].copy_from_slice(k_src);
        self.v.data_mut()[off..off + v_src.len()].copy_from_slice(v_src);
    }
}

/// One pool page: `page_size` positions of K and V for *every* layer
/// (`k[layer]`/`v[layer]` are `page_size · width` scratch-initialized
/// buffers). Keeping all layers in one page means block tables, refcounts,
/// and prefix keys exist once per page rather than once per layer.
#[derive(Debug, Clone)]
struct Page {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Page {
    fn new(n_layers: usize, elems: usize) -> Self {
        Page { k: vec![vec![0.0; elems]; n_layers], v: vec![vec![0.0; elems]; n_layers] }
    }
}

/// Pool occupancy counters for the paged backend (see
/// [`KvCache::page_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageStats {
    /// Positions per page.
    pub page_size: usize,
    /// Pages ever allocated (live + free-listed).
    pub pages_allocated: usize,
    /// Pages currently referenced by at least one row.
    pub pages_live: usize,
    /// Pages on the free list, reusable without allocation.
    pub pages_free: usize,
    /// Live pages referenced by more than one row (shared prefixes).
    pub pages_shared: usize,
}

/// The paged backend: pool + refcounts + prefix registry + block tables.
#[derive(Debug, Clone)]
struct Paged {
    n_layers: usize,
    page_size: usize,
    /// Feature width `Hkv·d_head`, fixed by the first write.
    width: Option<usize>,
    /// Batch rows, fixed by the first write.
    batch: Option<usize>,
    pages: Vec<Page>,
    refs: Vec<usize>,
    /// The token prefix a page caches, when it was admitted via
    /// [`KvCache::insert_row_shared`] and is still bit-exact for that
    /// prefix (cleared on any in-place write).
    keys: Vec<Option<Vec<usize>>>,
    free: Vec<usize>,
    /// Exact token prefix → page id. A key of length `e` always maps the
    /// page covering positions `(⌈e/S⌉−1)·S .. e`, so keys double as page
    /// indices.
    registry: HashMap<Vec<usize>, usize>,
    /// Per-row block table: `tables[r][i]` is the page holding positions
    /// `i·S .. (i+1)·S` of row `r`.
    tables: Vec<Vec<usize>>,
    /// Valid positions per layer per row (`lens[layer][row]`); layers
    /// disagree transiently inside one forward pass, exactly like the
    /// slab's per-layer `lens`.
    lens: Vec<Vec<usize>>,
}

impl Paged {
    fn new(n_layers: usize, page_size: usize) -> Self {
        assert!(page_size > 0, "page_size must be positive");
        Paged {
            n_layers,
            page_size,
            width: None,
            batch: None,
            pages: Vec::new(),
            refs: Vec::new(),
            keys: Vec::new(),
            free: Vec::new(),
            registry: HashMap::new(),
            tables: Vec::new(),
            lens: vec![Vec::new(); n_layers],
        }
    }

    fn ensure_shape(&mut self, batch: usize, width: usize) {
        match self.batch {
            None => {
                self.batch = Some(batch);
                self.tables = vec![Vec::new(); batch];
                for l in &mut self.lens {
                    *l = vec![0; batch];
                }
            }
            Some(b) => assert_eq!(b, batch, "batch dim disagrees with cached contents"),
        }
        match self.width {
            None => self.width = Some(width),
            Some(w) => assert_eq!(w, width, "feature dim disagrees with cached contents"),
        }
    }

    /// Pops a free page or grows the pool; the page starts private
    /// (refcount 1, no key).
    fn alloc_page(&mut self) -> usize {
        // Vetted: width is set by every caller via ensure_shape before
        // any page can be allocated.
        #[allow(clippy::expect_used)]
        let elems = self.page_size * self.width.expect("width fixed before allocation");
        if let Some(id) = self.free.pop() {
            self.refs[id] = 1;
            self.keys[id] = None;
            id
        } else {
            self.pages.push(Page::new(self.n_layers, elems));
            self.refs.push(1);
            self.keys.push(None);
            self.pages.len() - 1
        }
    }

    /// Drops one reference; the last reference deregisters the page's
    /// prefix key and returns it to the free list.
    fn unref_page(&mut self, id: usize) {
        assert!(self.refs[id] > 0, "page {id} double-freed");
        self.refs[id] -= 1;
        if self.refs[id] == 0 {
            if let Some(key) = self.keys[id].take() {
                self.registry.remove(&key);
            }
            self.free.push(id);
        }
    }

    /// Grows row `r`'s block table until it covers `need` positions.
    fn ensure_pages(&mut self, r: usize, need: usize) {
        while self.tables[r].len() * self.page_size < need {
            let id = self.alloc_page();
            self.tables[r].push(id);
        }
    }

    /// Makes page index `pi` of row `r` safely writable and returns its
    /// page id: a page shared with other rows is copied out first
    /// (copy-on-write; the original keeps its key and remaining refs), and
    /// a private page's prefix key is deregistered because the write is
    /// about to invalidate it.
    fn prepare_write(&mut self, r: usize, pi: usize) -> usize {
        let pid = self.tables[r][pi];
        if self.refs[pid] > 1 {
            let nid = self.alloc_page();
            self.pages[nid] = self.pages[pid].clone();
            self.refs[pid] -= 1;
            self.tables[r][pi] = nid;
            nid
        } else {
            if let Some(key) = self.keys[pid].take() {
                self.registry.remove(&key);
            }
            pid
        }
    }

    /// Writes `len·d` contiguous values per tensor into row `r` starting at
    /// position `at`, allocating / copying-out pages as needed.
    fn write_span(&mut self, layer: usize, r: usize, at: usize, k_src: &[f32], v_src: &[f32]) {
        // Vetted: callers fix the width before any span write.
        #[allow(clippy::expect_used)]
        let d = self.width.expect("width fixed before write");
        let s = self.page_size;
        let len = k_src.len() / d;
        self.ensure_pages(r, at + len);
        let mut p = 0; // positions written so far
        while p < len {
            let pos = at + p;
            let (pi, off) = (pos / s, pos % s);
            let run = (s - off).min(len - p);
            let pid = self.prepare_write(r, pi);
            let dst = off * d..(off + run) * d;
            let src = p * d..(p + run) * d;
            self.pages[pid].k[layer][dst.clone()].copy_from_slice(&k_src[src.clone()]);
            self.pages[pid].v[layer][dst].copy_from_slice(&v_src[src]);
            p += run;
        }
    }

    fn max_len(&self, layer: usize) -> usize {
        self.lens[layer].iter().copied().max().unwrap_or(0)
    }
}

/// Per-layer key/value storage for a batch of sequences (slab or paged
/// backend; see the module docs).
///
/// # Examples
///
/// ```
/// use esti_model::KvCache;
/// use esti_tensor::Tensor;
///
/// let mut cache = KvCache::new(1);
/// cache.append(0, &Tensor::zeros(vec![2, 3, 8]), &Tensor::zeros(vec![2, 3, 8]));
/// assert_eq!(cache.len(), 3);
/// cache.append(0, &Tensor::zeros(vec![2, 1, 8]), &Tensor::zeros(vec![2, 1, 8]));
/// assert_eq!(cache.len(), 4);
/// ```
#[derive(Debug, Clone)]
enum Backend {
    Slab(Vec<Option<Entry>>),
    // Boxed: the paged bookkeeping is much larger than a slab's Vec header
    // and would otherwise bloat every slab-backed cache.
    Paged(Box<Paged>),
}

/// See the module documentation; constructed via [`KvCache::new`] (slab)
/// or [`KvCache::paged`].
#[derive(Debug, Clone)]
pub struct KvCache {
    backend: Backend,
    n_layers: usize,
    /// Minimum per-row capacity for new or growing slabs, set by
    /// [`KvCache::reserve`] so a known decode horizon allocates once.
    /// Advisory for the paged backend (pages allocate on demand).
    reserve_hint: usize,
}

impl Default for KvCache {
    fn default() -> Self {
        KvCache::new(0)
    }
}

impl KvCache {
    /// Creates an empty slab-backed cache for a model with `n_layers`
    /// layers.
    #[must_use]
    pub fn new(n_layers: usize) -> Self {
        KvCache { backend: Backend::Slab(vec![None; n_layers]), n_layers, reserve_hint: 0 }
    }

    /// Creates an empty page-pool-backed cache (`page_size` positions per
    /// page) for a model with `n_layers` layers.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn paged(n_layers: usize, page_size: usize) -> Self {
        KvCache {
            backend: Backend::Paged(Box::new(Paged::new(n_layers, page_size))),
            n_layers,
            reserve_hint: 0,
        }
    }

    /// Positions per page, or `None` for the slab backend.
    #[must_use]
    pub fn page_size(&self) -> Option<usize> {
        match &self.backend {
            Backend::Slab(_) => None,
            Backend::Paged(p) => Some(p.page_size),
        }
    }

    /// Pool occupancy counters, or `None` for the slab backend.
    #[must_use]
    pub fn page_stats(&self) -> Option<PageStats> {
        match &self.backend {
            Backend::Slab(_) => None,
            Backend::Paged(p) => Some(PageStats {
                page_size: p.page_size,
                pages_allocated: p.pages.len(),
                pages_live: p.pages.len() - p.free.len(),
                pages_free: p.free.len(),
                pages_shared: p.refs.iter().filter(|&&r| r > 1).count(),
            }),
        }
    }

    /// Pre-sizes the cache: every slab layer (current and future) will hold
    /// at least `positions` per row before any further reallocation. The
    /// paged backend records the hint but allocates pages on demand.
    pub fn reserve(&mut self, positions: usize) {
        self.reserve_hint = self.reserve_hint.max(positions);
        if let Backend::Slab(layers) = &mut self.backend {
            for entry in layers.iter_mut().flatten() {
                entry.ensure_capacity(positions);
            }
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Number of cached token positions (0 if nothing appended yet) — for
    /// ragged batches, the longest row. All layers hold the same lengths
    /// between forward passes.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.n_layers == 0 {
            return 0;
        }
        self.len_of(0)
    }

    /// Whether the cache holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached positions for one specific layer (longest row). During a
    /// forward pass, layers before the current one have already appended
    /// the new chunk, so per-layer lengths are what positional encodings
    /// must use.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn len_of(&self, layer: usize) -> usize {
        match &self.backend {
            Backend::Slab(layers) => {
                layers[layer].as_ref().map_or(0, |e| e.lens.iter().copied().max().unwrap_or(0))
            }
            Backend::Paged(p) => p.max_len(layer),
        }
    }

    /// Valid positions per batch row for `layer` (empty if nothing cached).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn row_lens(&self, layer: usize) -> &[usize] {
        match &self.backend {
            Backend::Slab(layers) => layers[layer].as_ref().map_or(&[], |e| &e.lens),
            Backend::Paged(p) => &p.lens[layer],
        }
    }

    /// Appends new key/value tensors (`[B, L_new, Hkv·dh]`) for `layer`,
    /// writing in place at each row's current length. On the paged backend
    /// a write into a shared page copies it out first (copy-on-write), so
    /// appending never perturbs other rows mapping the same prefix.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or batch/feature dims disagree
    /// with existing contents.
    pub fn append(&mut self, layer: usize, k: &Tensor, v: &Tensor) {
        assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
        assert_eq!(k.rank(), 3, "KV tensors must be [B, L, Hkv*dh]");
        let (b, l, d) = (k.dim(0), k.dim(1), k.dim(2));
        let hint = self.reserve_hint;
        match &mut self.backend {
            Backend::Slab(layers) => {
                let entry = layers[layer].get_or_insert_with(|| Entry {
                    k: Tensor::zeros(vec![b, l.max(hint), d]),
                    v: Tensor::zeros(vec![b, l.max(hint), d]),
                    lens: vec![0; b],
                });
                assert_eq!(entry.batch(), b, "batch dim disagrees with cached contents");
                assert_eq!(entry.width(), d, "feature dim disagrees with cached contents");
                let need = entry.lens.iter().copied().max().unwrap_or(0) + l;
                entry.ensure_capacity(need.max(hint));
                for r in 0..b {
                    let at = entry.lens[r];
                    let src = r * l * d;
                    entry.write_row(r, at, &k.data()[src..src + l * d], &v.data()[src..src + l * d]);
                    entry.lens[r] = at + l;
                }
            }
            Backend::Paged(p) => {
                p.ensure_shape(b, d);
                for r in 0..b {
                    let at = p.lens[layer][r];
                    let src = r * l * d;
                    p.write_span(layer, r, at, &k.data()[src..src + l * d], &v.data()[src..src + l * d]);
                    p.lens[layer][r] = at + l;
                }
            }
        }
    }

    /// Overwrites one batch row of `layer` with a single sequence
    /// (`[l, Hkv·dh]`), creating storage for `batch` rows if none exists
    /// yet — the insertion half of slot management.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `row >= batch`.
    pub fn write_slot(&mut self, layer: usize, row: usize, batch: usize, k: &Tensor, v: &Tensor) {
        assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
        assert_eq!(k.rank(), 2, "slot KV tensors must be [l, Hkv*dh]");
        assert!(row < batch, "row {row} out of range for batch {batch}");
        let (l, d) = (k.dim(0), k.dim(1));
        let hint = self.reserve_hint;
        match &mut self.backend {
            Backend::Slab(layers) => {
                let entry = layers[layer].get_or_insert_with(|| Entry {
                    k: Tensor::zeros(vec![batch, l.max(hint), d]),
                    v: Tensor::zeros(vec![batch, l.max(hint), d]),
                    lens: vec![0; batch],
                });
                assert_eq!(entry.batch(), batch, "batch dim disagrees with cached contents");
                assert_eq!(entry.width(), d, "feature dim disagrees with cached contents");
                entry.ensure_capacity(l.max(hint));
                entry.write_row(row, 0, k.data(), v.data());
                entry.lens[row] = l;
            }
            Backend::Paged(p) => {
                p.ensure_shape(batch, d);
                p.write_span(layer, row, 0, k.data(), v.data());
                p.lens[layer][row] = l;
            }
        }
    }

    /// Inserts a full request (every layer's `[l, Hkv·dh]` K/V, plus the
    /// `l` prompt tokens that produced it) into one row, sharing
    /// prompt-prefix pages with already-resident requests.
    ///
    /// On the paged backend each page-aligned token prefix is looked up in
    /// the pool's registry: a hit maps the existing page (refcount bump, no
    /// write — bit-exact because K/V at a position are a deterministic
    /// function of the token prefix and the position), a miss allocates,
    /// writes, and registers the page for future requests. On the slab
    /// backend this degrades to a per-layer [`KvCache::write_slot`]
    /// (no sharing).
    ///
    /// # Panics
    ///
    /// Panics if `layers` does not cover every layer, shapes disagree, or
    /// `tokens.len()` differs from the K/V length.
    pub fn insert_row_shared(
        &mut self,
        row: usize,
        batch: usize,
        layers: &[(Tensor, Tensor)],
        tokens: &[usize],
    ) {
        assert_eq!(layers.len(), self.n_layers, "one (K, V) pair per layer");
        assert!(row < batch, "row {row} out of range for batch {batch}");
        for (k, v) in layers {
            assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
            assert_eq!(k.rank(), 2, "slot KV tensors must be [l, Hkv*dh]");
            assert_eq!(k.dim(0), tokens.len(), "one token per cached position");
        }
        match &mut self.backend {
            Backend::Slab(_) => {
                for (li, (k, v)) in layers.iter().enumerate() {
                    self.write_slot(li, row, batch, k, v);
                }
            }
            Backend::Paged(p) => {
                let l = tokens.len();
                let d = layers.first().map_or(0, |(k, _)| k.dim(1));
                p.ensure_shape(batch, d);
                // Release whatever the row held before (slots are inserted
                // into evicted rows; this keeps reuse safe regardless).
                let old: Vec<usize> = p.tables[row].drain(..).collect();
                for pid in old {
                    p.unref_page(pid);
                }
                let s = p.page_size;
                for pi in 0..l.div_ceil(s) {
                    let end = ((pi + 1) * s).min(l);
                    let key = tokens[..end].to_vec();
                    if let Some(&pid) = p.registry.get(&key) {
                        p.refs[pid] += 1;
                        p.tables[row].push(pid);
                    } else {
                        let pid = p.alloc_page();
                        let (lo, span) = (pi * s, end - pi * s);
                        for (li, (k, v)) in layers.iter().enumerate() {
                            let src = lo * d..(lo + span) * d;
                            p.pages[pid].k[li][..span * d].copy_from_slice(&k.data()[src.clone()]);
                            p.pages[pid].v[li][..span * d].copy_from_slice(&v.data()[src]);
                        }
                        p.keys[pid] = Some(key.clone());
                        p.registry.insert(key, pid);
                        p.tables[row].push(pid);
                    }
                }
                for lens in &mut p.lens {
                    lens[row] = l;
                }
            }
        }
    }

    /// Reads one batch row of `layer` back as `([l, D], [l, D])` tensors —
    /// the extraction half of slot management. Both backends materialize
    /// exactly the row's valid positions in order, so the bytes are
    /// identical regardless of backing layout.
    ///
    /// # Panics
    ///
    /// Panics if `layer` has no contents or `row` is out of range.
    #[must_use]
    pub fn read_slot(&self, layer: usize, row: usize) -> (Tensor, Tensor) {
        match &self.backend {
            Backend::Slab(layers) => {
                // Vetted: the documented usage-contract panic (read before any
                // append) — an assert with a message, not a swallowed runtime fault.
                #[allow(clippy::expect_used)]
                let entry = layers[layer].as_ref().expect("layer has no cached contents");
                let (cap, d) = (entry.capacity(), entry.width());
                let len = entry.lens[row];
                let off = row * cap * d;
                let k = Tensor::from_vec(vec![len, d], entry.k.data()[off..off + len * d].to_vec());
                let v = Tensor::from_vec(vec![len, d], entry.v.data()[off..off + len * d].to_vec());
                (k, v)
            }
            Backend::Paged(p) => {
                // Vetted: same usage contract as the slab arm.
                #[allow(clippy::expect_used)]
                let d = p.width.expect("layer has no cached contents");
                let len = p.lens[layer][row];
                let s = p.page_size;
                let mut kd = Vec::with_capacity(len * d);
                let mut vd = Vec::with_capacity(len * d);
                let mut pos = 0;
                while pos < len {
                    let (pi, off) = (pos / s, pos % s);
                    let run = (s - off).min(len - pos);
                    let pid = p.tables[row][pi];
                    kd.extend_from_slice(&p.pages[pid].k[layer][off * d..(off + run) * d]);
                    vd.extend_from_slice(&p.pages[pid].v[layer][off * d..(off + run) * d]);
                    pos += run;
                }
                (Tensor::from_vec(vec![len, d], kd), Tensor::from_vec(vec![len, d], vd))
            }
        }
    }

    /// Marks one batch row empty in every layer (eviction). The slab keeps
    /// its capacity; the paged backend drops one reference per mapped page,
    /// returning pages whose last reference this was to the free pool.
    pub fn clear_slot(&mut self, row: usize) {
        match &mut self.backend {
            Backend::Slab(layers) => {
                for entry in layers.iter_mut().flatten() {
                    entry.lens[row] = 0;
                }
            }
            Backend::Paged(p) => {
                if p.batch.is_none() {
                    return;
                }
                let held: Vec<usize> = p.tables[row].drain(..).collect();
                for pid in held {
                    p.unref_page(pid);
                }
                for lens in &mut p.lens {
                    lens[row] = 0;
                }
            }
        }
    }

    /// The raw cached `(K, V)` slabs for `layer` (`[B, capacity, Hkv·dh]`),
    /// if any rows exist — slab backend only (the paged backend has no
    /// dense per-layer view; read rows via [`KvCache::read_slot`] or a
    /// trimmed copy via [`KvCache::contents`]).
    #[must_use]
    pub fn get(&self, layer: usize) -> Option<(&Tensor, &Tensor)> {
        match &self.backend {
            Backend::Slab(layers) => layers[layer].as_ref().map(|e| (&e.k, &e.v)),
            Backend::Paged(_) => None,
        }
    }

    /// The cached `(K, V)` pair for `layer` trimmed to the valid length —
    /// the dense `[B, L, Hkv·dh]` view the old concat-based cache exposed.
    /// Works on both backends (the paged backend gathers through the block
    /// tables).
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths (use [`KvCache::read_slot`]
    /// for ragged contents).
    #[must_use]
    pub fn contents(&self, layer: usize) -> Option<(Tensor, Tensor)> {
        let lens = self.row_lens(layer);
        if lens.is_empty() {
            return None;
        }
        let len = lens[0];
        assert!(
            lens.iter().all(|&l| l == len),
            "contents() requires uniform row lengths; got {lens:?}"
        );
        let b = lens.len();
        let mut ks = Vec::with_capacity(b);
        let mut vs = Vec::with_capacity(b);
        for r in 0..b {
            let (k, v) = self.read_slot(layer, r);
            ks.push(k.into_reshape(vec![1, len, k_width(&self.backend)]));
            vs.push(v.into_reshape(vec![1, len, k_width(&self.backend)]));
        }
        let kr: Vec<&Tensor> = ks.iter().collect();
        let vr: Vec<&Tensor> = vs.iter().collect();
        Some((Tensor::concat(&kr, 0), Tensor::concat(&vr, 0)))
    }

    /// Total *valid* elements held (keys + values across all layers), the
    /// quantity the memory model charges per decode step. Reserved-but-
    /// unwritten capacity is not counted, and a page shared by several rows
    /// is charged **once** (its widest referencing row), so occupancy
    /// reflects physical memory rather than the sum of logical sequence
    /// lengths.
    #[must_use]
    pub fn total_elements(&self) -> usize {
        match &self.backend {
            Backend::Slab(layers) => layers
                .iter()
                .flatten()
                .map(|e| 2 * e.width() * e.lens.iter().sum::<usize>())
                .sum(),
            Backend::Paged(p) => {
                let Some(d) = p.width else { return 0 };
                let s = p.page_size;
                // valid[page][layer] = widest valid span any referencing row
                // holds in that page.
                let mut valid = vec![0usize; p.pages.len() * p.n_layers];
                for (r, table) in p.tables.iter().enumerate() {
                    for (pi, &pid) in table.iter().enumerate() {
                        for (li, lens) in p.lens.iter().enumerate() {
                            let span = lens[r].saturating_sub(pi * s).min(s);
                            let cell = &mut valid[pid * p.n_layers + li];
                            *cell = (*cell).max(span);
                        }
                    }
                }
                2 * d * valid.iter().sum::<usize>()
            }
        }
    }

    /// Replicates every cached sequence `k` times along the batch
    /// dimension (`[s0, s1] → [s0, s0, s1, s1]` for `k = 2`) — the
    /// mechanism behind the paper's low-latency recipe of combining a
    /// batch-1 prefill with a batch-64 decode by "generating multiple
    /// samples from the same input text" (Section 4.4). The paged backend
    /// shares the originals' pages (copy-on-write on later divergence)
    /// instead of duplicating them.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn repeat_batch(&mut self, k: usize) {
        assert!(k > 0, "repeat factor must be positive");
        match &mut self.backend {
            Backend::Slab(layers) => {
                for entry in layers.iter_mut().flatten() {
                    entry.k = entry.k.repeat_interleave(0, k);
                    entry.v = entry.v.repeat_interleave(0, k);
                    entry.lens =
                        entry.lens.iter().flat_map(|&l| std::iter::repeat_n(l, k)).collect();
                }
            }
            Backend::Paged(p) => {
                if let Some(b) = p.batch {
                    let mut tables = Vec::with_capacity(b * k);
                    for table in &p.tables {
                        for copy in 0..k {
                            if copy > 0 {
                                for &pid in table {
                                    p.refs[pid] += 1;
                                }
                            }
                            tables.push(table.clone());
                        }
                    }
                    p.tables = tables;
                    for lens in &mut p.lens {
                        *lens = lens.iter().flat_map(|&l| std::iter::repeat_n(l, k)).collect();
                    }
                    p.batch = Some(b * k);
                }
            }
        }
    }

    /// Drops all cached tokens, keeping the layer count and backend. The
    /// paged backend releases its whole pool and registry.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Slab(layers) => {
                for l in layers {
                    *l = None;
                }
            }
            Backend::Paged(p) => {
                **p = Paged::new(p.n_layers, p.page_size);
            }
        }
    }
}

fn k_width(backend: &Backend) -> usize {
    match backend {
        Backend::Slab(layers) => {
            layers.iter().flatten().next().map_or(0, Entry::width)
        }
        Backend::Paged(p) => p.width.unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache() {
        let c = KvCache::new(3);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 3);
        assert!(c.get(0).is_none());
        assert_eq!(c.total_elements(), 0);
    }

    #[test]
    fn append_grows_sequence_dim() {
        let mut c = KvCache::new(1);
        let k1 = Tensor::full(vec![2, 2, 4], 1.0);
        c.append(0, &k1, &k1);
        let k2 = Tensor::full(vec![2, 1, 4], 2.0);
        c.append(0, &k2, &k2);
        assert_eq!(c.len(), 3);
        let (k, _) = c.contents(0).unwrap();
        assert_eq!(k.shape(), &[2, 3, 4]);
        assert_eq!(k.at(&[0, 0, 0]), 1.0);
        assert_eq!(k.at(&[0, 2, 0]), 2.0);
    }

    #[test]
    fn append_is_in_place_after_reserve() {
        // The O(L^2)-copy bugfix, pinned: with capacity reserved up front,
        // appending must not reallocate the slab, and contents/len() must
        // behave exactly as the concat-based cache did.
        let mut c = KvCache::new(1);
        c.reserve(64);
        let step = |v: f32| Tensor::full(vec![1, 1, 2], v);
        c.append(0, &step(0.0), &step(0.0));
        let ptr = c.get(0).unwrap().0.data().as_ptr();
        for i in 1..64 {
            c.append(0, &step(i as f32), &step(-(i as f32)));
        }
        assert_eq!(c.len(), 64);
        assert_eq!(c.get(0).unwrap().0.data().as_ptr(), ptr, "append must write in place");
        let (k, v) = c.contents(0).unwrap();
        assert_eq!(k.shape(), &[1, 64, 2]);
        for i in 0..64 {
            assert_eq!(k.at(&[0, i, 0]), i as f32);
            assert_eq!(v.at(&[0, i, 1]), -(i as f32));
        }
    }

    #[test]
    fn unreserved_append_grows_amortized() {
        let mut c = KvCache::new(1);
        let step = Tensor::full(vec![1, 1, 2], 1.0);
        for _ in 0..100 {
            c.append(0, &step, &step);
        }
        assert_eq!(c.len(), 100);
        let cap = c.get(0).unwrap().0.dim(1);
        assert!((100..=256).contains(&cap), "capacity {cap} should double geometrically");
        assert_eq!(c.total_elements(), 2 * 100 * 2, "only valid elements are counted");
    }

    #[test]
    fn total_elements_counts_k_and_v() {
        let mut c = KvCache::new(2);
        let t = Tensor::zeros(vec![1, 4, 8]);
        c.append(0, &t, &t);
        c.append(1, &t, &t);
        assert_eq!(c.total_elements(), 4 * (4 * 8));
    }

    #[test]
    fn repeat_batch_replicates_sequences() {
        let mut c = KvCache::new(1);
        let k = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        c.append(0, &k, &k);
        c.repeat_batch(3);
        let (kk, _) = c.contents(0).unwrap();
        assert_eq!(kk.shape(), &[6, 1, 2]);
        assert_eq!(kk.at(&[0, 0, 0]), 1.0);
        assert_eq!(kk.at(&[2, 0, 0]), 1.0);
        assert_eq!(kk.at(&[3, 0, 0]), 3.0);
        assert_eq!(c.len(), 1); // sequence length unchanged
    }

    #[test]
    fn slots_insert_read_and_evict() {
        let mut c = KvCache::new(2);
        let ka = Tensor::from_vec(vec![3, 2], (0..6).map(|i| i as f32).collect());
        let va = ka.scale(10.0);
        for layer in 0..2 {
            c.write_slot(layer, 1, 4, &ka, &va);
        }
        assert_eq!(c.row_lens(0), &[0, 3, 0, 0]);
        let (k, v) = c.read_slot(0, 1);
        assert_eq!(k.data(), ka.data());
        assert_eq!(v.data(), va.data());
        assert_eq!(c.read_slot(1, 0).0.dim(0), 0, "untouched rows are empty");
        // Overwrite with a shorter sequence, then evict.
        let kb = Tensor::from_vec(vec![1, 2], vec![7.0, 8.0]);
        c.write_slot(0, 1, 4, &kb, &kb);
        assert_eq!(c.row_lens(0), &[0, 1, 0, 0]);
        assert_eq!(c.read_slot(0, 1).0.data(), &[7.0, 8.0]);
        c.clear_slot(1);
        assert_eq!(c.row_lens(0), &[0, 0, 0, 0]);
        assert_eq!(c.row_lens(1), &[0, 0, 0, 0]);
    }

    #[test]
    fn ragged_rows_append_independently() {
        let mut c = KvCache::new(1);
        let ka = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        c.write_slot(0, 0, 2, &ka, &ka);
        let step = Tensor::full(vec![2, 1, 2], 9.0);
        c.append(0, &step, &step);
        assert_eq!(c.row_lens(0), &[3, 1]);
        assert_eq!(c.read_slot(0, 0).0.data(), &[1.0, 2.0, 3.0, 4.0, 9.0, 9.0]);
        assert_eq!(c.read_slot(0, 1).0.data(), &[9.0, 9.0]);
    }

    #[test]
    fn clear_resets() {
        let mut c = KvCache::new(1);
        let t = Tensor::zeros(vec![1, 1, 2]);
        c.append(0, &t, &t);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.n_layers(), 1);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn mismatched_kv_rejected() {
        let mut c = KvCache::new(1);
        c.append(0, &Tensor::zeros(vec![1, 1, 2]), &Tensor::zeros(vec![1, 1, 3]));
    }

    // ---- paged backend ----

    /// `[l, d]` tensor whose position `p`, feature `f` value is
    /// `tag + p + f/10` — distinguishable per position and per tensor.
    fn seq(tag: f32, l: usize, d: usize) -> Tensor {
        let data = (0..l * d).map(|i| tag + (i / d) as f32 + (i % d) as f32 / 10.0).collect();
        Tensor::from_vec(vec![l, d], data)
    }

    /// Shared-insert helper: one (K, V) pair per layer from `seq`.
    fn layer_kv(n_layers: usize, tag: f32, l: usize, d: usize) -> Vec<(Tensor, Tensor)> {
        (0..n_layers)
            .map(|li| {
                let t = seq(tag + 100.0 * li as f32, l, d);
                (t.clone(), t.scale(-1.0))
            })
            .collect()
    }

    #[test]
    fn paged_matches_slab_on_slot_roundtrip() {
        for page_size in [1, 3, 4, 16] {
            let mut slab = KvCache::new(2);
            let mut paged = KvCache::paged(2, page_size);
            let k = seq(1.0, 7, 4);
            let v = seq(2.0, 7, 4);
            for c in [&mut slab, &mut paged] {
                c.write_slot(0, 1, 3, &k, &v);
                c.write_slot(1, 1, 3, &v, &k);
                let step = Tensor::full(vec![3, 1, 4], 9.0);
                c.append(0, &step, &step);
                c.append(1, &step, &step);
            }
            for layer in 0..2 {
                for row in 0..3 {
                    let (ks, vs) = slab.read_slot(layer, row);
                    let (kp, vp) = paged.read_slot(layer, row);
                    assert_eq!(ks.data(), kp.data(), "S={page_size} layer={layer} row={row}");
                    assert_eq!(vs.data(), vp.data(), "S={page_size} layer={layer} row={row}");
                }
                assert_eq!(slab.row_lens(layer), paged.row_lens(layer));
            }
        }
    }

    #[test]
    fn shared_prefix_pages_are_mapped_not_copied() {
        let (s, d, l) = (4, 2, 10); // 10 positions = 2 full pages + 1 partial
        let mut c = KvCache::paged(2, s);
        let tokens: Vec<usize> = (0..l).collect();
        let kv = layer_kv(2, 1.0, l, d);
        c.insert_row_shared(0, 3, &kv, &tokens);
        let base = c.page_stats().unwrap();
        assert_eq!(base.pages_live, 3);
        assert_eq!(base.pages_shared, 0);
        // Same prompt again: all three pages map, nothing new allocates.
        c.insert_row_shared(1, 3, &kv, &tokens);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, 3, "identical prompt allocates nothing");
        assert_eq!(st.pages_shared, 3);
        // Same 8-token prefix, different tail: shares the 2 full pages.
        let mut tokens2 = tokens.clone();
        tokens2[9] = 99;
        let mut kv2 = layer_kv(2, 1.0, l, d);
        kv2[1].0.data_mut()[19] = -5.0; // the divergent tail position
        c.insert_row_shared(2, 3, &kv2, &tokens2);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, 4, "only the divergent partial page allocates");
        // Contents still correct per row.
        assert_eq!(c.read_slot(0, 0).0.data(), kv[0].0.data());
        assert_eq!(c.read_slot(1, 2).0.data(), kv2[1].0.data());
        assert_eq!(c.read_slot(1, 1).0.data(), kv[1].0.data());
    }

    #[test]
    fn append_to_shared_page_copies_on_write() {
        let (s, d, l) = (4, 2, 6); // final page holds positions 4..6, partial
        let mut c = KvCache::paged(1, s);
        let tokens: Vec<usize> = (0..l).collect();
        let kv = layer_kv(1, 1.0, l, d);
        c.insert_row_shared(0, 2, &kv, &tokens);
        c.insert_row_shared(1, 2, &kv, &tokens);
        assert_eq!(c.page_stats().unwrap().pages_shared, 2);
        // Row 0 is rewritten with one extra token: every page it touches is
        // shared, so both must copy out, leaving row 1's view untouched.
        let mut ext_k = kv[0].0.data().to_vec();
        ext_k.extend_from_slice(&vec![7.0; d]);
        let ext_kt = Tensor::from_vec(vec![l + 1, d], ext_k);
        c.write_slot(0, 0, 2, &ext_kt, &ext_kt);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, 4, "COW copies the two written pages");
        let (k1, v1) = c.read_slot(0, 1);
        assert_eq!(k1.data(), kv[0].0.data(), "sharer's bytes unchanged by COW");
        assert_eq!(v1.data(), kv[0].1.data());
        assert_eq!(c.read_slot(0, 0).0.data(), ext_kt.data());
    }

    #[test]
    fn eviction_frees_shared_pages_at_last_reference() {
        let (s, d, l) = (4, 2, 8);
        let mut c = KvCache::paged(1, s);
        let tokens: Vec<usize> = (0..l).collect();
        let kv = layer_kv(1, 3.0, l, d);
        c.insert_row_shared(0, 2, &kv, &tokens);
        c.insert_row_shared(1, 2, &kv, &tokens);
        c.clear_slot(0);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, 2, "sharer keeps the pages alive");
        assert_eq!(st.pages_free, 0);
        assert_eq!(c.read_slot(0, 1).0.data(), kv[0].0.data());
        c.clear_slot(1);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, 0);
        assert_eq!(st.pages_free, 2, "last reference returns pages to the pool");
        // Freed pages are deregistered: a re-insert re-allocates from the
        // free list rather than aliasing stale registry entries.
        c.insert_row_shared(0, 2, &kv, &tokens);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, 2);
        assert_eq!(st.pages_allocated, 2, "free-listed pages are reused");
    }

    #[test]
    fn total_elements_charges_shared_pages_once() {
        let (s, d, l) = (4, 2, 8);
        let mut c = KvCache::paged(1, s);
        let tokens: Vec<usize> = (0..l).collect();
        let kv = layer_kv(1, 0.0, l, d);
        c.insert_row_shared(0, 3, &kv, &tokens);
        let solo = c.total_elements();
        assert_eq!(solo, 2 * l * d);
        c.insert_row_shared(1, 3, &kv, &tokens);
        assert_eq!(c.total_elements(), solo, "a fully shared duplicate is free");
        let mut tokens2 = tokens.clone();
        tokens2[7] = 42;
        c.insert_row_shared(2, 3, &layer_kv(1, 0.5, l, d), &tokens2);
        assert_eq!(c.total_elements(), solo + 2 * s * d, "one divergent page charged");
    }

    #[test]
    fn paged_repeat_batch_shares_pages() {
        let (s, d, l) = (2, 2, 4);
        let mut c = KvCache::paged(1, s);
        let k = seq(1.0, l, d).into_reshape(vec![1, l, d]);
        c.append(0, &k, &k);
        let before = c.page_stats().unwrap().pages_live;
        c.repeat_batch(3);
        let st = c.page_stats().unwrap();
        assert_eq!(st.pages_live, before, "replicas map the original pages");
        assert_eq!(st.pages_shared, before);
        for r in 0..3 {
            assert_eq!(c.read_slot(0, r).0.data(), k.data());
        }
        assert_eq!(c.len(), l);
    }

    #[test]
    fn stale_prefix_keys_never_alias() {
        // A row that decodes into its registered partial page must drop the
        // key: a later request with the same prompt would otherwise map a
        // page that now contains generated tokens.
        let (s, d, l) = (4, 2, 6);
        let mut c = KvCache::paged(1, s);
        let tokens: Vec<usize> = (0..l).collect();
        let kv = layer_kv(1, 2.0, l, d);
        c.insert_row_shared(0, 2, &kv, &tokens);
        // Row 0 generates one token in place (refcount 1 → no COW, key must drop).
        let step = Tensor::full(vec![1, 1, d], 5.0);
        let mut batch_step = Tensor::zeros(vec![2, 1, d]);
        batch_step.data_mut()[..d].copy_from_slice(step.data());
        // Only row 0 has content; appending a [2,1,d] batch would also extend
        // row 1 from 0, which is fine for this check.
        c.append(0, &batch_step, &batch_step);
        // Same original prompt arrives: the partial page must NOT map.
        c.insert_row_shared(1, 2, &kv, &tokens);
        let (k1, _) = c.read_slot(0, 1);
        assert_eq!(k1.data(), kv[0].0.data(), "fresh insert sees prompt bytes, not generated ones");
    }

    #[test]
    #[should_panic(expected = "one token per cached position")]
    fn shared_insert_token_length_mismatch_rejected() {
        let mut c = KvCache::paged(1, 4);
        let kv = layer_kv(1, 0.0, 4, 2);
        c.insert_row_shared(0, 1, &kv, &[1, 2, 3]);
    }

    #[test]
    fn slab_shared_insert_degrades_to_write_slot() {
        let mut c = KvCache::new(2);
        let kv = layer_kv(2, 1.0, 5, 3);
        c.insert_row_shared(1, 4, &kv, &[9, 8, 7, 6, 5]);
        assert!(c.page_stats().is_none());
        for (li, (k, v)) in kv.iter().enumerate() {
            assert_eq!(c.read_slot(li, 1).0.data(), k.data());
            assert_eq!(c.read_slot(li, 1).1.data(), v.data());
        }
    }
}
