//! Transformer model definitions for the `esti` inference-scaling simulator.
//!
//! Two consumers share these definitions:
//!
//! * the **analytical performance model** (`esti-core`), which needs only
//!   the *shapes*: parameter counts, FLOPs per token, weight and KV-cache
//!   byte footprints — provided by [`ModelConfig`] at the paper's exact
//!   hyperparameters ([`ModelConfig::palm_540b`],
//!   [`ModelConfig::mt_nlg_530b`], …, Table D.1);
//! * the **functional runtime** (`esti-runtime`), which executes real
//!   forward passes on tiny structurally-identical configs and validates
//!   them against the single-chip reference implementation in [`mod@reference`].
//!
//! The reference model implements everything the paper's inference stack
//! relies on: multiquery *and* multihead attention (Section 3.3), the
//! parallel attention/feedforward block of PaLM as well as the serialized
//! formulation (Section 3.4), SwiGLU feedforward layers, KV caching, and
//! incremental (chunked) prefill.
//!
//! # Examples
//!
//! ```
//! use esti_model::ModelConfig;
//!
//! let palm = ModelConfig::palm_540b();
//! // Parameter count matches the published 540B (±1%).
//! let b = palm.param_count() as f64;
//! assert!((b - 540e9).abs() / 540e9 < 0.01);
//! ```

// Panic discipline: library code must not `unwrap`/`expect` its way past
// conditions a caller could plausibly trigger — those get shape-checked
// asserts with messages. The vetted remainder (infallible numeric
// invariants) carries targeted, justified `allow`s at each site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod kvcache;
pub mod reference;
pub mod weights;

pub use config::{AttentionKind, BlockKind, MlpKind, ModelConfig, PositionKind};
pub use kvcache::{KvCache, PageStats};
pub use reference::{attention_core, attention_core_ragged, attention_over_cache, ReferenceModel};
pub use weights::{LayerWeights, Weights};
