//! Single-chip reference implementation — the ground truth that every
//! partitioned execution in `esti-runtime` must reproduce.

use esti_tensor::{ops, Tensor};

use crate::config::{BlockKind, MlpKind, ModelConfig, PositionKind};
use crate::kvcache::KvCache;
use crate::weights::{LayerWeights, Weights};

/// An unpartitioned decoder-only Transformer.
///
/// Supports both phases of Section 2.2: [`ReferenceModel::prefill`] runs a
/// parallel forward pass over a chunk of input tokens (calling it again on
/// a non-empty cache performs *incremental prefill*, Section 3.5), and
/// [`ReferenceModel::decode_step`] generates one token per sequence
/// autoregressively using the KV cache.
///
/// # Examples
///
/// ```
/// use esti_model::{KvCache, ModelConfig, ReferenceModel};
///
/// let model = ReferenceModel::init_random(ModelConfig::tiny(), 0);
/// let mut cache = KvCache::new(model.config().n_layers);
/// let logits = model.prefill(&[vec![1, 2, 3]], &mut cache);
/// assert_eq!(logits.shape(), &[1, 3, model.config().vocab]);
/// let step = model.decode_step(&[4], &mut cache);
/// assert_eq!(step.shape(), &[1, model.config().vocab]);
/// assert_eq!(cache.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceModel {
    cfg: ModelConfig,
    weights: Weights,
}

impl ReferenceModel {
    /// Wraps existing weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights' layer count disagrees with the config.
    #[must_use]
    pub fn new(cfg: ModelConfig, weights: Weights) -> Self {
        assert_eq!(weights.layers.len(), cfg.n_layers, "layer count mismatch");
        ReferenceModel { cfg, weights }
    }

    /// Draws random weights for `cfg` (see [`Weights::random`]).
    #[must_use]
    pub fn init_random(cfg: ModelConfig, seed: u64) -> Self {
        let weights = Weights::random(&cfg, seed);
        ReferenceModel { cfg, weights }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The model weights.
    #[must_use]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Embeds token ids into `[B, L, E]` activations.
    ///
    /// # Panics
    ///
    /// Panics if sequences have unequal lengths or a token id is out of
    /// vocabulary.
    #[must_use]
    pub fn embed(&self, tokens: &[Vec<usize>]) -> Tensor {
        let b = tokens.len();
        assert!(b > 0, "empty batch");
        let l = tokens[0].len();
        assert!(l > 0, "empty sequence");
        let e = self.cfg.d_model;
        let mut x = Tensor::zeros(vec![b, l, e]);
        for (bi, seq) in tokens.iter().enumerate() {
            assert_eq!(seq.len(), l, "ragged batch: all sequences must have equal length");
            for (li, &tok) in seq.iter().enumerate() {
                assert!(tok < self.cfg.vocab, "token id {tok} out of vocabulary");
                for ei in 0..e {
                    x.set(&[bi, li, ei], self.weights.embed.at(&[tok, ei]));
                }
            }
        }
        x
    }

    /// [`ReferenceModel::embed`] plus position information: for models
    /// with learned absolute positions, adds the embedding of positions
    /// `base..base + L` (the base accounts for previously cached tokens).
    /// RoPE models add nothing here — their rotation happens inside
    /// attention.
    ///
    /// # Panics
    ///
    /// Panics if `base + L` exceeds the model's `max_seq` for a
    /// learned-position model.
    #[must_use]
    pub fn embed_at(&self, tokens: &[Vec<usize>], base: usize) -> Tensor {
        let mut x = self.embed(tokens);
        if self.cfg.position == PositionKind::Learned {
            // Vetted: `Weights::random` always materializes the table for
            // learned-position configs; its absence is a constructor bug,
            // not a runtime fault.
            #[allow(clippy::expect_used)]
            let pos = self
                .weights
                .pos_embed
                .as_ref()
                .expect("learned-position model carries a position table");
            let (b, l, e) = (x.dim(0), x.dim(1), x.dim(2));
            assert!(
                base + l <= self.cfg.max_seq,
                "sequence of {} tokens exceeds max_seq {}",
                base + l,
                self.cfg.max_seq
            );
            for bi in 0..b {
                for li in 0..l {
                    for ei in 0..e {
                        let v = x.at(&[bi, li, ei]) + pos.at(&[base + li, ei]);
                        x.set(&[bi, li, ei], v);
                    }
                }
            }
        }
        x
    }

    /// Runs the prefill phase over a chunk of `tokens` (`[B][L]`),
    /// appending keys/values to `cache` and returning logits `[B, L, V]`.
    ///
    /// With a non-empty cache this is incremental prefill: the chunk
    /// attends to all previously cached positions.
    ///
    /// # Panics
    ///
    /// Panics on ragged batches or out-of-vocabulary tokens.
    #[must_use]
    pub fn prefill(&self, tokens: &[Vec<usize>], cache: &mut KvCache) -> Tensor {
        let x = self.embed_at(tokens, cache.len());
        let h = self.forward(x, cache);
        self.logits(&h)
    }

    /// Runs one decode step over one token per sequence, appending to
    /// `cache` and returning logits `[B, V]`.
    #[must_use]
    pub fn decode_step(&self, tokens: &[usize], cache: &mut KvCache) -> Tensor {
        let seqs: Vec<Vec<usize>> = tokens.iter().map(|&t| vec![t]).collect();
        let x = self.embed_at(&seqs, cache.len());
        let h = self.forward(x, cache);
        let logits = self.logits(&h);
        let (b, v) = (tokens.len(), self.cfg.vocab);
        logits.into_reshape(vec![b, v])
    }

    /// The Transformer stack: layers plus final layernorm.
    /// `x` is `[B, L, E]`; returns the same shape.
    fn forward(&self, mut x: Tensor, cache: &mut KvCache) -> Tensor {
        assert_eq!(cache.n_layers(), self.cfg.n_layers, "cache layer count mismatch");
        for (li, layer) in self.weights.layers.iter().enumerate() {
            x = match self.cfg.block {
                BlockKind::Parallel => {
                    let ln = ln3(&x, &layer.ln1);
                    let attn = self.attention(&ln, layer, li, cache);
                    let mlp = self.mlp(&ln, layer);
                    &(&x + &attn) + &mlp
                }
                BlockKind::Serial => {
                    let attn = self.attention(&ln3(&x, &layer.ln1), layer, li, cache);
                    let x1 = &x + &attn;
                    // Vetted: serial-block weights always carry ln2 (paired
                    // by `Weights::random`); absence is a constructor bug.
                    #[allow(clippy::expect_used)]
                    let ln2 = layer.ln2.as_ref().expect("serial block requires ln2");
                    let mlp = self.mlp(&ln3(&x1, ln2), layer);
                    &x1 + &mlp
                }
            };
        }
        ln3(&x, &self.weights.ln_final)
    }

    /// Attention sublayer: projects Q/K/V, appends KV to the cache, runs
    /// causal softmax attention per head, projects the output.
    fn attention(&self, x: &Tensor, layer: &LayerWeights, li: usize, cache: &mut KvCache) -> Tensor {
        let dh = self.cfg.d_head;
        let mut q = mm3(x, &layer.wq); // [B, Lq, H*dh]
        let mut k_new = mm3(x, &layer.wk); // [B, Lq, Hkv*dh]
        let v_new = mm3(x, &layer.wv);
        if self.cfg.position == PositionKind::Rope {
            let base = cache.len_of(li);
            q = ops::rope(&q, dh, base);
            k_new = ops::rope(&k_new, dh, base);
        }
        cache.append(li, &k_new, &v_new);
        let attn = attention_over_cache(&q, cache, li, dh);
        mm3(&attn, &layer.wo)
    }

    /// Feedforward sublayer.
    fn mlp(&self, x: &Tensor, layer: &LayerWeights) -> Tensor {
        let hidden = match self.cfg.mlp {
            MlpKind::SwiGlu => {
                // Vetted: SwiGLU weights always carry w_gate (paired by
                // `Weights::random`); absence is a constructor bug.
                #[allow(clippy::expect_used)]
                let gate = mm3(x, layer.w_gate.as_ref().expect("SwiGLU requires w_gate"));
                let up = mm3(x, &layer.w_in);
                ops::swiglu(&gate, &up)
            }
            MlpKind::Gelu => gelu(&mm3(x, &layer.w_in)),
        };
        mm3(&hidden, &layer.w_out)
    }

    /// Projects hidden states `[B, L, E]` to logits `[B, L, V]` through the
    /// shared embedding.
    fn logits(&self, h: &Tensor) -> Tensor {
        mm3(h, &self.weights.embed.transpose())
    }
}

/// Scaled-dot-product causal attention over whatever heads are present
/// locally: `q` is `[B, Lq, Hq·dh]`, `k`/`v` are `[B, Lk, Hkv·dh]`, and
/// query head `h` attends to key/value head `h % Hkv` (so `Hkv = 1` is
/// multiquery and `Hkv = Hq` multihead). Returns `[B, Lq, Hq·dh]`.
///
/// Shared with the partitioned runtime so that head-sharded and
/// batch-sharded executions use byte-identical attention semantics.
///
/// # Panics
///
/// Panics if head widths are not multiples of `d_head` or batch/context
/// dims disagree.
#[must_use]
pub fn attention_core(q: &Tensor, k: &Tensor, v: &Tensor, d_head: usize) -> Tensor {
    let lens = vec![k.dim(1); q.dim(0)];
    attention_core_ragged(q, k, v, d_head, &lens)
}

/// Length-masked variant of [`attention_core`] for ragged batches: `k`/`v`
/// are `[B, capacity, Hkv·dh]` slabs (as stored by the slot-based
/// [`KvCache`]) of which row `bi` holds `lens[bi]` valid positions; row
/// `bi`'s queries occupy absolute positions `lens[bi] - Lq .. lens[bi]`.
/// With uniform `lens` equal to the capacity this is exactly
/// [`attention_core`] — each batch row was already computed independently,
/// so trimming per row changes nothing for dense inputs.
///
/// # Panics
///
/// Panics if `lens` disagrees with the batch dim, any `lens[bi]` exceeds
/// the slab capacity or is shorter than `Lq`, or head widths are not
/// multiples of `d_head`.
#[must_use]
pub fn attention_core_ragged(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_head: usize,
    lens: &[usize],
) -> Tensor {
    let b = q.dim(0);
    assert_eq!(k.dim(0), b, "batch mismatch between Q and K");
    assert_eq!(k.shape(), v.shape(), "K and V must have matching shapes");
    let cap = k.dim(1);
    assert!(k.dim(2).is_multiple_of(d_head), "head width mismatch");
    let kd = k.dim(2);
    attention_rows(q, d_head, lens, |bi, l_k| {
        assert!(l_k <= cap, "row {bi} length {l_k} exceeds slab capacity {cap}");
        let row = bi * cap * kd;
        let k_b = Tensor::from_vec(vec![l_k, kd], k.data()[row..row + l_k * kd].to_vec());
        let v_b = Tensor::from_vec(vec![l_k, kd], v.data()[row..row + l_k * kd].to_vec());
        (k_b, v_b)
    })
}

/// [`attention_core_ragged`] reading K/V for `layer` directly out of a
/// [`KvCache`] row by row ([`KvCache::read_slot`]), so the same attention
/// math runs over either cache backend — the slab's contiguous row copy
/// and the paged backend's block-table gather materialize byte-identical
/// `[Lk, Hkv·dh]` buffers, which is what makes paged decode bit-identical
/// to slab decode by construction.
///
/// # Panics
///
/// Panics as [`attention_core_ragged`] does, or if `layer` holds nothing.
#[must_use]
pub fn attention_over_cache(q: &Tensor, cache: &KvCache, layer: usize, d_head: usize) -> Tensor {
    attention_rows(q, d_head, cache.row_lens(layer), |bi, _| cache.read_slot(layer, bi))
}

/// The shared per-row, per-head attention loop: `row_kv(bi, lens[bi])`
/// materializes row `bi`'s valid `([Lk, Hkv·dh], [Lk, Hkv·dh])` K/V pair.
fn attention_rows(
    q: &Tensor,
    d_head: usize,
    lens: &[usize],
    row_kv: impl Fn(usize, usize) -> (Tensor, Tensor),
) -> Tensor {
    let (b, l_q) = (q.dim(0), q.dim(1));
    assert_eq!(lens.len(), b, "one valid length per batch row");
    assert!(q.dim(2).is_multiple_of(d_head), "head width mismatch");
    let hq = q.dim(2) / d_head;
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut per_batch = Vec::with_capacity(b);
    for (bi, &l_k) in lens.iter().enumerate() {
        assert!(l_k >= l_q, "row {bi} length {l_k} shorter than query length {l_q}");
        let q_b = q.slice(0, bi, 1).into_reshape(vec![l_q, hq * d_head]);
        let (k_b, v_b) = row_kv(bi, l_k);
        assert_eq!(k_b.shape(), v_b.shape(), "K and V must have matching shapes");
        assert!(k_b.dim(1).is_multiple_of(d_head), "head width mismatch");
        let hkv = k_b.dim(1) / d_head;
        let mut heads = Vec::with_capacity(hq);
        for hi in 0..hq {
            let kv_i = hi % hkv;
            let q_h = q_b.slice(1, hi * d_head, d_head); // [Lq, dh]
            let k_h = k_b.slice(1, kv_i * d_head, d_head); // [Lk, dh]
            let v_h = v_b.slice(1, kv_i * d_head, d_head);
            let scores = ops::matmul(&q_h, &k_h.transpose()).scale(scale);
            let probs = ops::softmax_base2(&ops::causal_mask(&scores));
            heads.push(ops::matmul(&probs, &v_h)); // [Lq, dh]
        }
        let hs: Vec<&Tensor> = heads.iter().collect();
        per_batch.push(Tensor::concat(&hs, 1).into_reshape(vec![1, l_q, hq * d_head]));
    }
    let refs: Vec<&Tensor> = per_batch.iter().collect();
    Tensor::concat(&refs, 0)
}

/// Layernorm over the last dim of a rank-3 tensor.
fn ln3(x: &Tensor, gain: &Tensor) -> Tensor {
    ops::layernorm(x, gain, 1e-6)
}

/// `[B, L, E] × [E, D] → [B, L, D]` by flattening the leading dims.
/// Public because the partitioned runtime applies the same convention to
/// weight shards.
#[must_use]
pub fn mm3(x: &Tensor, w: &Tensor) -> Tensor {
    let (b, l, e) = (x.dim(0), x.dim(1), x.dim(2));
    let flat = x.reshape(vec![b * l, e]);
    let out = ops::matmul(&flat, w);
    let d = w.dim(1);
    out.into_reshape(vec![b, l, d])
}

/// GELU (tanh approximation), used by the Megatron-style MLP.
#[must_use]
pub fn gelu(t: &Tensor) -> Tensor {
    t.map(|v| {
        0.5 * v
            * (1.0
                + ((2.0 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v)).tanh())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<ReferenceModel> {
        vec![
            ReferenceModel::init_random(ModelConfig::tiny(), 3),
            ReferenceModel::init_random(ModelConfig::tiny_multihead(), 3),
        ]
    }

    #[test]
    fn prefill_shapes() {
        for m in models() {
            let mut cache = KvCache::new(m.config().n_layers);
            let logits = m.prefill(&[vec![1, 2, 3, 4], vec![5, 6, 7, 8]], &mut cache);
            assert_eq!(logits.shape(), &[2, 4, m.config().vocab], "{}", m.config().name);
            assert_eq!(cache.len(), 4);
        }
    }

    #[test]
    fn decode_extends_cache() {
        for m in models() {
            let mut cache = KvCache::new(m.config().n_layers);
            let _ = m.prefill(&[vec![1, 2]], &mut cache);
            let l1 = m.decode_step(&[3], &mut cache);
            assert_eq!(l1.shape(), &[1, m.config().vocab]);
            assert_eq!(cache.len(), 3);
        }
    }

    #[test]
    fn decode_equals_full_prefill() {
        // The last-position logits of a full prefill over [t0..t3] must
        // equal the logits of prefill([t0..t2]) followed by decode(t3).
        for m in models() {
            let toks = vec![1usize, 9, 4, 7];
            let mut full_cache = KvCache::new(m.config().n_layers);
            let full = m.prefill(std::slice::from_ref(&toks), &mut full_cache);
            let last = full.slice(1, 3, 1).into_reshape(vec![1, m.config().vocab]);

            let mut inc_cache = KvCache::new(m.config().n_layers);
            let _ = m.prefill(&[toks[..3].to_vec()], &mut inc_cache);
            let step = m.decode_step(&[toks[3]], &mut inc_cache);
            assert!(
                step.approx_eq(&last, 1e-3),
                "{}: max diff {}",
                m.config().name,
                step.max_abs_diff(&last)
            );
        }
    }

    #[test]
    fn incremental_prefill_matches_single_shot() {
        for m in models() {
            let toks = vec![2usize, 3, 5, 8, 13, 21];
            let mut one = KvCache::new(m.config().n_layers);
            let full = m.prefill(std::slice::from_ref(&toks), &mut one);

            let mut two = KvCache::new(m.config().n_layers);
            let _ = m.prefill(&[toks[..2].to_vec()], &mut two);
            let part = m.prefill(&[toks[2..].to_vec()], &mut two);

            let tail = full.slice(1, 2, 4);
            assert!(
                part.approx_eq(&tail, 1e-3),
                "{}: max diff {}",
                m.config().name,
                part.max_abs_diff(&tail)
            );
            assert_eq!(one.len(), two.len());
        }
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        for m in models() {
            let mut c1 = KvCache::new(m.config().n_layers);
            let mut c2 = KvCache::new(m.config().n_layers);
            let a = m.prefill(&[vec![1, 2, 3, 4]], &mut c1);
            let b = m.prefill(&[vec![1, 2, 3, 40]], &mut c2);
            // logits at positions 0..3 (which see tokens 0..=pos) agree.
            let a_head = a.slice(1, 0, 3);
            let b_head = b.slice(1, 0, 3);
            assert!(a_head.approx_eq(&b_head, 1e-4), "{}", m.config().name);
            // position 3 differs (different input token there).
            assert!(a.slice(1, 3, 1).max_abs_diff(&b.slice(1, 3, 1)) > 1e-3);
        }
    }

    #[test]
    fn batch_elements_are_independent() {
        let m = ReferenceModel::init_random(ModelConfig::tiny(), 5);
        let mut c_pair = KvCache::new(m.config().n_layers);
        let pair = m.prefill(&[vec![3, 1, 4], vec![2, 7, 1]], &mut c_pair);
        let mut c_solo = KvCache::new(m.config().n_layers);
        let solo = m.prefill(&[vec![2, 7, 1]], &mut c_solo);
        assert!(pair.slice(0, 1, 1).approx_eq(&solo, 1e-4));
    }

    #[test]
    fn parallel_and_serial_blocks_differ() {
        let cfg_p = ModelConfig::tiny();
        let mut cfg_s = cfg_p.clone();
        cfg_s.block = BlockKind::Serial;
        // Same seed; serial has extra ln2 gains but the matrices draw in a
        // different order anyway — just verify both run and differ.
        let mp = ReferenceModel::init_random(cfg_p, 1);
        let ms = ReferenceModel::init_random(cfg_s, 1);
        let mut c1 = KvCache::new(2);
        let mut c2 = KvCache::new(2);
        let lp = mp.prefill(&[vec![1, 2]], &mut c1);
        let ls = ms.prefill(&[vec![1, 2]], &mut c2);
        assert_eq!(lp.shape(), ls.shape());
    }

    #[test]
    #[should_panic(expected = "ragged batch")]
    fn ragged_batch_rejected() {
        let m = ReferenceModel::init_random(ModelConfig::tiny(), 0);
        let mut cache = KvCache::new(m.config().n_layers);
        let _ = m.prefill(&[vec![1, 2], vec![3]], &mut cache);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_rejected() {
        let m = ReferenceModel::init_random(ModelConfig::tiny(), 0);
        let mut cache = KvCache::new(m.config().n_layers);
        let _ = m.prefill(&[vec![1000]], &mut cache);
    }

    #[test]
    fn learned_positions_break_repeated_token_symmetry() {
        // For a repeated token, causal attention over identical keys/values
        // yields identical outputs at every position unless something
        // breaks the symmetry; absolute position embeddings do.
        let m = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 9);
        let mut cache = KvCache::new(m.config().n_layers);
        let logits = m.prefill(&[vec![5, 5]], &mut cache);
        let p0 = logits.slice(1, 0, 1);
        let p1 = logits.slice(1, 1, 1);
        assert!(p0.max_abs_diff(&p1) > 1e-3, "learned positions had no effect");
    }

    #[test]
    fn rope_changes_attention_outcomes() {
        // Same weights, RoPE vs no positions: attention scores over
        // *distinct* keys depend on relative position, so logits differ.
        let cfg_rope = ModelConfig::tiny();
        let mut cfg_none = cfg_rope.clone();
        cfg_none.position = crate::config::PositionKind::None;
        let w = crate::weights::Weights::random(&cfg_rope, 9);
        let with_rope = ReferenceModel::new(cfg_rope, w.clone());
        let without = ReferenceModel::new(cfg_none, w);
        let mut c1 = KvCache::new(2);
        let mut c2 = KvCache::new(2);
        let a = with_rope.prefill(&[vec![3, 7, 11]], &mut c1);
        let b = without.prefill(&[vec![3, 7, 11]], &mut c2);
        // Position 0 is identical (rotation at position 0 is the identity)…
        assert!(a.slice(1, 0, 1).approx_eq(&b.slice(1, 0, 1), 1e-5));
        // …but later positions must differ.
        assert!(a.slice(1, 2, 1).max_abs_diff(&b.slice(1, 2, 1)) > 1e-3);
    }

    #[test]
    fn learned_positions_respect_max_seq() {
        let m = ReferenceModel::init_random(ModelConfig::tiny_multihead(), 9);
        let mut cache = KvCache::new(m.config().n_layers);
        let long: Vec<usize> = (0..m.config().max_seq).map(|t| t % 40).collect();
        let _ = m.prefill(&[long], &mut cache); // exactly max_seq fits
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c2 = cache.clone();
            let _ = m.decode_step(&[1], &mut c2); // one past max_seq
        }));
        assert!(result.is_err(), "exceeding max_seq must panic for learned positions");
    }

    #[test]
    fn logits_are_finite() {
        for m in models() {
            let mut cache = KvCache::new(m.config().n_layers);
            let logits = m.prefill(&[vec![0, 1, 2, 3, 4, 5, 6, 7]], &mut cache);
            assert!(logits.data().iter().all(|v| v.is_finite()), "{}", m.config().name);
        }
    }
}
