//! The tensor-sharding notation of Section 3.1.
//!
//! The paper writes partitioned tensors as their logical shape with torus
//! axes as subscripts: `BLE_xyz` is a `[B, L, E]` tensor whose last
//! dimension is split over all three axes; `E_x F_yz` is a weight matrix
//! split `X` ways along `d_model` and `Y·Z` ways along `d_ff`. A suffix
//! "partialsum-x" marks a tensor that still needs summation across the `x`
//! axis. This module gives that notation a typed form used by the layout
//! definitions and the partitioned runtime.

use std::fmt;

use esti_topology::{AxisSet, ChipCoord, TorusShape};

/// One logical tensor dimension with its partitioning axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardedDim {
    /// One-letter dimension name from the paper's vocabulary
    /// (`B`, `L`, `E`, `F`, `H`, `Q`, `V`, …).
    pub name: char,
    /// Torus axes this dimension is split over (empty = replicated).
    pub axes: AxisSet,
}

/// A sharding specification: an ordered list of dimensions with their axis
/// subscripts, plus an optional partial-sum marker.
///
/// # Examples
///
/// ```
/// use esti_core::sharding::ShardingSpec;
/// use esti_topology::{Axis, AxisSet, TorusShape};
///
/// // BLE_xyz — activations with d_model fully sharded.
/// let spec = ShardingSpec::new("BLE").shard('E', AxisSet::all());
/// assert_eq!(spec.to_string(), "BLE_xyz");
///
/// let torus = TorusShape::new(2, 2, 2);
/// assert_eq!(spec.local_shape(&[4, 10, 16], torus), vec![4, 10, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardingSpec {
    dims: Vec<ShardedDim>,
    partial_sum: AxisSet,
}

impl ShardingSpec {
    /// Starts a fully-replicated spec from dimension names, e.g. `"BLE"`.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or contains repeated characters.
    #[must_use]
    pub fn new(names: &str) -> Self {
        assert!(!names.is_empty(), "sharding spec needs at least one dimension");
        let mut dims = Vec::new();
        for c in names.chars() {
            assert!(
                dims.iter().all(|d: &ShardedDim| d.name != c),
                "repeated dimension name {c}"
            );
            dims.push(ShardedDim { name: c, axes: AxisSet::empty() });
        }
        ShardingSpec { dims, partial_sum: AxisSet::empty() }
    }

    /// Returns a copy with dimension `name` sharded over `axes`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown or `axes` overlaps another dimension's
    /// axes (an axis can shard at most one dimension).
    #[must_use]
    pub fn shard(mut self, name: char, axes: AxisSet) -> Self {
        for d in &self.dims {
            if d.name != name {
                assert!(
                    d.axes.is_disjoint(axes),
                    "axis set {axes} already used by dimension {}",
                    d.name
                );
            }
        }
        let dim = self
            .dims
            .iter_mut()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dimension {name}"));
        dim.axes = axes;
        self
    }

    /// Returns a copy marked as a partial sum over `axes`
    /// ("partialsum-x" in the paper).
    #[must_use]
    pub fn partial(mut self, axes: AxisSet) -> Self {
        self.partial_sum = axes;
        self
    }

    /// The dimensions in order.
    #[must_use]
    pub fn dims(&self) -> &[ShardedDim] {
        &self.dims
    }

    /// Axes this tensor is a partial sum over.
    #[must_use]
    pub fn partial_sum(&self) -> AxisSet {
        self.partial_sum
    }

    /// The sharding axes of dimension `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown.
    #[must_use]
    pub fn axes_of(&self, name: char) -> AxisSet {
        self.dims
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dimension {name}"))
            .axes
    }

    /// Total number of distinct shards (product of partition counts).
    #[must_use]
    pub fn shard_count(&self, torus: TorusShape) -> usize {
        self.dims.iter().map(|d| torus.group_size(d.axes)).product()
    }

    /// The per-chip (local) shape for a given global shape on `torus`.
    ///
    /// # Panics
    ///
    /// Panics if the rank mismatches or a dimension is not divisible by its
    /// partition count.
    #[must_use]
    pub fn local_shape(&self, global: &[usize], torus: TorusShape) -> Vec<usize> {
        assert_eq!(global.len(), self.dims.len(), "rank mismatch");
        self.dims
            .iter()
            .zip(global)
            .map(|(d, &g)| {
                let parts = torus.group_size(d.axes);
                assert!(
                    g % parts == 0,
                    "dimension {} of size {g} not divisible by {parts} partitions",
                    d.name
                );
                g / parts
            })
            .collect()
    }

    /// The slice `(start, len)` of global dimension `idx` owned by the chip
    /// at `coord`. Shard index is the lexicographic position of the chip's
    /// coordinates along the dimension's axes (canonical `x, y, z` order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the dimension is not divisible.
    #[must_use]
    pub fn local_range(
        &self,
        idx: usize,
        global: usize,
        torus: TorusShape,
        coord: ChipCoord,
    ) -> (usize, usize) {
        let d = &self.dims[idx];
        let parts = torus.group_size(d.axes);
        assert!(global.is_multiple_of(parts), "dimension not divisible by partitions");
        let len = global / parts;
        let mut shard = 0;
        for a in d.axes.iter() {
            shard = shard * torus.size(a) + coord.along(a);
        }
        (shard * len, len)
    }

    /// Per-chip element count for a global shape — what one chip stores.
    #[must_use]
    pub fn local_elements(&self, global: &[usize], torus: TorusShape) -> usize {
        self.local_shape(global, torus).iter().product()
    }
}

impl fmt::Display for ShardingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dims {
            write!(f, "{}", d.name)?;
            if !d.axes.is_empty() {
                write!(f, "_{}", d.axes)?;
            }
        }
        if !self.partial_sum.is_empty() {
            write!(f, " (partialsum-{})", self.partial_sum)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_topology::Axis;
    use proptest::prelude::*;

    #[test]
    fn notation_matches_paper() {
        // E_x F_yz: the 2D weight-stationary weight layout.
        let w = ShardingSpec::new("EF")
            .shard('E', AxisSet::single(Axis::X))
            .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]));
        assert_eq!(w.to_string(), "E_xF_yz");

        let partial = ShardingSpec::new("BLE")
            .shard('E', AxisSet::of(&[Axis::Y, Axis::Z]))
            .partial(AxisSet::single(Axis::X));
        assert_eq!(partial.to_string(), "BLE_yz (partialsum-x)");
    }

    #[test]
    fn local_shapes() {
        let torus = TorusShape::new(2, 4, 2);
        let w = ShardingSpec::new("EF")
            .shard('E', AxisSet::single(Axis::X))
            .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]));
        assert_eq!(w.local_shape(&[16, 64], torus), vec![8, 8]);
        assert_eq!(w.shard_count(torus), 16);
        assert_eq!(w.local_elements(&[16, 64], torus), 64);
    }

    #[test]
    fn local_range_covers_dimension() {
        let torus = TorusShape::new(2, 2, 1);
        let spec = ShardingSpec::new("BE").shard('E', AxisSet::of(&[Axis::X, Axis::Y]));
        let mut covered = [false; 16];
        for c in torus.chips() {
            let (start, len) = spec.local_range(1, 16, torus, c);
            assert_eq!(len, 4);
            for c in covered.iter_mut().skip(start).take(len) {
                *c = true; // chips sharing a shard mark it again
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn replicated_dims_get_full_range() {
        let torus = TorusShape::new(4, 1, 1);
        let spec = ShardingSpec::new("BE").shard('E', AxisSet::single(Axis::X));
        for c in torus.chips() {
            assert_eq!(spec.local_range(0, 8, torus, c), (0, 8));
        }
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn overlapping_axes_rejected() {
        let _ = ShardingSpec::new("EF")
            .shard('E', AxisSet::single(Axis::X))
            .shard('F', AxisSet::single(Axis::X));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dimension_rejected() {
        let torus = TorusShape::new(3, 1, 1);
        let spec = ShardingSpec::new("E").shard('E', AxisSet::single(Axis::X));
        let _ = spec.local_shape(&[16], torus);
    }

    #[test]
    #[should_panic(expected = "unknown dimension")]
    fn unknown_dimension_rejected() {
        let _ = ShardingSpec::new("BLE").shard('Q', AxisSet::all());
    }

    proptest! {
        #[test]
        fn prop_local_elements_times_shards_is_global(
            x in 1usize..4, y in 1usize..4, z in 1usize..4,
            scale in 1usize..4,
        ) {
            let torus = TorusShape::new(x, y, z);
            let spec = ShardingSpec::new("EF")
                .shard('E', AxisSet::single(Axis::X))
                .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]));
            let global = [x * scale * 2, y * z * scale * 3];
            let local = spec.local_elements(&global, torus);
            prop_assert_eq!(
                local * spec.shard_count(torus),
                global[0] * global[1]
            );
        }

        #[test]
        fn prop_ranges_tile_dimension(x in 1usize..5, y in 1usize..5) {
            let torus = TorusShape::new(x, y, 1);
            let spec = ShardingSpec::new("E").shard('E', AxisSet::of(&[Axis::X, Axis::Y]));
            let global = x * y * 2;
            let mut hits = vec![0usize; global];
            for c in torus.chips() {
                let (s, l) = spec.local_range(0, global, torus, c);
                for h in hits.iter_mut().skip(s).take(l) {
                    *h += 1;
                }
            }
            // Every element owned exactly once.
            prop_assert!(hits.iter().all(|&h| h == 1));
        }
    }
}
