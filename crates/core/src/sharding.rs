//! The tensor-sharding notation of Section 3.1.
//!
//! The paper writes partitioned tensors as their logical shape with torus
//! axes as subscripts: `BLE_xyz` is a `[B, L, E]` tensor whose last
//! dimension is split over all three axes; `E_x F_yz` is a weight matrix
//! split `X` ways along `d_model` and `Y·Z` ways along `d_ff`. A suffix
//! "partialsum-x" marks a tensor that still needs summation across the `x`
//! axis. This module gives that notation a typed form used by the layout
//! definitions and the partitioned runtime.

use std::fmt;

use esti_topology::{AxisSet, ChipCoord, TorusShape};

/// One logical tensor dimension with its partitioning axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardedDim {
    /// One-letter dimension name from the paper's vocabulary
    /// (`B`, `L`, `E`, `F`, `H`, `Q`, `V`, …).
    pub name: char,
    /// Torus axes this dimension is split over (empty = replicated).
    pub axes: AxisSet,
}

/// A sharding specification: an ordered list of dimensions with their axis
/// subscripts, plus an optional partial-sum marker.
///
/// # Examples
///
/// ```
/// use esti_core::sharding::ShardingSpec;
/// use esti_topology::{Axis, AxisSet, TorusShape};
///
/// // BLE_xyz — activations with d_model fully sharded.
/// let spec = ShardingSpec::new("BLE").shard('E', AxisSet::all());
/// assert_eq!(spec.to_string(), "BLE_xyz");
///
/// let torus = TorusShape::new(2, 2, 2);
/// assert_eq!(spec.local_shape(&[4, 10, 16], torus), vec![4, 10, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardingSpec {
    dims: Vec<ShardedDim>,
    partial_sum: AxisSet,
}

impl ShardingSpec {
    /// Starts a fully-replicated spec from dimension names, e.g. `"BLE"`.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or contains repeated characters.
    #[must_use]
    pub fn new(names: &str) -> Self {
        assert!(!names.is_empty(), "sharding spec needs at least one dimension");
        let mut dims = Vec::new();
        for c in names.chars() {
            assert!(
                dims.iter().all(|d: &ShardedDim| d.name != c),
                "repeated dimension name {c}"
            );
            dims.push(ShardedDim { name: c, axes: AxisSet::empty() });
        }
        ShardingSpec { dims, partial_sum: AxisSet::empty() }
    }

    /// Returns a copy with dimension `name` sharded over `axes`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown or `axes` overlaps another dimension's
    /// axes (an axis can shard at most one dimension).
    #[must_use]
    pub fn shard(mut self, name: char, axes: AxisSet) -> Self {
        for d in &self.dims {
            if d.name != name {
                assert!(
                    d.axes.is_disjoint(axes),
                    "axis set {axes} already used by dimension {}",
                    d.name
                );
            }
        }
        let dim = self
            .dims
            .iter_mut()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dimension {name}"));
        dim.axes = axes;
        self
    }

    /// Returns a copy marked as a partial sum over `axes`
    /// ("partialsum-x" in the paper).
    #[must_use]
    pub fn partial(mut self, axes: AxisSet) -> Self {
        self.partial_sum = axes;
        self
    }

    /// The dimensions in order.
    #[must_use]
    pub fn dims(&self) -> &[ShardedDim] {
        &self.dims
    }

    /// Axes this tensor is a partial sum over.
    #[must_use]
    pub fn partial_sum(&self) -> AxisSet {
        self.partial_sum
    }

    /// The sharding axes of dimension `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown.
    #[must_use]
    pub fn axes_of(&self, name: char) -> AxisSet {
        self.dims
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dimension {name}"))
            .axes
    }

    /// Total number of distinct shards (product of partition counts).
    #[must_use]
    pub fn shard_count(&self, torus: TorusShape) -> usize {
        self.dims.iter().map(|d| torus.group_size(d.axes)).product()
    }

    /// The per-chip (local) shape for a given global shape on `torus`.
    ///
    /// # Panics
    ///
    /// Panics if the rank mismatches or a dimension is not divisible by its
    /// partition count.
    #[must_use]
    pub fn local_shape(&self, global: &[usize], torus: TorusShape) -> Vec<usize> {
        assert_eq!(global.len(), self.dims.len(), "rank mismatch");
        self.dims
            .iter()
            .zip(global)
            .map(|(d, &g)| {
                let parts = torus.group_size(d.axes);
                assert!(
                    g % parts == 0,
                    "dimension {} of size {g} not divisible by {parts} partitions",
                    d.name
                );
                g / parts
            })
            .collect()
    }

    /// The slice `(start, len)` of global dimension `idx` owned by the chip
    /// at `coord`. Shard index is the lexicographic position of the chip's
    /// coordinates along the dimension's axes (canonical `x, y, z` order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the dimension is not divisible.
    #[must_use]
    pub fn local_range(
        &self,
        idx: usize,
        global: usize,
        torus: TorusShape,
        coord: ChipCoord,
    ) -> (usize, usize) {
        let d = &self.dims[idx];
        let parts = torus.group_size(d.axes);
        assert!(global.is_multiple_of(parts), "dimension not divisible by partitions");
        let len = global / parts;
        let mut shard = 0;
        for a in d.axes.iter() {
            shard = shard * torus.size(a) + coord.along(a);
        }
        (shard * len, len)
    }

    /// Per-chip element count for a global shape — what one chip stores.
    #[must_use]
    pub fn local_elements(&self, global: &[usize], torus: TorusShape) -> usize {
        self.local_shape(global, torus).iter().product()
    }
}

impl std::str::FromStr for ShardingSpec {
    /// Parses the paper's notation, the inverse of this type's `Display`:
    /// dimension letters with optional `_axes` subscripts and an optional
    /// trailing partial-sum marker. Whitespace between dimensions is
    /// tolerated, so both `"E_xF_yz"` and `"E_x F_yz"` (as printed in the
    /// paper) parse to the same spec.
    ///
    /// # Examples
    ///
    /// ```
    /// use esti_core::sharding::ShardingSpec;
    ///
    /// let spec: ShardingSpec = "BLE_yz (partialsum-x)".parse().unwrap();
    /// assert_eq!(spec.to_string(), "BLE_yz (partialsum-x)");
    /// ```
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (body, partial_sum) = match s.split_once(" (partialsum-") {
            Some((body, rest)) => {
                let axes = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unterminated partial-sum marker in {s:?}"))?;
                (body, axes.parse::<AxisSet>()?)
            }
            None => (s, AxisSet::empty()),
        };
        let mut dims: Vec<ShardedDim> = Vec::new();
        let mut chars = body.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_whitespace() {
                continue;
            }
            if c == '_' {
                let Some(last) = dims.last_mut() else {
                    return Err(format!("subscript before any dimension in {s:?}"));
                };
                if !last.axes.is_empty() {
                    return Err(format!("dimension {} has two subscripts", last.name));
                }
                let mut axes = AxisSet::empty();
                while let Some(&a) = chars.peek() {
                    let axis = match a {
                        'x' => esti_topology::Axis::X,
                        'y' => esti_topology::Axis::Y,
                        'z' => esti_topology::Axis::Z,
                        _ => break,
                    };
                    if axes.contains(axis) {
                        return Err(format!("repeated axis {a} in subscript of {}", last.name));
                    }
                    axes = axes.with(axis);
                    chars.next();
                }
                if axes.is_empty() {
                    return Err(format!("empty subscript on dimension {}", last.name));
                }
                last.axes = axes;
            } else if c.is_ascii_uppercase() {
                if dims.iter().any(|d| d.name == c) {
                    return Err(format!("repeated dimension name {c}"));
                }
                dims.push(ShardedDim { name: c, axes: AxisSet::empty() });
            } else {
                return Err(format!("unexpected character {c:?} in sharding spec {s:?}"));
            }
        }
        if dims.is_empty() {
            return Err("sharding spec needs at least one dimension".to_string());
        }
        for (i, d) in dims.iter().enumerate() {
            for e in &dims[i + 1..] {
                if !d.axes.is_disjoint(e.axes) {
                    return Err(format!(
                        "axis set {} of dimension {} overlaps dimension {}",
                        e.axes, e.name, d.name
                    ));
                }
            }
        }
        Ok(ShardingSpec { dims, partial_sum })
    }
}

impl fmt::Display for ShardingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dims {
            write!(f, "{}", d.name)?;
            if !d.axes.is_empty() {
                write!(f, "_{}", d.axes)?;
            }
        }
        if !self.partial_sum.is_empty() {
            write!(f, " (partialsum-{})", self.partial_sum)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esti_topology::Axis;
    use proptest::prelude::*;

    #[test]
    fn notation_matches_paper() {
        // E_x F_yz: the 2D weight-stationary weight layout.
        let w = ShardingSpec::new("EF")
            .shard('E', AxisSet::single(Axis::X))
            .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]));
        assert_eq!(w.to_string(), "E_xF_yz");

        let partial = ShardingSpec::new("BLE")
            .shard('E', AxisSet::of(&[Axis::Y, Axis::Z]))
            .partial(AxisSet::single(Axis::X));
        assert_eq!(partial.to_string(), "BLE_yz (partialsum-x)");
    }

    #[test]
    fn local_shapes() {
        let torus = TorusShape::new(2, 4, 2);
        let w = ShardingSpec::new("EF")
            .shard('E', AxisSet::single(Axis::X))
            .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]));
        assert_eq!(w.local_shape(&[16, 64], torus), vec![8, 8]);
        assert_eq!(w.shard_count(torus), 16);
        assert_eq!(w.local_elements(&[16, 64], torus), 64);
    }

    #[test]
    fn local_range_covers_dimension() {
        let torus = TorusShape::new(2, 2, 1);
        let spec = ShardingSpec::new("BE").shard('E', AxisSet::of(&[Axis::X, Axis::Y]));
        let mut covered = [false; 16];
        for c in torus.chips() {
            let (start, len) = spec.local_range(1, 16, torus, c);
            assert_eq!(len, 4);
            for c in covered.iter_mut().skip(start).take(len) {
                *c = true; // chips sharing a shard mark it again
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn replicated_dims_get_full_range() {
        let torus = TorusShape::new(4, 1, 1);
        let spec = ShardingSpec::new("BE").shard('E', AxisSet::single(Axis::X));
        for c in torus.chips() {
            assert_eq!(spec.local_range(0, 8, torus, c), (0, 8));
        }
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn overlapping_axes_rejected() {
        let _ = ShardingSpec::new("EF")
            .shard('E', AxisSet::single(Axis::X))
            .shard('F', AxisSet::single(Axis::X));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dimension_rejected() {
        let torus = TorusShape::new(3, 1, 1);
        let spec = ShardingSpec::new("E").shard('E', AxisSet::single(Axis::X));
        let _ = spec.local_shape(&[16], torus);
    }

    #[test]
    #[should_panic(expected = "unknown dimension")]
    fn unknown_dimension_rejected() {
        let _ = ShardingSpec::new("BLE").shard('Q', AxisSet::all());
    }

    #[test]
    fn from_str_parses_paper_notation() {
        let ble: ShardingSpec = "BLE_xyz".parse().unwrap();
        assert_eq!(ble, ShardingSpec::new("BLE").shard('E', AxisSet::all()));

        // The paper writes weight layouts with a space between dimensions.
        let w: ShardingSpec = "E_x F_yz".parse().unwrap();
        assert_eq!(
            w,
            ShardingSpec::new("EF")
                .shard('E', AxisSet::single(Axis::X))
                .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]))
        );
        assert_eq!(w, "E_xF_yz".parse().unwrap());

        let partial: ShardingSpec = "BLE_yz (partialsum-x)".parse().unwrap();
        assert_eq!(partial.partial_sum(), AxisSet::single(Axis::X));
        assert_eq!(partial.axes_of('E'), AxisSet::of(&[Axis::Y, Axis::Z]));
    }

    #[test]
    fn from_str_rejects_malformed_specs() {
        let cases: &[(&str, &str)] = &[
            ("", "at least one dimension"),
            ("BB", "repeated dimension"),
            ("E_xx", "repeated axis"),
            ("E_", "empty subscript"),
            ("_x", "subscript before any dimension"),
            ("E_x_y", "two subscripts"),
            ("e", "unexpected character"),
            ("E_xF_x", "overlaps"),
            ("BLE_yz (partialsum-x", "unterminated"),
            ("BLE_yz (partialsum-w)", "unknown torus axis"),
        ];
        for (input, expect) in cases {
            let err = input.parse::<ShardingSpec>().unwrap_err();
            assert!(err.contains(expect), "{input:?}: got {err:?}");
        }
    }

    #[test]
    fn parsed_spec_enforces_divisibility_like_built_ones() {
        let torus = TorusShape::new(2, 2, 1);
        let spec: ShardingSpec = "BE_xy".parse().unwrap();
        assert_eq!(spec.local_shape(&[3, 8], torus), vec![3, 2]);
        let indivisible = std::panic::catch_unwind(|| spec.local_shape(&[3, 6], torus));
        assert!(indivisible.is_err(), "6 is not divisible by 4 partitions");
    }

    proptest! {
        #[test]
        fn prop_display_round_trips_through_from_str(
            n_dims in 1usize..5,
            axis_assignment in prop::collection::vec(0usize..5, 4..5),
            partial_x in 0usize..2,
        ) {
            // Assign disjoint axis subsets to dimensions: each axis goes to
            // at most one dimension (or none).
            const NAMES: [char; 4] = ['B', 'L', 'E', 'F'];
            const CHOICES: [&[Axis]; 5] =
                [&[], &[Axis::X], &[Axis::Y], &[Axis::Z], &[Axis::Y, Axis::Z]];
            let mut spec = ShardingSpec::new(&NAMES[..n_dims].iter().collect::<String>());
            let mut used = AxisSet::empty();
            for (i, &choice) in axis_assignment.iter().take(n_dims).enumerate() {
                let axes = AxisSet::of(CHOICES[choice]);
                if axes.is_disjoint(used) {
                    used = used.union(axes);
                    spec = spec.shard(NAMES[i], axes);
                }
            }
            if partial_x == 1 && !used.contains(Axis::X) {
                spec = spec.partial(AxisSet::single(Axis::X));
            }
            let reparsed: ShardingSpec = spec.to_string().parse().unwrap();
            prop_assert_eq!(reparsed, spec);
        }

        #[test]
        fn prop_local_elements_times_shards_is_global(
            x in 1usize..4, y in 1usize..4, z in 1usize..4,
            scale in 1usize..4,
        ) {
            let torus = TorusShape::new(x, y, z);
            let spec = ShardingSpec::new("EF")
                .shard('E', AxisSet::single(Axis::X))
                .shard('F', AxisSet::of(&[Axis::Y, Axis::Z]));
            let global = [x * scale * 2, y * z * scale * 3];
            let local = spec.local_elements(&global, torus);
            prop_assert_eq!(
                local * spec.shard_count(torus),
                global[0] * global[1]
            );
        }

        #[test]
        fn prop_ranges_tile_dimension(x in 1usize..5, y in 1usize..5) {
            let torus = TorusShape::new(x, y, 1);
            let spec = ShardingSpec::new("E").shard('E', AxisSet::of(&[Axis::X, Axis::Y]));
            let global = x * y * 2;
            let mut hits = vec![0usize; global];
            for c in torus.chips() {
                let (s, l) = spec.local_range(0, global, torus, c);
                for h in hits.iter_mut().skip(s).take(l) {
                    *h += 1;
                }
            }
            // Every element owned exactly once.
            prop_assert!(hits.iter().all(|&h| h == 1));
        }
    }
}
