//! Calibration of the analytical model against the paper's Table 2.
//!
//! [`PerfParams`] has five constants that absolute
//! latencies depend on. Rather than hand-tuning them per figure (which
//! would make the "reproduction" circular), this module defines the fit as
//! an explicit optimization problem: mean squared *log*-error against the
//! four Table 2 configurations, minimized once over a coarse grid. The
//! defaults shipped in `PerfParams::default()` sit at (or next to) the grid
//! optimum, and every experiment uses them unchanged.

use esti_hal::{DType, Seconds};
use esti_model::ModelConfig;

use crate::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use crate::machine::Machine;
use crate::perf::{estimate_with, PerfParams, PhaseSpec};

/// One latency target from the paper's tables.
#[derive(Debug, Clone)]
pub struct Target {
    /// Scenario label.
    pub name: &'static str,
    /// Paper-reported latency in seconds.
    pub paper_latency: Seconds,
    /// Chips, batch, layout, dtype and phase of the scenario.
    pub chips: usize,
    /// Batch size.
    pub batch: usize,
    /// Feedforward layout.
    pub ffn: FfnLayout,
    /// Attention sharding.
    pub attn: AttnSharding,
    /// Weight storage type.
    pub dtype: DType,
    /// `true` = prefill 2048 tokens, `false` = generate 64 at context 2048.
    pub prefill: bool,
}

/// The four PaLM 540B configurations of Table 2.
#[must_use]
pub fn table2_targets() -> Vec<Target> {
    vec![
        Target {
            name: "low-latency prefill",
            paper_latency: 0.29,
            chips: 64,
            batch: 1,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            dtype: DType::Int8,
            prefill: true,
        },
        Target {
            name: "low-latency decode",
            paper_latency: 1.82,
            chips: 64,
            batch: 64,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            dtype: DType::Int8,
            prefill: false,
        },
        Target {
            name: "high-throughput prefill",
            paper_latency: 85.2,
            chips: 64,
            batch: 512,
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            dtype: DType::Bf16,
            prefill: true,
        },
        Target {
            name: "high-throughput decode",
            paper_latency: 6.0,
            chips: 64,
            batch: 512,
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            dtype: DType::Bf16,
            prefill: false,
        },
    ]
}

/// Predicted latency of one target under `params`.
#[must_use]
pub fn predict(target: &Target, params: &PerfParams) -> Seconds {
    let model = ModelConfig::palm_540b_padded();
    let machine = Machine::tpu_v4_slice(target.chips).expect("catalog slice");
    let layout = Layout {
        ffn: target.ffn,
        attn: target.attn,
        mesh: Layout::ws2d_mesh(target.chips, model.d_model, model.d_ff),
    };
    if target.prefill {
        estimate_with(
            &machine,
            &model,
            &layout,
            &PhaseSpec::prefill(target.batch, 2048),
            target.dtype,
            params,
        )
        .step_time
    } else {
        // generate_latency uses default params internally; reconstruct the
        // 64-token generation from a mid-context step estimate instead.
        let mid = 2048 + 32;
        estimate_with(
            &machine,
            &model,
            &layout,
            &PhaseSpec::decode(target.batch, mid),
            target.dtype,
            params,
        )
        .step_time
            * 64.0
    }
}

/// Mean squared log-error of `params` against the Table 2 targets:
/// `mean( ln(predicted / paper)^2 )`. Zero = perfect.
#[must_use]
pub fn score(params: &PerfParams) -> f64 {
    let targets = table2_targets();
    let total: f64 = targets
        .iter()
        .map(|t| {
            let err = (predict(t, params) / t.paper_latency).ln();
            err * err
        })
        .sum();
    total / targets.len() as f64
}

/// Coarse grid search over the calibration constants. Returns the best
/// parameters and their score.
#[must_use]
pub fn grid_search() -> (PerfParams, f64) {
    let mut best = (PerfParams::default(), score(&PerfParams::default()));
    for peak in [0.8f64, 0.88, 0.95] {
        for halfpoint in [32.0f64, 64.0, 128.0, 256.0] {
            for derate in [0.33f64, 0.5, 0.75, 1.0] {
                for hop in [0.0f64, 1e-6, 4e-6] {
                    let params = PerfParams {
                        peak_matmul_eff: peak,
                        eff_halfpoint_rows: halfpoint,
                        collective_bw_derate: derate,
                        hop_latency: hop,
                        ..PerfParams::default()
                    };
                    let s = score(&params);
                    if s < best.1 {
                        best = (params, s);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_fit_table2_within_2x() {
        // Every target within a factor of 2 at the shipped defaults.
        let params = PerfParams::default();
        for t in table2_targets() {
            let p = predict(&t, &params);
            let ratio = p / t.paper_latency;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: predicted {p:.2}s vs paper {:.2}s ({ratio:.2}x)",
                t.name,
                t.paper_latency
            );
        }
    }

    #[test]
    fn defaults_score_acceptably() {
        // log-MSE 0.07 ≈ targets within ~30% on average.
        let default_score = score(&PerfParams::default());
        assert!(default_score < 0.15, "default score {default_score}");
    }

    #[test]
    fn grid_optimum_overfits_table2_against_the_int8_shape() {
        // The grid's best-scoring point (a higher matmul-efficiency
        // halfpoint) nails Table 2's four latencies — but it makes decode
        // compute-bound at batch 64, erasing the int8-vs-bf16 separation
        // that Figure 1 reports (28.5 vs 36.9 ms/token). The shipped
        // defaults deliberately trade a worse Table 2 fit for preserving
        // that shape. This test documents the tradeoff.
        let (best, best_score) = grid_search();
        assert!(best_score <= score(&PerfParams::default()) + 1e-12);

        let model = ModelConfig::palm_540b_padded();
        let machine = Machine::tpu_v4_slice(64).expect("catalog");
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
        };
        let spec = PhaseSpec::decode(64, 2048);
        let ratio = |params: &PerfParams| {
            estimate_with(&machine, &model, &layout, &spec, DType::Int8, params).step_time
                / estimate_with(&machine, &model, &layout, &spec, DType::Bf16, params).step_time
        };
        // Paper: 28.5/36.9 = 0.77. Defaults keep a clear separation…
        assert!(ratio(&PerfParams::default()) < 0.85, "defaults lost the int8 win");
        // …which the Table 2 grid optimum gives up (if it did not, we
        // should simply adopt it — revisit on recalibration).
        assert!(ratio(&best) > ratio(&PerfParams::default()));
    }

    #[test]
    fn score_is_sensitive_to_miscalibration() {
        // Grossly wrong constants must score much worse than the defaults.
        let bad = PerfParams {
            collective_bw_derate: 0.05,
            eff_halfpoint_rows: 4096.0,
            ..PerfParams::default()
        };
        assert!(score(&bad) > 4.0 * score(&PerfParams::default()));
    }
}
