//! The analytical latency / MFU / cost model (Section 2, Appendix A).
//!
//! A forward pass is charged three times:
//!
//! * **compute** — `2N` matmul FLOPs per token (Kaplan et al. 2020) plus the
//!   attention einsums, divided over chips at peak FLOPS times a
//!   matmul-efficiency factor that rises with per-chip matrix rows (small
//!   decode batches cannot saturate a systolic array);
//! * **memory** — the per-chip weight shard and KV-cache shard streamed
//!   from HBM once per pass (Section 2, "memory costs"); weight loading
//!   overlaps compute on real hardware, so the model takes
//!   `max(compute, memory)`;
//! * **communication** — each collective of the layout's
//!   [`CommPiece`] list, timed by the Appendix
//!   A.1 formulas with the `(K-1)/K` factor and per-axis-group bandwidth.
//!
//! Calibration constants live in [`PerfParams`] with defaults chosen once
//! against Table 2 (see EXPERIMENTS.md); all figures are generated with the
//! same defaults.

use esti_hal::{DType, Seconds};
use esti_model::ModelConfig;

use crate::layout::{CommPiece, FfnLayout, Layout, PieceKind};
use crate::machine::Machine;
use crate::memory;

/// Inference phase (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Parallel forward pass over the input tokens.
    Prefill,
    /// One autoregressive generation step.
    Decode,
}

/// One forward pass to be costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Which phase.
    pub phase: Phase,
    /// Sequences in the batch `B`.
    pub batch: usize,
    /// Tokens processed per sequence in this pass (`L_input` for prefill,
    /// 1 for decode).
    pub tokens_per_seq: usize,
    /// KV-cache length after this pass (attention context).
    pub context: usize,
}

impl PhaseSpec {
    /// A prefill pass over `input_len` tokens per sequence.
    #[must_use]
    pub fn prefill(batch: usize, input_len: usize) -> Self {
        PhaseSpec { phase: Phase::Prefill, batch, tokens_per_seq: input_len, context: input_len }
    }

    /// A decode step with `context` tokens already cached.
    #[must_use]
    pub fn decode(batch: usize, context: usize) -> Self {
        PhaseSpec { phase: Phase::Decode, batch, tokens_per_seq: 1, context }
    }

    /// Total tokens processed by this pass, `B · tokens_per_seq`.
    #[must_use]
    pub fn total_tokens(&self) -> f64 {
        (self.batch * self.tokens_per_seq) as f64
    }
}

/// Calibration constants of the analytical model.
///
/// Defaults were fitted once against the paper's Table 2 configurations and
/// are used unchanged for every experiment (EXPERIMENTS.md records the
/// residuals).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfParams {
    /// Asymptotic matmul efficiency of large shapes (fraction of peak).
    pub peak_matmul_eff: f64,
    /// Matrix rows at which matmul efficiency reaches half its asymptote.
    pub eff_halfpoint_rows: f64,
    /// Achievable fraction of nominal link bandwidth for collectives (the
    /// quoted 270 GB/s counts both link directions; a ring collective's
    /// cost formula sees roughly half).
    pub collective_bw_derate: f64,
    /// Fraction of communication time hidden under compute by Looped
    /// CollectiveEinsum (Section 3.5). 0 = fully exposed.
    pub comm_overlap: f64,
    /// Latency of one ring hop (link + software), paid per pipeline step of
    /// every collective. Dominates decode communication at small batch.
    pub hop_latency: Seconds,
    /// Fixed per-pass overhead (dispatch, sampling) in seconds.
    pub step_overhead: Seconds,
    /// Activation storage type for communication volume. The paper ships
    /// bf16 activations and calls int8 activation quantization future work
    /// ("we are hopeful that it could… reduce communication volume of
    /// activations in weight-stationary layouts", Section 3.6); setting
    /// this to int8 projects that extension.
    pub act_dtype: DType,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            peak_matmul_eff: 0.88,
            eff_halfpoint_rows: 64.0,
            collective_bw_derate: 0.5,
            comm_overlap: 0.0,
            hop_latency: 1e-6,
            step_overhead: 2e-4,
            act_dtype: DType::Bf16,
        }
    }
}

impl PerfParams {
    /// Matmul efficiency for a per-chip matrix with `rows` rows:
    /// `peak · rows / (rows + halfpoint)`.
    #[must_use]
    pub fn matmul_eff(&self, rows: f64) -> f64 {
        self.peak_matmul_eff * rows / (rows + self.eff_halfpoint_rows)
    }
}

/// The costed result of one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Wall-clock time of the pass.
    pub step_time: Seconds,
    /// Matmul + attention compute time (after the efficiency factor).
    pub compute_time: Seconds,
    /// Time to stream the per-chip weight shard from HBM.
    pub weight_mem_time: Seconds,
    /// Time to stream the per-chip KV-cache shard from HBM.
    pub kv_mem_time: Seconds,
    /// Exposed communication time, all collectives of all layers.
    pub comm_time: Seconds,
    /// Model FLOPS utilization of the pass (`2N` convention).
    pub mfu: f64,
    /// Cost in chip-seconds per token (Section 4.4).
    pub cost_chip_sec_per_token: f64,
    /// Whether weights + KV cache fit in HBM at this configuration.
    pub fits: bool,
}

/// Costs one forward pass of `model` partitioned by `layout` on `machine`.
///
/// `weight_dtype` is the weight *storage* type (bf16 or int8); arithmetic
/// and activations stay bf16 (Section 3.6).
#[must_use]
pub fn estimate(
    machine: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    spec: &PhaseSpec,
    weight_dtype: DType,
) -> Estimate {
    estimate_with(machine, model, layout, spec, weight_dtype, &PerfParams::default())
}

/// [`estimate`] with explicit calibration parameters.
#[must_use]
pub fn estimate_with(
    machine: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    spec: &PhaseSpec,
    weight_dtype: DType,
    params: &PerfParams,
) -> Estimate {
    let n = machine.n_chips() as f64;
    let chip = &machine.chip;
    let tokens = spec.total_tokens();

    // --- compute ---------------------------------------------------------
    let rows = per_chip_rows(layout, tokens, n);
    let eff = params.matmul_eff(rows);
    let matmul_flops = model.flops_per_token() * tokens;
    // Attention einsums see on average half the final context during
    // prefill and the full context during decode.
    let attn_context = match spec.phase {
        Phase::Prefill => spec.context / 2,
        Phase::Decode => spec.context,
    };
    let attn_flops = model.attn_flops_per_token(attn_context) * tokens;
    let compute_time = (matmul_flops + attn_flops) / (n * chip.peak_flops * eff);

    // --- memory ----------------------------------------------------------
    let weight_bytes = memory::weight_bytes_per_chip(model, machine.n_chips(), weight_dtype);
    let weight_mem_time = weight_bytes / chip.hbm_bandwidth;
    // The KV cache is streamed once per decode step; during prefill its
    // read is amortized over the chunk's queries and charged to compute.
    let kv_mem_time = match spec.phase {
        Phase::Decode => {
            memory::kv_bytes_per_chip(
                model,
                layout.attn,
                machine.n_chips(),
                spec.batch,
                spec.context,
                DType::Bf16,
            ) / chip.hbm_bandwidth
        }
        Phase::Prefill => 0.0,
    };

    // --- communication ---------------------------------------------------
    let pieces = layout.layer_comm(model, tokens);
    let per_layer: Seconds = pieces
        .iter()
        .map(|p| piece_time(chip, p, weight_dtype, params))
        .sum();
    let comm_time = per_layer * model.n_layers as f64 * (1.0 - params.comm_overlap);

    // --- combine ---------------------------------------------------------
    // Weight/KV streaming overlaps compute (both are per-layer pipelines);
    // exposed communication adds on top (Section 3.5's loops hide part of
    // it, controlled by `comm_overlap`).
    let step_time =
        compute_time.max(weight_mem_time + kv_mem_time) + comm_time + params.step_overhead;

    let mfu = matmul_flops / (step_time * machine.peak_flops());
    let cost = n * step_time / tokens;
    let fits = memory::fits_in_memory(
        machine,
        model,
        layout.attn,
        spec.batch,
        spec.context,
        weight_dtype,
        DType::Bf16,
    );

    Estimate {
        step_time,
        compute_time,
        weight_mem_time,
        kv_mem_time,
        comm_time,
        mfu,
        cost_chip_sec_per_token: cost,
        fits,
    }
}

impl Estimate {
    /// A one-line human-readable time breakdown, e.g.
    /// `"80.2ms = max(compute 39.9ms, mem 16.1ms) + comm 37.9ms"` — used by
    /// examples and experiment binaries to show *where* a configuration's
    /// time goes.
    #[must_use]
    pub fn breakdown(&self) -> String {
        use esti_hal::units::format_seconds as fs;
        format!(
            "{} = max(compute {}, mem {}) + comm {}  [MFU {:.1}%{}]",
            fs(self.step_time),
            fs(self.compute_time),
            fs(self.weight_mem_time + self.kv_mem_time),
            fs(self.comm_time),
            self.mfu * 100.0,
            if self.fits { "" } else { ", OOM" }
        )
    }
}

/// Latency and MFU of generating `n_gen` tokens after `context_start`
/// cached tokens, as the cache grows step by step.
#[must_use]
pub fn generate_latency(
    machine: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    batch: usize,
    context_start: usize,
    n_gen: usize,
    weight_dtype: DType,
) -> Estimate {
    assert!(n_gen > 0, "must generate at least one token");
    // Cost a representative mid-generation step, then scale: step times are
    // near-linear in context so the midpoint is exact to first order.
    let mid = context_start + n_gen / 2;
    let step = estimate(machine, model, layout, &PhaseSpec::decode(batch, mid.max(1)), weight_dtype);
    let total = step.step_time * n_gen as f64;
    let tokens = (batch * n_gen) as f64;
    Estimate {
        step_time: total,
        compute_time: step.compute_time * n_gen as f64,
        weight_mem_time: step.weight_mem_time * n_gen as f64,
        kv_mem_time: step.kv_mem_time * n_gen as f64,
        comm_time: step.comm_time * n_gen as f64,
        mfu: model.flops_per_token() * tokens / (total * machine.peak_flops()),
        cost_chip_sec_per_token: machine.n_chips() as f64 * total / tokens,
        fits: step.fits,
    }
}

/// Per-chip matmul rows: weight-stationary layouts stream every token
/// through every chip; weight-gathered layouts shard the batch over
/// `n/N` chips.
fn per_chip_rows(layout: &Layout, tokens: f64, n: f64) -> f64 {
    match layout.ffn {
        FfnLayout::WeightStationary1D | FfnLayout::WeightStationary2D => tokens,
        FfnLayout::WeightGathered(extent) => {
            let n_gather = extent.n_gather(layout.mesh) as f64;
            tokens * n_gather / n
        }
    }
}

/// Time of one collective piece (Appendix A.1 with bandwidth derate).
fn piece_time(
    chip: &esti_hal::ChipSpec,
    piece: &CommPiece,
    weight_dtype: DType,
    params: &PerfParams,
) -> Seconds {
    if piece.group <= 1.0 {
        return 0.0;
    }
    let bytes_per_elem = if piece.is_weights {
        weight_dtype.bytes_f()
    } else {
        params.act_dtype.bytes_f()
    };
    let bytes = piece.elements * bytes_per_elem;
    let axes = piece.axes.min(chip.torus_axes);
    let bw = chip.axis_bandwidth(axes) * params.collective_bw_derate;
    // Ring size per torus axis if the group spreads evenly over its axes.
    let k_axis = piece.group.powf(1.0 / f64::from(axes));
    match piece.kind {
        PieceKind::GatherScatter => {
            let bandwidth_term = bytes / bw * (piece.group - 1.0) / piece.group;
            // Each of the `axes` ring stages pipelines K_axis-1 hops.
            let latency_term = f64::from(axes) * (k_axis - 1.0) * params.hop_latency;
            bandwidth_term + latency_term
        }
        PieceKind::AllToAll => {
            // Sequential per-axis min-hop exchange (validated by
            // esti-netsim): per axis of size K_a ≈ group^(1/axes), each
            // link carries ~K_a/8 of the payload at half the single-axis
            // bandwidth.
            let bw1 = chip.axis_bandwidth(1) * params.collective_bw_derate;
            let bandwidth_term = f64::from(axes) * bytes * k_axis / (4.0 * bw1);
            let latency_term = f64::from(axes) * (k_axis / 2.0) * params.hop_latency;
            bandwidth_term + latency_term
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AttnSharding, GatherExtent, MeshFactors};

    fn machine64() -> Machine {
        Machine::tpu_v4_slice(64).unwrap()
    }

    fn palm() -> ModelConfig {
        ModelConfig::palm_540b_padded()
    }

    fn ws2d_batch(model: &ModelConfig, n: usize) -> Layout {
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
        }
    }

    fn wg_xyz(model: &ModelConfig, n: usize) -> Layout {
        Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
        }
    }

    #[test]
    fn headline_decode_latency_29ms() {
        // Section 1: 29 ms/token at batch 64, int8 weights, 64 chips.
        let est = estimate(
            &machine64(),
            &palm(),
            &ws2d_batch(&palm(), 64),
            &PhaseSpec::decode(64, 2048),
            DType::Int8,
        );
        assert!(est.fits);
        let ms = est.step_time * 1e3;
        assert!((10.0..45.0).contains(&ms), "decode step {ms:.1}ms, paper 29ms");
    }

    #[test]
    fn table2_high_throughput_prefill_mfu() {
        // Table 2: batch 512 x 2048-token prefill, WG XYZ, bf16: 76% MFU.
        let est = estimate(
            &machine64(),
            &palm(),
            &wg_xyz(&palm(), 64),
            &PhaseSpec::prefill(512, 2048),
            DType::Bf16,
        );
        assert!(est.mfu > 0.60 && est.mfu < 0.90, "prefill MFU {:.2}", est.mfu);
        // Latency ~85 s in the paper.
        assert!(est.step_time > 40.0 && est.step_time < 130.0, "{}", est.step_time);
    }

    #[test]
    fn table2_large_batch_decode() {
        // Table 2: batch 512 decode, bf16, ws2d+batch: 6.0s per 64 tokens
        // (94 ms/step), 33% MFU.
        let est = estimate(
            &machine64(),
            &palm(),
            &ws2d_batch(&palm(), 64),
            &PhaseSpec::decode(512, 2048),
            DType::Bf16,
        );
        let ms = est.step_time * 1e3;
        assert!((50.0..140.0).contains(&ms), "decode step {ms:.1}ms, paper ~94ms");
        assert!(est.mfu > 0.20 && est.mfu < 0.55, "decode MFU {:.2}", est.mfu);
    }

    #[test]
    fn int8_beats_bf16_at_low_batch_only() {
        // Section 4.4: int8 halves low-batch latency (weight-loading bound)
        // but is nearly neutral at large batch (compute bound).
        let m = machine64();
        let model = palm();
        let layout = ws2d_batch(&model, 64);
        let low_i8 = estimate(&m, &model, &layout, &PhaseSpec::decode(16, 2048), DType::Int8);
        let low_bf = estimate(&m, &model, &layout, &PhaseSpec::decode(16, 2048), DType::Bf16);
        // Paper Figure 1: 28.5ms int8 vs 36.9ms bf16 at batch 64 (~0.77x).
        assert!(low_i8.step_time < 0.85 * low_bf.step_time);
        let hi_i8 = estimate(&m, &model, &layout, &PhaseSpec::decode(1024, 2048), DType::Int8);
        let hi_bf = estimate(&m, &model, &layout, &PhaseSpec::decode(1024, 2048), DType::Bf16);
        assert!(hi_i8.step_time > 0.9 * hi_bf.step_time);
    }

    #[test]
    fn ws2d_beats_ws1d_at_64_chips() {
        // Figure 6: at batch 512 the 2D layout wins at high chip counts.
        let model = palm();
        for n in [64usize, 128, 256] {
            let m = Machine::tpu_v4_slice(n).unwrap();
            let l2 = ws2d_batch(&model, n);
            let l1 = Layout {
                ffn: FfnLayout::WeightStationary1D,
                attn: AttnSharding::Batch,
                mesh: Layout::ws1d_mesh(n),
            };
            let spec = PhaseSpec::decode(512, 2048);
            let t2 = estimate(&m, &model, &l2, &spec, DType::Bf16).step_time;
            let t1 = estimate(&m, &model, &l1, &spec, DType::Bf16).step_time;
            assert!(t2 < t1, "n={n}: 2D {t2} vs 1D {t1}");
        }
    }

    #[test]
    fn ws2d_keeps_improving_with_chips_1d_saturates() {
        // Section 3.2.2: 2D comm scales 1/sqrt(n); 1D comm is constant.
        let model = palm();
        let decode = PhaseSpec::decode(512, 2048);
        let t = |n: usize, ffn: FfnLayout| {
            let m = Machine::tpu_v4_slice(n).unwrap();
            let mesh = match ffn {
                FfnLayout::WeightStationary1D => Layout::ws1d_mesh(n),
                _ => Layout::ws2d_mesh(n, model.d_model, model.d_ff),
            };
            // Head sharding here so the comparison isolates the FFN
            // collectives (the attention all-to-alls shrink with n).
            let l = Layout { ffn, attn: AttnSharding::Head, mesh };
            estimate(&m, &model, &l, &decode, DType::Bf16)
        };
        let c64 = t(64, FfnLayout::WeightStationary2D).comm_time;
        let c256 = t(256, FfnLayout::WeightStationary2D).comm_time;
        let ratio = c64 / c256;
        assert!(ratio > 1.3 && ratio < 2.3, "2D comm ratio {ratio} (ideal 2.0)");
        let d64 = t(64, FfnLayout::WeightStationary1D).comm_time;
        let d256 = t(256, FfnLayout::WeightStationary1D).comm_time;
        // Constant up to the (K-1)/K factor and hop latencies.
        assert!((d64 / d256 - 1.0).abs() < 0.10, "1D comm ratio {}", d64 / d256);
    }

    #[test]
    fn weight_gathered_wins_prefill_at_large_batch() {
        // Figure 7: WG XYZ overtakes WS 2D as batch tokens grow.
        let model = palm();
        let m = machine64();
        let small = PhaseSpec::prefill(1, 2048);
        let large = PhaseSpec::prefill(512, 2048);
        let ws = ws2d_batch(&model, 64);
        let wg = wg_xyz(&model, 64);
        let ws_small = estimate(&m, &model, &ws, &small, DType::Bf16);
        let wg_small = estimate(&m, &model, &wg, &small, DType::Bf16);
        assert!(ws_small.step_time < wg_small.step_time, "WS should win small prefill");
        let ws_large = estimate(&m, &model, &ws, &large, DType::Bf16);
        let wg_large = estimate(&m, &model, &wg, &large, DType::Bf16);
        assert!(wg_large.mfu > ws_large.mfu, "WG should win large prefill");
    }

    #[test]
    fn batch_sharded_attention_wins_long_context_decode() {
        // Figure 8: at long context, batch sharding beats head sharding
        // because the KV-cache memory time dominates.
        let model = palm();
        let m = machine64();
        let mesh = Layout::ws2d_mesh(64, model.d_model, model.d_ff);
        let head = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Head, mesh };
        let batch = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Batch, mesh };
        let spec = PhaseSpec::decode(256, 8192);
        let t_head = estimate(&m, &model, &head, &spec, DType::Bf16);
        let t_batch = estimate(&m, &model, &batch, &spec, DType::Bf16);
        assert!(t_batch.step_time < t_head.step_time);
        assert!(t_batch.kv_mem_time * 10.0 < t_head.kv_mem_time);
        // At short context the difference nearly vanishes.
        let short = PhaseSpec::decode(256, 128);
        let s_head = estimate(&m, &model, &head, &short, DType::Bf16).step_time;
        let s_batch = estimate(&m, &model, &batch, &short, DType::Bf16).step_time;
        assert!((s_head - s_batch).abs() / s_batch < 0.1);
    }

    #[test]
    fn serial_blocks_cost_more_decode_latency() {
        // Section 4.3: the serialized formulation is ~14% slower per step.
        let mut serial = palm();
        serial.block = esti_model::BlockKind::Serial;
        let m = machine64();
        let layout = ws2d_batch(&palm(), 64);
        let spec = PhaseSpec::decode(512, 2048);
        let t_par = estimate(&m, &palm(), &layout, &spec, DType::Bf16).step_time;
        let t_ser = estimate(&m, &serial, &layout, &spec, DType::Bf16).step_time;
        let overhead = t_ser / t_par - 1.0;
        assert!(overhead > 0.05 && overhead < 0.40, "serial overhead {overhead:.2}");
    }

    #[test]
    fn generate_latency_scales_with_tokens() {
        let model = palm();
        let m = machine64();
        let layout = ws2d_batch(&model, 64);
        let g64 = generate_latency(&m, &model, &layout, 64, 2048, 64, DType::Int8);
        let g128 = generate_latency(&m, &model, &layout, 64, 2048, 128, DType::Int8);
        assert!(g128.step_time > 1.9 * g64.step_time);
        assert!(g64.cost_chip_sec_per_token > 0.0);
    }

    #[test]
    fn mfu_and_cost_are_consistent() {
        // cost = n·t/tokens and MFU = 2N·tokens/(t·n·peak) imply
        // cost · MFU = 2N / peak.
        let model = palm();
        let m = machine64();
        let layout = ws2d_batch(&model, 64);
        let est = estimate(&m, &model, &layout, &PhaseSpec::decode(256, 2048), DType::Bf16);
        let product = est.cost_chip_sec_per_token * est.mfu;
        let expect = model.flops_per_token() / m.chip.peak_flops;
        assert!((product - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn eff_curve_is_monotone_and_bounded() {
        let p = PerfParams::default();
        assert!(p.matmul_eff(1.0) < p.matmul_eff(100.0));
        assert!(p.matmul_eff(1e9) <= p.peak_matmul_eff);
        assert!(p.matmul_eff(256.0) > 0.4 * p.peak_matmul_eff);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_batch() -> impl Strategy<Value = usize> {
            prop::sample::select(vec![1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512])
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn step_time_monotone_in_batch(b in arb_batch()) {
                // More sequences never make a decode step faster.
                let model = ModelConfig::palm_62b();
                let m = Machine::tpu_v4_slice(64).unwrap();
                let layout = Layout::ws2d(&model, 64);
                let t1 = estimate(&m, &model, &layout, &PhaseSpec::decode(b, 2048), DType::Bf16).step_time;
                let t2 = estimate(&m, &model, &layout, &PhaseSpec::decode(b * 2, 2048), DType::Bf16).step_time;
                prop_assert!(t2 >= t1);
            }

            #[test]
            fn cost_improves_with_batch(b in arb_batch()) {
                // Cost per token never rises with batch (Section 2.1).
                let model = ModelConfig::palm_62b();
                let m = Machine::tpu_v4_slice(64).unwrap();
                let layout = Layout::ws2d(&model, 64);
                let c1 = estimate(&m, &model, &layout, &PhaseSpec::decode(b, 2048), DType::Bf16)
                    .cost_chip_sec_per_token;
                let c2 = estimate(&m, &model, &layout, &PhaseSpec::decode(b * 2, 2048), DType::Bf16)
                    .cost_chip_sec_per_token;
                prop_assert!(c2 <= c1 * 1.001);
            }

            #[test]
            fn kv_time_monotone_in_context(ctx in 64usize..16384) {
                let model = ModelConfig::palm_540b_padded();
                let m = Machine::tpu_v4_slice(64).unwrap();
                let layout = Layout::ws2d(&model, 64);
                let e1 = estimate(&m, &model, &layout, &PhaseSpec::decode(64, ctx), DType::Bf16);
                let e2 = estimate(&m, &model, &layout, &PhaseSpec::decode(64, ctx * 2), DType::Bf16);
                prop_assert!(e2.kv_mem_time >= e1.kv_mem_time);
                prop_assert!(e2.step_time >= e1.step_time * 0.999);
            }

            #[test]
            fn int8_never_slower(b in arb_batch(), ctx in prop::sample::select(vec![128usize, 1024, 4096])) {
                let model = ModelConfig::palm_540b_padded();
                let m = Machine::tpu_v4_slice(64).unwrap();
                let layout = Layout::ws2d(&model, 64);
                let spec = PhaseSpec::decode(b, ctx);
                let i8t = estimate(&m, &model, &layout, &spec, DType::Int8).step_time;
                let bft = estimate(&m, &model, &layout, &spec, DType::Bf16).step_time;
                prop_assert!(i8t <= bft * 1.0001);
            }

            #[test]
            fn mfu_bounded(b in arb_batch()) {
                for model in [ModelConfig::palm_8b(), ModelConfig::palm_540b_padded()] {
                    let m = Machine::tpu_v4_slice(64).unwrap();
                    let layout = Layout::ws2d(&model, 64);
                    for spec in [PhaseSpec::decode(b, 2048), PhaseSpec::prefill(b, 512)] {
                        let est = estimate(&m, &model, &layout, &spec, DType::Bf16);
                        prop_assert!(est.mfu > 0.0 && est.mfu < 1.0, "MFU {}", est.mfu);
                        prop_assert!(est.step_time.is_finite() && est.step_time > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn int8_activations_cut_weight_stationary_comm_in_half() {
        // The Section 3.6 projection: halving activation bytes halves the
        // bandwidth term of weight-stationary communication.
        let model = palm();
        let m = machine64();
        let layout = ws2d_batch(&model, 64);
        let spec = PhaseSpec::decode(512, 2048);
        let bf16 = estimate(&m, &model, &layout, &spec, DType::Bf16);
        let params = PerfParams { act_dtype: DType::Int8, ..PerfParams::default() };
        let i8act = estimate_with(&m, &model, &layout, &spec, DType::Bf16, &params);
        assert!(i8act.comm_time < 0.65 * bf16.comm_time, "{} vs {}", i8act.comm_time, bf16.comm_time);
        assert!(i8act.step_time < bf16.step_time);
        // Weight-gathered prefill is weight-traffic bound, so the benefit
        // there is smaller.
        let wg = wg_xyz(&model, 64);
        let pre = PhaseSpec::prefill(512, 2048);
        let wg_bf = estimate(&m, &model, &wg, &pre, DType::Bf16);
        let wg_i8 = estimate_with(&m, &model, &wg, &pre, DType::Bf16, &params);
        let ws_gain = bf16.comm_time / i8act.comm_time;
        let wg_gain = wg_bf.comm_time / wg_i8.comm_time;
        assert!(wg_gain < ws_gain, "WG gain {wg_gain} should trail WS gain {ws_gain}");
    }

    #[test]
    fn breakdown_is_readable() {
        let model = palm();
        let est = estimate(
            &machine64(),
            &model,
            &ws2d_batch(&model, 64),
            &PhaseSpec::decode(512, 2048),
            DType::Bf16,
        );
        let s = est.breakdown();
        assert!(s.contains("compute") && s.contains("comm") && s.contains("MFU"));
        assert!(!s.contains("OOM"));
    }

    #[test]
    fn low_latency_prefill_table2() {
        // Table 2 low-latency prefill: batch 1, 2048 tokens, WS2D, int8:
        // 0.29 s at 43% MFU.
        let model = palm();
        let m = machine64();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: MeshFactors::new(4, 4, 4),
        };
        let est = estimate(&m, &model, &layout, &PhaseSpec::prefill(1, 2048), DType::Int8);
        assert!(est.step_time > 0.1 && est.step_time < 0.5, "{}", est.step_time);
        assert!(est.mfu > 0.25 && est.mfu < 0.70, "MFU {:.2}", est.mfu);
    }
}
