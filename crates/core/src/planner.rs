//! Layout selection and inference planning (Section 4.1's strategy).
//!
//! > "During the prefill phase, we select from weight-stationary and
//! > weight-gathered layouts based on the current number of tokens in the
//! > batch. During the generate phase, we select the 2D weight-stationary
//! > layout because the batch size in tokens is always small."
//!
//! Attention follows Section 3.3: head-sharded for prefill at small batch,
//! batch-sharded multiquery for decode (and for large-batch prefill, as in
//! Table 2), falling back to head sharding when the batch is smaller than
//! the minimum torus axis (Appendix D notes no speedup below batch 4).

use esti_hal::{DType, Seconds};
use esti_model::{AttentionKind, ModelConfig};

use crate::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use crate::machine::Machine;
use crate::perf::{estimate, Estimate, PhaseSpec};

/// Minimum batch for batch-sharded attention (the minimum size of a torus
/// axis, Appendix D).
pub const MIN_BATCH_SHARD: usize = 4;

/// Chooses the attention sharding for a phase.
#[must_use]
pub fn attn_sharding(model: &ModelConfig, batch: usize) -> AttnSharding {
    if model.attention == AttentionKind::MultiQuery && batch >= MIN_BATCH_SHARD {
        AttnSharding::Batch
    } else {
        AttnSharding::Head
    }
}

/// The decode-phase layout: always 2D weight-stationary (Section 4.1) with
/// batch-sharded multiquery attention when applicable.
#[must_use]
pub fn decode_layout(model: &ModelConfig, machine: &Machine) -> Layout {
    decode_layout_for_batch(model, machine, usize::MAX)
}

/// [`decode_layout`] with the batch known, so small batches fall back to
/// head sharding.
#[must_use]
pub fn decode_layout_for_batch(model: &ModelConfig, machine: &Machine, batch: usize) -> Layout {
    Layout {
        ffn: FfnLayout::WeightStationary2D,
        attn: attn_sharding(model, batch),
        mesh: Layout::ws2d_mesh(machine.n_chips(), model.d_model, model.d_ff),
    }
}

/// Candidate feedforward layouts for the prefill phase.
#[must_use]
pub fn prefill_candidates(model: &ModelConfig, machine: &Machine, batch: usize) -> Vec<Layout> {
    let mesh = Layout::ws2d_mesh(machine.n_chips(), model.d_model, model.d_ff);
    let attn = attn_sharding(model, batch);
    let mut v = vec![Layout { ffn: FfnLayout::WeightStationary2D, attn, mesh }];
    for extent in GatherExtent::ALL {
        v.push(Layout { ffn: FfnLayout::WeightGathered(extent), attn, mesh });
    }
    v
}

/// The prefill-phase layout: the candidate with the lowest estimated pass
/// time at this batch (Figure 7's crossover realized as a selection rule).
#[must_use]
pub fn prefill_layout(
    model: &ModelConfig,
    machine: &Machine,
    batch: usize,
    input_len: usize,
    weight_dtype: DType,
) -> Layout {
    let spec = PhaseSpec::prefill(batch, input_len);
    prefill_candidates(model, machine, batch)
        .into_iter()
        .min_by(|a, b| {
            let ta = estimate(machine, model, a, &spec, weight_dtype).step_time;
            let tb = estimate(machine, model, b, &spec, weight_dtype).step_time;
            ta.partial_cmp(&tb).expect("finite step times")
        })
        .expect("candidate list is non-empty")
}

/// A full inference plan: per-phase layouts and cost estimates.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    /// Layout used for the prefill pass.
    pub prefill: Layout,
    /// Layout used for decode steps.
    pub decode: Layout,
    /// Estimate of the prefill pass.
    pub prefill_est: Estimate,
    /// Aggregate estimate of all decode steps.
    pub decode_est: Estimate,
    /// End-to-end latency (prefill + all decode steps).
    pub total_latency: Seconds,
    /// End-to-end MFU over all processed+generated tokens.
    pub total_mfu: f64,
}

/// Plans an inference of `batch` sequences with `input_len` prompt tokens
/// and `gen_len` generated tokens, switching layouts between phases as the
/// paper does (Section 4.1, Tables 2–3).
///
/// # Panics
///
/// Panics if `input_len` or `gen_len` is zero.
#[must_use]
pub fn plan_inference(
    model: &ModelConfig,
    machine: &Machine,
    batch: usize,
    input_len: usize,
    gen_len: usize,
    weight_dtype: DType,
) -> InferencePlan {
    assert!(input_len > 0 && gen_len > 0, "need at least one input and output token");
    let prefill = prefill_layout(model, machine, batch, input_len, weight_dtype);
    let decode = decode_layout_for_batch(model, machine, batch);
    let prefill_est = estimate(machine, model, &prefill, &PhaseSpec::prefill(batch, input_len), weight_dtype);
    let decode_est = crate::perf::generate_latency(
        machine, model, &decode, batch, input_len, gen_len, weight_dtype,
    );
    let total_latency = prefill_est.step_time + decode_est.step_time;
    let tokens = (batch * (input_len + gen_len)) as f64;
    let total_mfu = model.flops_per_token() * tokens / (total_latency * machine.peak_flops());
    InferencePlan { prefill, decode, prefill_est, decode_est, total_latency, total_mfu }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine64() -> Machine {
        Machine::tpu_v4_slice(64).unwrap()
    }

    #[test]
    fn decode_always_ws2d() {
        let l = decode_layout(&ModelConfig::palm_540b_padded(), &machine64());
        assert_eq!(l.ffn, FfnLayout::WeightStationary2D);
        assert_eq!(l.attn, AttnSharding::Batch);
    }

    #[test]
    fn small_batch_decode_head_sharded() {
        let l = decode_layout_for_batch(&ModelConfig::palm_540b_padded(), &machine64(), 2);
        assert_eq!(l.attn, AttnSharding::Head);
    }

    #[test]
    fn multihead_model_never_batch_sharded() {
        let l = decode_layout(&ModelConfig::mt_nlg_530b(), &machine64());
        assert_eq!(l.attn, AttnSharding::Head);
    }

    #[test]
    fn prefill_selection_matches_table2() {
        // Table 2: low-latency prefill (batch 1) -> WS 2D;
        // high-throughput prefill (batch 512 x 2048) -> WG XYZ.
        let model = ModelConfig::palm_540b_padded();
        let m = machine64();
        let low = prefill_layout(&model, &m, 1, 2048, DType::Int8);
        assert_eq!(low.ffn, FfnLayout::WeightStationary2D);
        assert_eq!(low.attn, AttnSharding::Head);
        let high = prefill_layout(&model, &m, 512, 2048, DType::Bf16);
        assert!(
            matches!(high.ffn, FfnLayout::WeightGathered(e) if e >= GatherExtent::Xy),
            "expected a large weight-gathered extent, got {:?}",
            high.ffn
        );
        assert_eq!(high.attn, AttnSharding::Batch);
    }

    #[test]
    fn prefill_selection_monotone_in_batch() {
        // The chosen gather extent should not shrink as batch grows.
        let model = ModelConfig::palm_540b_padded();
        let m = machine64();
        let rank = |l: &Layout| match l.ffn {
            FfnLayout::WeightStationary1D | FfnLayout::WeightStationary2D => 0,
            FfnLayout::WeightGathered(GatherExtent::X) => 1,
            FfnLayout::WeightGathered(GatherExtent::Xy) => 2,
            FfnLayout::WeightGathered(GatherExtent::Xyz) => 3,
        };
        let mut prev = 0;
        for batch in [1usize, 4, 16, 64, 256, 1024] {
            let r = rank(&prefill_layout(&model, &m, batch, 2048, DType::Bf16));
            assert!(r >= prev, "extent shrank at batch {batch}");
            prev = r;
        }
        assert_eq!(prev, 3, "largest batch should use WG XYZ");
    }

    #[test]
    fn plan_switches_layouts_between_phases() {
        let model = ModelConfig::palm_540b_padded();
        let m = machine64();
        let plan = plan_inference(&model, &m, 512, 2048, 64, DType::Bf16);
        assert!(matches!(plan.prefill.ffn, FfnLayout::WeightGathered(_)));
        assert_eq!(plan.decode.ffn, FfnLayout::WeightStationary2D);
        assert!(plan.total_latency > plan.prefill_est.step_time);
        assert!(plan.total_mfu > 0.0 && plan.total_mfu < 1.0);
    }

    #[test]
    fn chatbot_scenario_under_two_seconds() {
        // Section 1: 64 new tokens + 1920 cached history, generate 64,
        // int8, 64 chips -> ~1.9 s end to end.
        let model = ModelConfig::palm_540b_padded();
        let m = machine64();
        let prefill_l = prefill_layout(&model, &m, 1, 64, DType::Int8);
        let prefill =
            estimate(&m, &model, &prefill_l, &PhaseSpec::prefill(1, 64), DType::Int8);
        let decode_l = decode_layout_for_batch(&model, &m, 64);
        let decode = crate::perf::generate_latency(&m, &model, &decode_l, 64, 1984, 64, DType::Int8);
        let total = prefill.step_time + decode.step_time;
        assert!(total < 3.0, "chatbot total {total:.2}s, paper 1.9s");
        assert!(total > 0.5, "chatbot total {total:.2}s suspiciously fast");
    }
}
