//! The paper's contribution, as a library: partitioning strategies and the
//! analytical inference performance model of *Efficiently Scaling
//! Transformer Inference* (Pope et al., MLSYS 2023).
//!
//! The paper asks: given a large decoder-only Transformer, a slice of
//! accelerator chips on a 3D torus, and an application requirement (tight
//! latency, maximum throughput, long context), **how should the model be
//! partitioned**? Its answer is a small algebra of layouts with closed-form
//! costs, which this crate implements end to end:
//!
//! * [`sharding`] — the subscript notation of Section 3.1 (`BLE_xyz`,
//!   `E_x F_yz`, partial sums) as typed values;
//! * [`layout`] — the feedforward layouts of Section 3.2 (1D/2D
//!   weight-stationary, X/XY/XYZ weight-gathered) and the attention
//!   shardings of Section 3.3 (head vs. batch), with per-layer
//!   communication-volume formulas (Appendix A.2, Figure 3);
//! * [`memory`] — per-chip HBM accounting: weight shards and the KV cache
//!   under every attention variant (Table 1's max-context model);
//! * [`perf`] — the latency / MFU / cost model (Section 2, Appendix A.1)
//!   combining compute, memory and communication time;
//! * [`pareto`] — batch × chips × layout sweeps and Pareto frontiers
//!   (Figures 1, C.1);
//! * [`planner`] — the layout-selection strategy of Section 4.1 and an
//!   application-requirements advisor;
//! * [`schedule`] — symbolic per-chip execution schedules mirroring the
//!   runtime dataflows, verifiable against the algebra's rewrite rules;
//! * [`ft`] — the published FasterTransformer baseline numbers used in
//!   Section 5 / Appendix D.
//!
//! # Examples
//!
//! ```
//! use esti_core::perf::{estimate, Phase, PhaseSpec};
//! use esti_core::planner::decode_layout;
//! use esti_core::Machine;
//! use esti_hal::DType;
//! use esti_model::ModelConfig;
//!
//! // PaLM 540B on 64 TPU v4 chips, generating with batch 64, int8 weights:
//! let machine = Machine::tpu_v4_slice(64).unwrap();
//! let model = ModelConfig::palm_540b_padded();
//! let layout = decode_layout(&model, &machine);
//! let spec = PhaseSpec::decode(64, 2048);
//! let est = estimate(&machine, &model, &layout, &spec, DType::Int8);
//! // The paper's headline: ~29 ms per token (Section 1). Our simulated
//! // hardware reproduces the order of magnitude.
//! assert!(est.step_time > 0.015 && est.step_time < 0.045);
//! ```

pub mod calibrate;
pub mod claims;
pub mod ft;
pub mod layout;
pub mod machine;
pub mod memory;
pub mod pareto;
pub mod perf;
pub mod pipeline;
pub mod planner;
pub mod schedule;
pub mod serving;
pub mod sharding;

pub use layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
pub use machine::Machine;
pub use perf::{estimate, Estimate, Phase, PhaseSpec};
