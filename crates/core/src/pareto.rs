//! Batch × chips × layout sweeps and Pareto frontiers (Figures 1 and C.1).

use esti_hal::DType;
use esti_model::ModelConfig;

use crate::layout::Layout;
use crate::machine::Machine;
use crate::perf::{estimate, generate_latency, PhaseSpec};
use crate::planner;

/// One configuration evaluated during a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Model evaluated.
    pub model: String,
    /// Chips used.
    pub n_chips: usize,
    /// Batch size in sequences.
    pub batch: usize,
    /// Layout used.
    pub layout: Layout,
    /// Weight storage type.
    pub dtype: DType,
    /// Latency of interest: per generated token for decode sweeps, total
    /// pass time for prefill sweeps. Seconds.
    pub latency: f64,
    /// Cost in chip-seconds per token (Section 4.4).
    pub cost: f64,
    /// Model FLOPS utilization.
    pub mfu: f64,
}

/// Standard batch sizes swept in the figures.
pub const BATCHES: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Standard chip counts swept in the figures.
pub const CHIP_COUNTS: [usize; 6] = [8, 16, 32, 64, 128, 256];

/// Sweeps decode configurations: for each chip count and batch size, cost
/// one generation step at `context` cached tokens using the paper's decode
/// layout. Configurations that do not fit in HBM are skipped.
#[must_use]
pub fn decode_sweep(model: &ModelConfig, dtype: DType, context: usize) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &n in &CHIP_COUNTS {
        let Some(machine) = Machine::tpu_v4_slice(n) else { continue };
        for &batch in &BATCHES {
            let layout = planner::decode_layout_for_batch(model, &machine, batch);
            let est = generate_latency(&machine, model, &layout, batch, context, 64, dtype);
            if !est.fits {
                continue;
            }
            let per_token = est.step_time / 64.0;
            out.push(SweepPoint {
                model: model.name.clone(),
                n_chips: n,
                batch,
                layout,
                dtype,
                latency: per_token,
                cost: est.cost_chip_sec_per_token,
                mfu: est.mfu,
            });
        }
    }
    out
}

/// Sweeps prefill configurations: total time to process `input_len` tokens
/// per sequence, with the layout chosen by the planner per batch.
#[must_use]
pub fn prefill_sweep(model: &ModelConfig, dtype: DType, input_len: usize) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &n in &CHIP_COUNTS {
        let Some(machine) = Machine::tpu_v4_slice(n) else { continue };
        for &batch in &BATCHES {
            let layout = planner::prefill_layout(model, &machine, batch, input_len, dtype);
            let spec = PhaseSpec::prefill(batch, input_len);
            let est = estimate(&machine, model, &layout, &spec, dtype);
            if !est.fits {
                continue;
            }
            out.push(SweepPoint {
                model: model.name.clone(),
                n_chips: n,
                batch,
                layout,
                dtype,
                latency: est.step_time,
                cost: est.cost_chip_sec_per_token,
                mfu: est.mfu,
            });
        }
    }
    out
}

/// Filters a sweep to its Pareto frontier under `(latency, objective)`
/// where both are minimized. Pass `|p| p.cost` for Figure 1 or
/// `|p| -p.mfu` for Figure C.1.
#[must_use]
pub fn pareto_frontier<F>(points: &[SweepPoint], objective: F) -> Vec<SweepPoint>
where
    F: Fn(&SweepPoint) -> f64,
{
    let mut frontier: Vec<SweepPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                
                (q.latency < p.latency && objective(q) <= objective(p))
                    || (q.latency <= p.latency && objective(q) < objective(p))
            })
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite latencies"));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_monotone() {
        // Along a Pareto frontier sorted by latency, cost must be
        // non-increasing.
        let model = ModelConfig::palm_540b_padded();
        let sweep = decode_sweep(&model, DType::Int8, 2048);
        assert!(!sweep.is_empty());
        let frontier = pareto_frontier(&sweep, |p| p.cost);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[1].cost <= w[0].cost, "cost must fall as latency rises");
        }
    }

    #[test]
    fn frontier_subset_of_sweep() {
        let model = ModelConfig::palm_62b();
        let sweep = decode_sweep(&model, DType::Bf16, 2048);
        let frontier = pareto_frontier(&sweep, |p| p.cost);
        assert!(frontier.len() <= sweep.len());
        assert!(frontier.len() >= 2, "frontier should have multiple regimes");
    }

    #[test]
    fn large_models_need_more_chips() {
        // PaLM 540B bf16 does not fit on 8 chips; PaLM 8B does.
        let big = decode_sweep(&ModelConfig::palm_540b_padded(), DType::Bf16, 2048);
        assert!(big.iter().all(|p| p.n_chips >= 32));
        let small = decode_sweep(&ModelConfig::palm_8b(), DType::Bf16, 2048);
        assert!(small.iter().any(|p| p.n_chips == 8));
    }

    #[test]
    fn min_latency_beats_batch512_latency_by_about_3x() {
        // Section 4.4: "The minimum latency for generation is 3 times lower
        // than the batch-512 latency."
        let model = ModelConfig::palm_540b_padded();
        let sweep = decode_sweep(&model, DType::Int8, 2048);
        let min_lat = sweep.iter().map(|p| p.latency).fold(f64::INFINITY, f64::min);
        let batch512 = sweep
            .iter()
            .filter(|p| p.batch == 512)
            .map(|p| p.latency)
            .fold(f64::INFINITY, f64::min);
        let ratio = batch512 / min_lat;
        assert!(ratio > 1.8 && ratio < 8.0, "latency ratio {ratio:.1}, paper ~3x");
    }

    #[test]
    fn cost_falls_with_batch_on_frontier() {
        // Larger batches improve MFU and hence cost (Section 2.1).
        let model = ModelConfig::palm_62b();
        let sweep = decode_sweep(&model, DType::Bf16, 2048);
        let at_batch = |b: usize| {
            sweep
                .iter()
                .filter(|p| p.batch == b)
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(at_batch(512) < at_batch(8));
    }

    #[test]
    fn prefill_cheaper_than_decode_at_batch_512() {
        // Section 4.4: batch-512 prefill cost is ~2x lower than batch-512
        // decode because of weight-gathered layouts.
        let model = ModelConfig::palm_540b_padded();
        let d = decode_sweep(&model, DType::Bf16, 2048);
        let p = prefill_sweep(&model, DType::Bf16, 2048);
        let d_cost = d
            .iter()
            .filter(|x| x.batch == 512 && x.n_chips == 64)
            .map(|x| x.cost)
            .fold(f64::INFINITY, f64::min);
        let p_cost = p
            .iter()
            .filter(|x| x.batch == 512 && x.n_chips == 64)
            .map(|x| x.cost)
            .fold(f64::INFINITY, f64::min);
        assert!(p_cost < d_cost / 1.5, "prefill {p_cost:.2e} vs decode {d_cost:.2e}");
    }

    #[test]
    fn latency_grows_sublinearly_with_model_size() {
        // Section 4.4: minimum decode latency grows roughly as the square
        // root of model size along the frontier.
        let lat = |m: &ModelConfig| {
            decode_sweep(m, DType::Int8, 2048)
                .iter()
                .map(|p| p.latency)
                .fold(f64::INFINITY, f64::min)
        };
        let l8 = lat(&ModelConfig::palm_8b());
        let l540 = lat(&ModelConfig::palm_540b_padded());
        let size_ratio = 540.0 / 8.6; // ~63x parameters
        let lat_ratio = l540 / l8;
        assert!(
            lat_ratio < size_ratio / 2.0,
            "latency ratio {lat_ratio:.1} should be far below size ratio {size_ratio:.0}"
        );
        assert!(lat_ratio > 1.5, "bigger model must still be slower ({lat_ratio:.1}x)");
    }
}
