//! Pipeline parallelism — the baseline FasterTransformer combines with
//! tensor parallelism (its "PP3/TP8" configuration, Section 5).
//!
//! The paper's own layouts are pure model parallelism; pipelining is the
//! strategy they argue *against* for low-latency inference, because
//! autoregressive decode cannot hide the pipeline bubble: each generated
//! token must traverse all stages sequentially, so `S-1` of every `S`
//! stage-times are idle per chip. Prefill pipelines well — microbatches
//! fill the stages — which is why FT's PP numbers look reasonable at large
//! batch but poor at small (Tables D.2–D.4).
//!
//! This module costs a `stages × (chips per stage)` arrangement: layers are
//! split evenly across stages, each stage runs the given tensor-parallel
//! layout internally, and activations hop between stages over one torus
//! link.

use esti_hal::DType;
use esti_model::ModelConfig;

use crate::layout::Layout;
use crate::machine::Machine;
use crate::perf::{estimate_with, Estimate, PerfParams, Phase, PhaseSpec};

/// A pipeline arrangement: `stages` sequential groups of chips, each
/// holding `n_layers / stages` layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSetup {
    /// Number of pipeline stages.
    pub stages: usize,
    /// Microbatches the batch is split into during prefill (decode streams
    /// one token per sequence and cannot re-microbatch across steps).
    pub microbatches: usize,
}

impl PipelineSetup {
    /// Creates a setup.
    ///
    /// # Panics
    ///
    /// Panics if `stages` or `microbatches` is zero.
    #[must_use]
    pub fn new(stages: usize, microbatches: usize) -> Self {
        assert!(stages > 0 && microbatches > 0, "stages and microbatches must be positive");
        PipelineSetup { stages, microbatches }
    }

    /// The classic bubble fraction of a filled pipeline:
    /// `(S-1) / (M + S - 1)`.
    #[must_use]
    pub fn bubble_fraction(&self) -> f64 {
        (self.stages as f64 - 1.0) / (self.microbatches as f64 + self.stages as f64 - 1.0)
    }
}

/// Costs one phase under pipeline × tensor parallelism.
///
/// `machine_per_stage` describes one stage's chips; total chips are
/// `stages × machine_per_stage.n_chips()`. `layout` is the tensor-parallel
/// layout *within* a stage.
///
/// # Panics
///
/// Panics if the layer count is not divisible by the stage count, or if a
/// prefill microbatch would be empty.
#[must_use]
pub fn estimate_pipelined(
    machine_per_stage: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    setup: &PipelineSetup,
    spec: &PhaseSpec,
    weight_dtype: DType,
) -> Estimate {
    estimate_pipelined_with(
        machine_per_stage,
        model,
        layout,
        setup,
        spec,
        weight_dtype,
        &PerfParams::default(),
    )
}

/// [`estimate_pipelined`] with explicit calibration parameters.
#[must_use]
pub fn estimate_pipelined_with(
    machine_per_stage: &Machine,
    model: &ModelConfig,
    layout: &Layout,
    setup: &PipelineSetup,
    spec: &PhaseSpec,
    weight_dtype: DType,
    params: &PerfParams,
) -> Estimate {
    let s = setup.stages;
    assert!(
        model.n_layers.is_multiple_of(s),
        "{} layers do not split into {s} equal pipeline stages",
        model.n_layers
    );
    // One stage = the same model with 1/S of the layers (embeddings live on
    // the first/last stage; we keep them in the stage model so the total
    // FLOPs stay exact up to (S-1) extra embedding matmuls, which the
    // paper's 2N accounting also ignores).
    let mut stage_model = model.clone();
    stage_model.n_layers = model.n_layers / s;

    let total_chips = (machine_per_stage.n_chips() * s) as f64;
    let inter_stage_bytes =
        |tokens: f64| tokens * model.d_model as f64 * DType::Bf16.bytes_f();
    let link_bw = machine_per_stage.chip.axis_bandwidth(1) * params.collective_bw_derate;

    let (step_time, stage_est, tokens) = match spec.phase {
        Phase::Prefill => {
            let m = setup.microbatches.min(spec.batch.max(1));
            let micro = (spec.batch / m).max(1);
            let micro_spec = PhaseSpec::prefill(micro, spec.tokens_per_seq);
            let est = estimate_with(machine_per_stage, &stage_model, layout, &micro_spec, weight_dtype, params);
            // (M + S - 1) stage slots, plus the inter-stage activation hops
            // on the critical path.
            let hop = inter_stage_bytes(micro_spec.total_tokens()) / link_bw;
            let slots = (m + s - 1) as f64;
            (slots * (est.step_time + hop), est, spec.total_tokens())
        }
        Phase::Decode => {
            // A decode step traverses all stages sequentially; later steps
            // cannot start a stage before the previous token finished it,
            // so per-token latency is the full sum (the pipeline is only
            // utilized 1/S per request stream).
            let est = estimate_with(machine_per_stage, &stage_model, layout, spec, weight_dtype, params);
            let hop = inter_stage_bytes(spec.total_tokens()) / link_bw;
            (s as f64 * (est.step_time + hop), est, spec.total_tokens())
        }
    };

    let mfu = model.flops_per_token() * tokens
        / (step_time * total_chips * machine_per_stage.chip.peak_flops);
    Estimate {
        step_time,
        compute_time: stage_est.compute_time * s as f64,
        weight_mem_time: stage_est.weight_mem_time * s as f64,
        kv_mem_time: stage_est.kv_mem_time * s as f64,
        comm_time: stage_est.comm_time * s as f64,
        mfu,
        cost_chip_sec_per_token: total_chips * step_time / tokens,
        fits: stage_est.fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AttnSharding, FfnLayout};

    fn mtnlg() -> ModelConfig {
        ModelConfig::mt_nlg_530b()
    }

    fn tp_layout(model: &ModelConfig, n: usize) -> Layout {
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
        }
    }

    #[test]
    fn bubble_fraction_formula() {
        assert_eq!(PipelineSetup::new(1, 8).bubble_fraction(), 0.0);
        let s4m4 = PipelineSetup::new(4, 4).bubble_fraction();
        assert!((s4m4 - 3.0 / 7.0).abs() < 1e-12);
        // More microbatches shrink the bubble.
        assert!(PipelineSetup::new(4, 32).bubble_fraction() < s4m4);
    }

    #[test]
    fn decode_pays_the_full_pipeline_latency() {
        // TP over 64 chips vs PP4 x TP16 on the same 64 chips: decode
        // latency and MFU must favor pure tensor parallelism — the paper's
        // core argument for scaling TP to 64 chips.
        let model = mtnlg();
        // 105 layers don't split by 4; use a 3-stage pipeline (FT's PP3).
        let setup = PipelineSetup::new(3, 1);
        let stage_machine = Machine::tpu_v4_slice(16).unwrap();
        let pp = estimate_pipelined(
            &stage_machine,
            &model,
            &tp_layout(&model, 16),
            &setup,
            &PhaseSpec::decode(64, 128),
            DType::Bf16,
        );
        let tp_machine = Machine::tpu_v4_slice(64).unwrap();
        let mut model48 = model.clone();
        // Match chip counts approximately: 3x16 = 48 vs 64; compare MFU,
        // which normalizes chips.
        model48.name = model.name.clone();
        let tp = crate::perf::estimate(
            &tp_machine,
            &model48,
            &tp_layout(&model48, 64),
            &PhaseSpec::decode(64, 128),
            DType::Bf16,
        );
        assert!(pp.step_time > tp.step_time, "pipelined decode must be slower");
        assert!(pp.mfu < tp.mfu, "pipelined decode must waste utilization");
    }

    #[test]
    fn prefill_bubble_amortizes_with_microbatches() {
        let model = mtnlg();
        let stage_machine = Machine::tpu_v4_slice(16).unwrap();
        let layout = tp_layout(&model, 16);
        let spec = PhaseSpec::prefill(64, 128);
        let few = estimate_pipelined(
            &stage_machine, &model, &layout, &PipelineSetup::new(3, 1), &spec, DType::Bf16,
        );
        let many = estimate_pipelined(
            &stage_machine, &model, &layout, &PipelineSetup::new(3, 16), &spec, DType::Bf16,
        );
        assert!(many.step_time < few.step_time, "microbatching must amortize the bubble");
        assert!(many.mfu > few.mfu);
    }

    #[test]
    #[should_panic(expected = "equal pipeline stages")]
    fn indivisible_stage_count_rejected() {
        let model = mtnlg(); // 105 layers
        let stage_machine = Machine::tpu_v4_slice(8).unwrap();
        let _ = estimate_pipelined(
            &stage_machine,
            &model,
            &tp_layout(&model, 8),
            &PipelineSetup::new(4, 1),
            &PhaseSpec::decode(8, 128),
            DType::Bf16,
        );
    }

    #[test]
    fn pipeline_reduces_per_stage_memory() {
        // The reason FT uses PP at all: a stage holds 1/S of the weights,
        // letting 530B bf16 fit on fewer chips per stage.
        let model = mtnlg();
        let stage_machine = Machine::tpu_v4_slice(16).unwrap();
        let setup = PipelineSetup::new(3, 1);
        let est = estimate_pipelined(
            &stage_machine,
            &model,
            &tp_layout(&model, 16),
            &setup,
            &PhaseSpec::decode(4, 128),
            DType::Bf16,
        );
        // 530B bf16 / 3 stages / 16 chips = ~22 GB per chip: fits.
        assert!(est.fits, "PP3/TP16 should fit MT-NLG in bf16");
        // Whereas pure TP16 does not fit the full model.
        let tp = crate::perf::estimate(
            &stage_machine,
            &model,
            &tp_layout(&model, 16),
            &PhaseSpec::decode(4, 128),
            DType::Bf16,
        );
        assert!(!tp.fits, "TP16 alone must not fit 530B bf16");
    }
}
