//! Two-tier serving simulation (Section 4.4).
//!
//! The paper's low-latency recipe pairs *different batch sizes per phase*:
//!
//! > "This mixture of batch sizes is possible in practice either by
//! > generating multiple samples from the same input text, or by
//! > pipelining a batch-1 prefill server into a batch-64 decoding server."
//!
//! This module simulates that second arrangement as a discrete-event
//! system: requests arrive over time, a prefill tier processes prompts one
//! at a time (batch 1, minimum prefill latency), and a decode tier runs a
//! continuous loop of generation steps over all in-flight sequences up to
//! a batch cap, admitting newly prefilled requests at step boundaries —
//! a small-scale ancestor of today's continuous batching.
//!
//! Step costs come from the same analytical model as every figure, so the
//! serving numbers stay consistent with the rest of the reproduction.

use esti_hal::{DType, Seconds};
use esti_model::ModelConfig;

use crate::machine::Machine;
use crate::perf::{estimate, PhaseSpec};
use crate::planner;

/// Static description of the two tiers.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Chips of the prefill tier.
    pub prefill_machine: Machine,
    /// Chips of the decode tier.
    pub decode_machine: Machine,
    /// Maximum concurrent sequences in the decode batch.
    pub max_decode_batch: usize,
    /// Prompt length of every request (tokens).
    pub input_len: usize,
    /// Tokens generated per request.
    pub gen_len: usize,
    /// Weight storage type.
    pub weight_dtype: DType,
}

/// One simulated request's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestStats {
    /// Arrival time.
    pub arrival: Seconds,
    /// When prefill finished and the request became decodable.
    pub prefilled: Seconds,
    /// When the last token was generated.
    pub finished: Seconds,
}

impl RequestStats {
    /// End-to-end latency.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.finished - self.arrival
    }

    /// Time spent queued + in prefill.
    #[must_use]
    pub fn prefill_latency(&self) -> Seconds {
        self.prefilled - self.arrival
    }
}

/// Fault and recovery accounting for a serving run. All-zero (the
/// [`Default`]) on a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Engine failures (chip crashes, collective timeouts) survived.
    pub faults: usize,
    /// Decode steps whose generated tokens had to be re-derived after a
    /// failure: the longest already-emitted decode suffix among the
    /// requests that were in flight when the engine died.
    pub steps_lost: usize,
    /// In-flight requests replayed (re-prefilled and re-decoded to their
    /// pre-fault position).
    pub requests_replayed: usize,
    /// Prompt tokens re-prefilled during replay.
    pub prefill_tokens_replayed: usize,
    /// Already-emitted decode tokens re-derived during replay.
    pub decode_tokens_replayed: usize,
    /// Wall-clock seconds spent in recovery proper (engine rebuild +
    /// re-prefill); the replayed decode steps overlap new work and are
    /// accounted by `steps_lost` instead.
    pub recovery_seconds: f64,
}

impl RecoveryStats {
    /// Accumulates another recovery episode's counters into this one.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.faults += other.faults;
        self.steps_lost += other.steps_lost;
        self.requests_replayed += other.requests_replayed;
        self.prefill_tokens_replayed += other.prefill_tokens_replayed;
        self.decode_tokens_replayed += other.decode_tokens_replayed;
        self.recovery_seconds += other.recovery_seconds;
    }
}

/// Aggregate results of a serving simulation.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request outcomes, in arrival order.
    pub requests: Vec<RequestStats>,
    /// Total simulated time until the last request finished.
    pub makespan: Seconds,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Mean decode batch occupancy over executed steps.
    pub mean_decode_batch: f64,
    /// Peak decode batch occupancy (most slots simultaneously live) — the
    /// concurrency the KV capacity actually supported. `0` when the run
    /// does not track it (the analytical simulator).
    pub peak_decode_batch: usize,
    /// Minimum free pages the decode tier's KV admission ledger observed
    /// (headroom at peak occupancy). `0` when no page budget applies
    /// (slab-backed decode, or a paged tier with no
    /// `kv_position_budget`).
    pub kv_pages_free: usize,
    /// Peak count of KV pages mapped by more than one live request
    /// (copy-on-write prompt-prefix sharing). `0` on a slab-backed tier.
    pub kv_pages_shared: usize,
    /// Fault/recovery accounting (all-zero on a fault-free run).
    pub recovery: RecoveryStats,
}

impl ServingReport {
    /// Assembles a report from per-request outcomes and decode-tier
    /// counters, deriving the makespan and a well-defined mean occupancy
    /// (`0.0`, not NaN, when no steps executed). Shared by the analytical
    /// simulator and the measured runtime scheduler so both report
    /// identically shaped statistics.
    #[must_use]
    pub fn new(requests: Vec<RequestStats>, decode_steps: usize, occupancy_sum: usize) -> Self {
        let makespan = requests.iter().map(|r| r.finished).fold(0.0, f64::max);
        let mean_decode_batch = if decode_steps == 0 {
            0.0
        } else {
            occupancy_sum as f64 / decode_steps as f64
        };
        ServingReport {
            requests,
            makespan,
            decode_steps,
            mean_decode_batch,
            peak_decode_batch: 0,
            kv_pages_free: 0,
            kv_pages_shared: 0,
            recovery: RecoveryStats::default(),
        }
    }

    /// Attaches fault/recovery accounting (builder-style; [`new`] reports
    /// a fault-free run).
    ///
    /// [`new`]: ServingReport::new
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryStats) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attaches the peak decode-slot occupancy (builder-style).
    #[must_use]
    pub fn with_peak_batch(mut self, peak: usize) -> Self {
        self.peak_decode_batch = peak;
        self
    }

    /// Attaches paged-KV pool accounting (builder-style): minimum free
    /// pages under the admission budget and the peak shared-page count.
    #[must_use]
    pub fn with_kv_pages(mut self, free: usize, shared: usize) -> Self {
        self.kv_pages_free = free;
        self.kv_pages_shared = shared;
        self
    }

    /// Mean end-to-end latency.
    #[must_use]
    pub fn mean_latency(&self) -> Seconds {
        let total: f64 = self.requests.iter().map(RequestStats::latency).sum();
        total / self.requests.len() as f64
    }

    /// A latency percentile in `[0, 100]`, by the nearest-rank definition:
    /// the smallest latency `l` such that at least `p%` of requests have
    /// latency `<= l` — i.e. the sorted value at rank `⌈p/100 · n⌉`
    /// (1-based; `p = 0` maps to the minimum).
    ///
    /// # Panics
    ///
    /// Panics if there are no requests or `p` is out of range.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Seconds {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        assert!(!self.requests.is_empty(), "no requests simulated");
        let mut lats: Vec<f64> = self.requests.iter().map(RequestStats::latency).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = ((p / 100.0) * lats.len() as f64).ceil() as usize;
        lats[rank.max(1) - 1]
    }

    /// The first arrival time — the start of the interval over which
    /// throughput is meaningful (idle time before any work exists says
    /// nothing about the system).
    #[must_use]
    pub fn first_arrival(&self) -> Seconds {
        self.requests.iter().map(|r| r.arrival).fold(f64::INFINITY, f64::min)
    }

    /// Generated tokens per second, measured from the first arrival to the
    /// last completion (not from t = 0, which would understate throughput
    /// for traces that start late). For per-request generation lengths that
    /// vary, pass the actual total via
    /// [`ServingReport::generated_throughput`].
    #[must_use]
    pub fn throughput_tokens_per_sec(&self, gen_len: usize) -> f64 {
        self.generated_throughput(self.requests.len() * gen_len)
    }

    /// [`ServingReport::throughput_tokens_per_sec`] for an explicit total
    /// token count.
    #[must_use]
    pub fn generated_throughput(&self, total_tokens: usize) -> f64 {
        total_tokens as f64 / (self.makespan - self.first_arrival())
    }
}

/// Simulates serving `arrivals` (absolute arrival times, ascending) through
/// the two-tier system for `model`.
///
/// # Panics
///
/// Panics if `arrivals` is empty or not sorted ascending.
#[must_use]
pub fn simulate(model: &ModelConfig, cfg: &ServingConfig, arrivals: &[Seconds]) -> ServingReport {
    assert!(!arrivals.is_empty(), "no arrivals to simulate");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival times must be ascending"
    );

    // Phase costs from the analytical model. Decode step time depends on
    // the instantaneous batch; precompute per occupancy 1..=max.
    let prefill_layout =
        planner::prefill_layout(model, &cfg.prefill_machine, 1, cfg.input_len, cfg.weight_dtype);
    let prefill_time = estimate(
        &cfg.prefill_machine,
        model,
        &prefill_layout,
        &PhaseSpec::prefill(1, cfg.input_len),
        cfg.weight_dtype,
    )
    .step_time;
    let context = cfg.input_len + cfg.gen_len / 2;
    let step_time: Vec<Seconds> = (0..=cfg.max_decode_batch)
        .map(|b| {
            if b == 0 {
                0.0
            } else {
                let layout = planner::decode_layout_for_batch(model, &cfg.decode_machine, b);
                estimate(
                    &cfg.decode_machine,
                    model,
                    &layout,
                    &PhaseSpec::decode(b, context),
                    cfg.weight_dtype,
                )
                .step_time
            }
        })
        .collect();

    // --- prefill tier: FIFO, one prompt at a time -------------------------
    let mut prefilled_at = Vec::with_capacity(arrivals.len());
    let mut free_at: Seconds = 0.0;
    for &a in arrivals {
        let start = a.max(free_at);
        free_at = start + prefill_time;
        prefilled_at.push(free_at);
    }

    // --- decode tier: continuous stepping with admission at boundaries ----
    #[derive(Clone, Copy)]
    struct InFlight {
        idx: usize,
        remaining: usize,
    }
    let mut pending: std::collections::VecDeque<usize> = (0..arrivals.len()).collect();
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut finished_at = vec![0.0f64; arrivals.len()];
    let mut now: Seconds = 0.0;
    let mut steps = 0usize;
    let mut occupancy_sum = 0usize;
    if cfg.gen_len == 0 {
        // Degenerate: nothing to decode — requests finish as they prefill.
        finished_at.copy_from_slice(&prefilled_at);
        pending.clear();
    }
    while !pending.is_empty() || !in_flight.is_empty() {
        // Admit every request already prefilled, up to the cap.
        while in_flight.len() < cfg.max_decode_batch {
            match pending.front() {
                Some(&idx) if prefilled_at[idx] <= now => {
                    pending.pop_front();
                    in_flight.push(InFlight { idx, remaining: cfg.gen_len });
                }
                _ => break,
            }
        }
        if in_flight.is_empty() {
            // Idle until the next prefill completes.
            let next = pending.front().map(|&i| prefilled_at[i]).expect("pending non-empty");
            now = now.max(next);
            continue;
        }
        let b = in_flight.len();
        now += step_time[b];
        steps += 1;
        occupancy_sum += b;
        for r in &mut in_flight {
            r.remaining -= 1;
            if r.remaining == 0 {
                finished_at[r.idx] = now;
            }
        }
        in_flight.retain(|r| r.remaining > 0);
    }

    let requests: Vec<RequestStats> = arrivals
        .iter()
        .zip(&prefilled_at)
        .zip(&finished_at)
        .map(|((&arrival, &prefilled), &finished)| RequestStats { arrival, prefilled, finished })
        .collect();
    ServingReport::new(requests, steps, occupancy_sum)
}

/// Evenly spaced arrivals at `rate` requests/second for `n` requests —
/// a deterministic open-loop load for reproducible experiments.
#[must_use]
pub fn uniform_arrivals(n: usize, rate: f64) -> Vec<Seconds> {
    (0..n).map(|i| i as f64 / rate).collect()
}

/// Seeded Poisson-process arrivals at `rate` requests/second — bursty
/// open-loop load with exponential inter-arrival gaps, deterministic for a
/// given seed.
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn poisson_arrivals(n: usize, rate: f64, seed: u64) -> Vec<Seconds> {
    assert!(rate > 0.0, "arrival rate must be positive");
    // A tiny splitmix64 PRNG keeps the workspace dependency-light here.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u = (next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            t += -(1.0 - u).ln() / rate;
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> (ModelConfig, ServingConfig) {
        let model = ModelConfig::palm_540b_padded();
        let cfg = ServingConfig {
            prefill_machine: Machine::tpu_v4_slice(64).unwrap(),
            decode_machine: Machine::tpu_v4_slice(64).unwrap(),
            max_decode_batch: 64,
            input_len: 64,
            gen_len: 64,
            weight_dtype: DType::Int8,
        };
        (model, cfg)
    }

    #[test]
    fn single_request_matches_phase_sum() {
        let (model, cfg) = config();
        let report = simulate(&model, &cfg, &[0.0]);
        assert_eq!(report.requests.len(), 1);
        let r = report.requests[0];
        assert!(r.prefilled > 0.0);
        assert!(r.finished > r.prefilled);
        // 64 decode steps at batch 1.
        assert_eq!(report.decode_steps, 64);
        assert!((report.mean_decode_batch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_load_fills_the_decode_batch() {
        let (model, cfg) = config();
        // A burst of 128 simultaneous requests: the decode tier should run
        // near its batch cap.
        let arrivals = vec![0.0; 128];
        let report = simulate(&model, &cfg, &arrivals);
        assert!(report.mean_decode_batch > 32.0, "occupancy {}", report.mean_decode_batch);
        assert!(report.latency_percentile(99.0) >= report.latency_percentile(50.0));
    }

    #[test]
    fn batching_improves_throughput_at_bounded_latency_cost() {
        // The paper's point: decode batch 64 costs little latency but
        // multiplies throughput.
        let (model, cfg) = config();
        let mut solo = cfg.clone();
        solo.max_decode_batch = 1;
        // A saturating burst, so the serial tier cannot hide behind idle
        // time between arrivals.
        let arrivals = vec![0.0; 32];
        let batched = simulate(&model, &cfg, &arrivals);
        let serial = simulate(&model, &solo, &arrivals);
        let tput_b = batched.throughput_tokens_per_sec(cfg.gen_len);
        let tput_s = serial.throughput_tokens_per_sec(cfg.gen_len);
        assert!(tput_b > 3.0 * tput_s, "batched {tput_b} vs serial {tput_s}");
        assert!(batched.mean_latency() < serial.mean_latency());
    }

    #[test]
    fn light_load_latency_close_to_paper_chatbot() {
        // At low arrival rate each request sees roughly the 1.9s chatbot
        // turn of Section 1 (we use a 64-token prompt + 64 generated).
        let (model, cfg) = config();
        let arrivals = uniform_arrivals(4, 0.2); // one request per 5s
        let report = simulate(&model, &cfg, &arrivals);
        let mean = report.mean_latency();
        assert!(mean > 0.3 && mean < 3.0, "mean latency {mean}");
    }

    #[test]
    fn throughput_saturates_with_offered_load() {
        let (model, cfg) = config();
        let low = simulate(&model, &cfg, &uniform_arrivals(16, 1.0));
        let high = simulate(&model, &cfg, &uniform_arrivals(256, 1e6));
        let t_low = low.throughput_tokens_per_sec(cfg.gen_len);
        let t_high = high.throughput_tokens_per_sec(cfg.gen_len);
        assert!(t_high > t_low);
        // The cap: batch-64 decode step bounds tokens/sec.
        let (model2, _) = config();
        let layout = planner::decode_layout_for_batch(&model2, &cfg.decode_machine, 64);
        let step = estimate(
            &cfg.decode_machine,
            &model2,
            &layout,
            &PhaseSpec::decode(64, cfg.input_len + cfg.gen_len / 2),
            cfg.weight_dtype,
        )
        .step_time;
        let cap = 64.0 / step;
        assert!(t_high <= cap * 1.05, "throughput {t_high} above cap {cap}");
        assert!(t_high > cap * 0.5, "throughput {t_high} far below cap {cap}");
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_rate_accurate() {
        let arr = poisson_arrivals(2000, 4.0, 9);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ~ 1/rate within 10%.
        let mean_gap = arr.last().unwrap() / 2000.0;
        assert!((mean_gap - 0.25).abs() < 0.025, "mean gap {mean_gap}");
        // Deterministic per seed, different across seeds.
        assert_eq!(arr, poisson_arrivals(2000, 4.0, 9));
        assert_ne!(arr, poisson_arrivals(2000, 4.0, 10));
    }

    #[test]
    fn bursty_load_raises_tail_latency() {
        // Poisson burstiness should not lower the p99 below the uniform
        // schedule's at the same rate.
        let (model, cfg) = config();
        let uni = simulate(&model, &cfg, &uniform_arrivals(64, 8.0));
        let poi = simulate(&model, &cfg, &poisson_arrivals(64, 8.0, 3));
        assert!(poi.latency_percentile(99.0) >= uni.latency_percentile(99.0) * 0.9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_arrivals_rejected() {
        let (model, cfg) = config();
        let _ = simulate(&model, &cfg, &[1.0, 0.5]);
    }

    fn fixture_report(lats: &[f64]) -> ServingReport {
        let requests = lats
            .iter()
            .map(|&l| RequestStats { arrival: 0.0, prefilled: l / 2.0, finished: l })
            .collect();
        ServingReport::new(requests, 0, 0)
    }

    #[test]
    fn percentile_is_true_nearest_rank() {
        // Hand-checked 4-element fixture. Nearest-rank: the value at
        // 1-based rank ceil(p/100 * 4). The old round(p/100 * (n-1))
        // formula gave 3.0 at p50 — neither nearest-rank nor interpolation.
        let r = fixture_report(&[4.0, 2.0, 1.0, 3.0]);
        assert_eq!(r.latency_percentile(0.0), 1.0);
        assert_eq!(r.latency_percentile(25.0), 1.0);
        assert_eq!(r.latency_percentile(50.0), 2.0);
        assert_eq!(r.latency_percentile(75.0), 3.0);
        assert_eq!(r.latency_percentile(100.0), 4.0);
        // Just past a rank boundary, the next order statistic is taken.
        assert_eq!(r.latency_percentile(50.1), 3.0);
    }

    #[test]
    fn throughput_measures_from_first_arrival() {
        // A trace that starts 100s in: dead time before the first arrival
        // must not dilute throughput.
        let requests = vec![
            RequestStats { arrival: 100.0, prefilled: 101.0, finished: 104.0 },
            RequestStats { arrival: 102.0, prefilled: 103.0, finished: 110.0 },
        ];
        let r = ServingReport::new(requests, 10, 15);
        assert_eq!(r.first_arrival(), 100.0);
        // 2 requests x 5 tokens over (110 - 100) seconds.
        assert!((r.throughput_tokens_per_sec(5) - 1.0).abs() < 1e-12);
        assert!((r.generated_throughput(20) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_decode_steps_yield_finite_stats() {
        let (model, mut cfg) = config();
        cfg.gen_len = 0;
        let report = simulate(&model, &cfg, &[0.0, 1.0]);
        assert_eq!(report.decode_steps, 0);
        assert_eq!(report.mean_decode_batch, 0.0);
        assert!(report.mean_decode_batch.is_finite(), "must not be NaN");
        // Requests finish when prefilled.
        for r in &report.requests {
            assert_eq!(r.finished, r.prefilled);
        }
    }
}
