//! Two-tier serving simulation (Section 4.4).
//!
//! The paper's low-latency recipe pairs *different batch sizes per phase*:
//!
//! > "This mixture of batch sizes is possible in practice either by
//! > generating multiple samples from the same input text, or by
//! > pipelining a batch-1 prefill server into a batch-64 decoding server."
//!
//! This module simulates that second arrangement as a discrete-event
//! system: requests arrive over time, a prefill tier processes prompts one
//! at a time (batch 1, minimum prefill latency), and a decode tier runs a
//! continuous loop of generation steps over all in-flight sequences up to
//! a batch cap, admitting newly prefilled requests at step boundaries —
//! a small-scale ancestor of today's continuous batching.
//!
//! Step costs come from the same analytical model as every figure, so the
//! serving numbers stay consistent with the rest of the reproduction.

use std::collections::{HashMap, VecDeque};

use esti_hal::{DType, Seconds};
use esti_model::ModelConfig;

use crate::machine::Machine;
use crate::perf::{estimate, PhaseSpec};
use crate::planner;

/// Scheduling class of a request. Ordered: `Low < Normal < High`, so the
/// derived [`Ord`] is "who goes first". Schedulers admit (and prefill)
/// higher classes first and, under pressure, preempt strictly lower
/// classes to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort background work: first to be shed or preempted.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive (interactive) work: jumps every queue and may
    /// preempt lower classes.
    High,
}

impl Priority {
    /// All classes, lowest first (so `ALL[p.index()] == p`).
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Dense index for per-class tables: `Low = 0, Normal = 1, High = 2`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::Normal => write!(f, "normal"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// Static description of the two tiers.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Chips of the prefill tier.
    pub prefill_machine: Machine,
    /// Chips of the decode tier.
    pub decode_machine: Machine,
    /// Maximum concurrent sequences in the decode batch.
    pub max_decode_batch: usize,
    /// Prompt length of every request (tokens).
    pub input_len: usize,
    /// Tokens generated per request.
    pub gen_len: usize,
    /// Weight storage type.
    pub weight_dtype: DType,
}

/// One simulated request's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestStats {
    /// Arrival time.
    pub arrival: Seconds,
    /// When prefill finished and the request became decodable — the first
    /// generated token exists at this instant, so `prefilled - arrival` is
    /// the request's TTFT.
    pub prefilled: Seconds,
    /// When the last token was generated.
    pub finished: Seconds,
    /// Tokens actually generated (`max_new_tokens` for a completed
    /// request). Drives the per-output-token (TPOT) statistic.
    pub generated: usize,
}

impl RequestStats {
    /// End-to-end latency.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.finished - self.arrival
    }

    /// Time spent queued + in prefill.
    #[must_use]
    pub fn prefill_latency(&self) -> Seconds {
        self.prefilled - self.arrival
    }

    /// Time to first token: the first generated token is sampled from the
    /// prefill logits, so it exists the moment prefill completes.
    #[must_use]
    pub fn ttft(&self) -> Seconds {
        self.prefilled - self.arrival
    }

    /// Mean seconds per output token *after* the first (the decode-steady
    /// rate users perceive while a response streams). `None` for requests
    /// that generated fewer than two tokens — there is no inter-token gap
    /// to measure.
    #[must_use]
    pub fn tpot(&self) -> Option<Seconds> {
        (self.generated >= 2)
            .then(|| (self.finished - self.prefilled) / (self.generated - 1) as f64)
    }
}

/// Fault and recovery accounting for a serving run. All-zero (the
/// [`Default`]) on a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Engine failures (chip crashes, collective timeouts) survived.
    pub faults: usize,
    /// Decode steps whose generated tokens had to be re-derived after a
    /// failure: the longest already-emitted decode suffix among the
    /// requests that were in flight when the engine died.
    pub steps_lost: usize,
    /// In-flight requests replayed (re-prefilled and re-decoded to their
    /// pre-fault position).
    pub requests_replayed: usize,
    /// Prompt tokens re-prefilled during replay.
    pub prefill_tokens_replayed: usize,
    /// Already-emitted decode tokens re-derived during replay.
    pub decode_tokens_replayed: usize,
    /// Wall-clock seconds spent in recovery proper (engine rebuild +
    /// re-prefill); the replayed decode steps overlap new work and are
    /// accounted by `steps_lost` instead.
    pub recovery_seconds: f64,
    /// Replica-level failovers: replicas a router drained after their
    /// recovery budget was exhausted (or they poisoned), with their live
    /// requests re-routed to healthy replicas. `0` on a single engine.
    pub failovers: usize,
    /// Requests re-routed to a different replica by a failover (each is
    /// replayed there to a bit-identical stream).
    pub requests_rerouted: usize,
}

impl RecoveryStats {
    /// Accumulates another recovery episode's counters into this one.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.faults += other.faults;
        self.steps_lost += other.steps_lost;
        self.requests_replayed += other.requests_replayed;
        self.prefill_tokens_replayed += other.prefill_tokens_replayed;
        self.decode_tokens_replayed += other.decode_tokens_replayed;
        self.recovery_seconds += other.recovery_seconds;
        self.failovers += other.failovers;
        self.requests_rerouted += other.requests_rerouted;
    }
}

/// Aggregate results of a serving simulation.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request outcomes, in arrival order.
    pub requests: Vec<RequestStats>,
    /// Total simulated time until the last request finished.
    pub makespan: Seconds,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Mean decode batch occupancy over executed steps.
    pub mean_decode_batch: f64,
    /// Peak decode batch occupancy (most slots simultaneously live) — the
    /// concurrency the KV capacity actually supported. `0` when the run
    /// does not track it (the analytical simulator).
    pub peak_decode_batch: usize,
    /// Minimum free pages the decode tier's KV admission ledger observed
    /// (headroom at peak occupancy). `0` when no page budget applies
    /// (slab-backed decode, or a paged tier with no
    /// `kv_position_budget`).
    pub kv_pages_free: usize,
    /// Peak count of KV pages mapped by more than one live request
    /// (copy-on-write prompt-prefix sharing). `0` on a slab-backed tier.
    pub kv_pages_shared: usize,
    /// Fault/recovery accounting (all-zero on a fault-free run).
    pub recovery: RecoveryStats,
}

impl ServingReport {
    /// Assembles a report from per-request outcomes and decode-tier
    /// counters, deriving the makespan and a well-defined mean occupancy
    /// (`0.0`, not NaN, when no steps executed). Shared by the analytical
    /// simulator and the measured runtime scheduler so both report
    /// identically shaped statistics.
    #[must_use]
    pub fn new(requests: Vec<RequestStats>, decode_steps: usize, occupancy_sum: usize) -> Self {
        let makespan = requests.iter().map(|r| r.finished).fold(0.0, f64::max);
        let mean_decode_batch = if decode_steps == 0 {
            0.0
        } else {
            occupancy_sum as f64 / decode_steps as f64
        };
        ServingReport {
            requests,
            makespan,
            decode_steps,
            mean_decode_batch,
            peak_decode_batch: 0,
            kv_pages_free: 0,
            kv_pages_shared: 0,
            recovery: RecoveryStats::default(),
        }
    }

    /// Attaches fault/recovery accounting (builder-style; [`new`] reports
    /// a fault-free run).
    ///
    /// [`new`]: ServingReport::new
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryStats) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attaches the peak decode-slot occupancy (builder-style).
    #[must_use]
    pub fn with_peak_batch(mut self, peak: usize) -> Self {
        self.peak_decode_batch = peak;
        self
    }

    /// Attaches paged-KV pool accounting (builder-style): minimum free
    /// pages under the admission budget and the peak shared-page count.
    #[must_use]
    pub fn with_kv_pages(mut self, free: usize, shared: usize) -> Self {
        self.kv_pages_free = free;
        self.kv_pages_shared = shared;
        self
    }

    /// Mean end-to-end latency.
    #[must_use]
    pub fn mean_latency(&self) -> Seconds {
        let total: f64 = self.requests.iter().map(RequestStats::latency).sum();
        total / self.requests.len() as f64
    }

    /// A latency percentile in `[0, 100]`, by the nearest-rank definition:
    /// the smallest latency `l` such that at least `p%` of requests have
    /// latency `<= l` — i.e. the sorted value at rank `⌈p/100 · n⌉`
    /// (1-based; `p = 0` maps to the minimum).
    ///
    /// # Panics
    ///
    /// Panics if there are no requests or `p` is out of range.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Seconds {
        percentile(self.requests.iter().map(RequestStats::latency).collect(), p)
    }

    /// A time-to-first-token percentile (nearest-rank, like
    /// [`ServingReport::latency_percentile`]): the queue-plus-prefill delay
    /// before a request's first token exists.
    ///
    /// # Panics
    ///
    /// Panics if there are no requests or `p` is out of range.
    #[must_use]
    pub fn ttft_percentile(&self, p: f64) -> Seconds {
        percentile(self.requests.iter().map(RequestStats::ttft).collect(), p)
    }

    /// A per-output-token time percentile (nearest-rank) over the requests
    /// that generated at least two tokens — the streaming rate after the
    /// first token.
    ///
    /// # Panics
    ///
    /// Panics if no request generated two or more tokens, or `p` is out of
    /// range.
    #[must_use]
    pub fn tpot_percentile(&self, p: f64) -> Seconds {
        percentile(self.requests.iter().filter_map(RequestStats::tpot).collect(), p)
    }

    /// The first arrival time — the start of the interval over which
    /// throughput is meaningful (idle time before any work exists says
    /// nothing about the system).
    #[must_use]
    pub fn first_arrival(&self) -> Seconds {
        self.requests.iter().map(|r| r.arrival).fold(f64::INFINITY, f64::min)
    }

    /// Generated tokens per second, measured from the first arrival to the
    /// last completion (not from t = 0, which would understate throughput
    /// for traces that start late). For per-request generation lengths that
    /// vary, pass the actual total via
    /// [`ServingReport::generated_throughput`].
    #[must_use]
    pub fn throughput_tokens_per_sec(&self, gen_len: usize) -> f64 {
        self.generated_throughput(self.requests.len() * gen_len)
    }

    /// [`ServingReport::throughput_tokens_per_sec`] for an explicit total
    /// token count.
    #[must_use]
    pub fn generated_throughput(&self, total_tokens: usize) -> f64 {
        total_tokens as f64 / (self.makespan - self.first_arrival())
    }
}

/// Nearest-rank percentile over `values` (see
/// [`ServingReport::latency_percentile`] for the definition).
///
/// # Panics
///
/// Panics if `values` is empty or `p` is out of `[0, 100]`.
fn percentile(mut values: Vec<f64>, p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    assert!(!values.is_empty(), "no samples for percentile");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
    values[rank.max(1) - 1]
}

/// Simulates serving `arrivals` (absolute arrival times, ascending) through
/// the two-tier system for `model`.
///
/// # Panics
///
/// Panics if `arrivals` is empty or not sorted ascending.
#[must_use]
pub fn simulate(model: &ModelConfig, cfg: &ServingConfig, arrivals: &[Seconds]) -> ServingReport {
    assert!(!arrivals.is_empty(), "no arrivals to simulate");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival times must be ascending"
    );

    // Phase costs from the analytical model. Decode step time depends on
    // the instantaneous batch; precompute per occupancy 1..=max.
    let prefill_layout =
        planner::prefill_layout(model, &cfg.prefill_machine, 1, cfg.input_len, cfg.weight_dtype);
    let prefill_time = estimate(
        &cfg.prefill_machine,
        model,
        &prefill_layout,
        &PhaseSpec::prefill(1, cfg.input_len),
        cfg.weight_dtype,
    )
    .step_time;
    let context = cfg.input_len + cfg.gen_len / 2;
    let step_time: Vec<Seconds> = (0..=cfg.max_decode_batch)
        .map(|b| {
            if b == 0 {
                0.0
            } else {
                let layout = planner::decode_layout_for_batch(model, &cfg.decode_machine, b);
                estimate(
                    &cfg.decode_machine,
                    model,
                    &layout,
                    &PhaseSpec::decode(b, context),
                    cfg.weight_dtype,
                )
                .step_time
            }
        })
        .collect();

    // --- prefill tier: FIFO, one prompt at a time -------------------------
    let mut prefilled_at = Vec::with_capacity(arrivals.len());
    let mut free_at: Seconds = 0.0;
    for &a in arrivals {
        let start = a.max(free_at);
        free_at = start + prefill_time;
        prefilled_at.push(free_at);
    }

    // --- decode tier: continuous stepping with admission at boundaries ----
    #[derive(Clone, Copy)]
    struct InFlight {
        idx: usize,
        remaining: usize,
    }
    let mut pending: std::collections::VecDeque<usize> = (0..arrivals.len()).collect();
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut finished_at = vec![0.0f64; arrivals.len()];
    let mut now: Seconds = 0.0;
    let mut steps = 0usize;
    let mut occupancy_sum = 0usize;
    if cfg.gen_len == 0 {
        // Degenerate: nothing to decode — requests finish as they prefill.
        finished_at.copy_from_slice(&prefilled_at);
        pending.clear();
    }
    while !pending.is_empty() || !in_flight.is_empty() {
        // Admit every request already prefilled, up to the cap.
        while in_flight.len() < cfg.max_decode_batch {
            match pending.front() {
                Some(&idx) if prefilled_at[idx] <= now => {
                    pending.pop_front();
                    in_flight.push(InFlight { idx, remaining: cfg.gen_len });
                }
                _ => break,
            }
        }
        if in_flight.is_empty() {
            // Idle until the next prefill completes.
            let next = pending.front().map(|&i| prefilled_at[i]).expect("pending non-empty");
            now = now.max(next);
            continue;
        }
        let b = in_flight.len();
        now += step_time[b];
        steps += 1;
        occupancy_sum += b;
        for r in &mut in_flight {
            r.remaining -= 1;
            if r.remaining == 0 {
                finished_at[r.idx] = now;
            }
        }
        in_flight.retain(|r| r.remaining > 0);
    }

    let requests: Vec<RequestStats> = arrivals
        .iter()
        .zip(&prefilled_at)
        .zip(&finished_at)
        .map(|((&arrival, &prefilled), &finished)| RequestStats {
            arrival,
            prefilled,
            finished,
            generated: cfg.gen_len,
        })
        .collect();
    ServingReport::new(requests, steps, occupancy_sum)
}

/// A tiny splitmix64 PRNG — keeps the workspace dependency-light while
/// making every trace seeded-deterministic.
#[derive(Debug, Clone)]
struct Rng64 {
    state: u64,
}

impl Rng64 {
    fn new(seed: u64) -> Self {
        Rng64 { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given rate (mean `1 / rate`).
    fn exp(&mut self, rate: f64) -> f64 {
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Standard normal via Box–Muller.
    fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Evenly spaced arrivals at `rate` requests/second for `n` requests —
/// a deterministic open-loop load for reproducible experiments.
#[must_use]
pub fn uniform_arrivals(n: usize, rate: f64) -> Vec<Seconds> {
    (0..n).map(|i| i as f64 / rate).collect()
}

/// Seeded Poisson-process arrivals at `rate` requests/second — bursty
/// open-loop load with exponential inter-arrival gaps, deterministic for a
/// given seed.
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn poisson_arrivals(n: usize, rate: f64, seed: u64) -> Vec<Seconds> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = Rng64::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.exp(rate);
            t
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Open-loop load generation (trace-driven serving).
// ---------------------------------------------------------------------------

/// How request arrival instants are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Evenly spaced at `rate` requests/second (deterministic).
    Uniform {
        /// Requests per second.
        rate: f64,
    },
    /// Homogeneous Poisson process (exponential gaps).
    Poisson {
        /// Requests per second.
        rate: f64,
    },
    /// Markov-modulated Poisson: alternates between a calm and a burst
    /// state with exponentially distributed dwell times — the classic
    /// bursty open-loop load (bursts overload the server, calm periods let
    /// it drain).
    Bursty {
        /// Requests per second in the calm state.
        calm_rate: f64,
        /// Requests per second inside a burst.
        burst_rate: f64,
        /// Mean seconds spent in each state before switching.
        mean_dwell: f64,
    },
    /// Inhomogeneous Poisson with a sinusoidal (diurnal) rate
    /// `λ(t) = mean_rate · (1 + swing · sin(2πt / period))`, drawn by
    /// thinning against the peak rate.
    Diurnal {
        /// Mean requests per second over a full period.
        mean_rate: f64,
        /// Relative peak-to-mean swing in `[0, 1)`.
        swing: f64,
        /// Seconds per day (one full sinusoid).
        period: f64,
    },
}

/// A per-request length distribution (prompt or output tokens).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDist {
    /// Every request the same length.
    Fixed(usize),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Shortest length.
        lo: usize,
        /// Longest length.
        hi: usize,
    },
    /// Log-normal with the given median, clamped to `[1, max]` — the
    /// heavy-tailed shape real prompt/response lengths follow.
    LogNormal {
        /// Median length in tokens.
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
        /// Hard upper clamp.
        max: usize,
    },
}

impl LengthDist {
    fn draw(self, rng: &mut Rng64) -> usize {
        match self {
            LengthDist::Fixed(n) => n.max(1),
            LengthDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform length bounds inverted");
                rng.range(lo.max(1), hi.max(1))
            }
            LengthDist::LogNormal { median, sigma, max } => {
                assert!(median >= 1.0 && sigma >= 0.0, "log-normal parameters out of range");
                let v = (median.ln() + sigma * rng.normal()).exp().round() as usize;
                v.clamp(1, max.max(1))
            }
        }
    }
}

/// The full description of an open-loop workload: arrival process, ragged
/// prompt/output length distributions, and a priority mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Arrival instants.
    pub process: ArrivalProcess,
    /// Prompt-length distribution.
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub output: LengthDist,
    /// Fraction of requests in [`Priority::High`].
    pub high_fraction: f64,
    /// Fraction of requests in [`Priority::Low`]; the remainder is
    /// [`Priority::Normal`].
    pub low_fraction: f64,
}

/// One request of an [`ArrivalTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRequest {
    /// Absolute arrival time.
    pub arrival: Seconds,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Tokens to generate.
    pub gen_len: usize,
    /// Scheduling class.
    pub priority: Priority,
}

/// A seeded-deterministic open-loop request trace, sorted by arrival —
/// the load generator behind both the overload simulator
/// ([`simulate_trace`]) and the measured scheduler benches. Generating
/// 10⁵–10⁶ requests is cheap (a few PRNG draws per request).
#[derive(Debug, Clone)]
pub struct ArrivalTrace {
    /// Requests in arrival order.
    pub requests: Vec<TraceRequest>,
}

impl ArrivalTrace {
    /// Draws `n` requests from `spec`, deterministically for a given
    /// `seed` (same seed, same trace — byte for byte).
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates, a negative dwell/period, or a
    /// priority mix outside `[0, 1]`.
    #[must_use]
    pub fn generate(spec: &TraceSpec, n: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&spec.high_fraction)
                && (0.0..=1.0).contains(&spec.low_fraction)
                && spec.high_fraction + spec.low_fraction <= 1.0,
            "priority mix must be fractions summing to <= 1"
        );
        let mut rng = Rng64::new(seed);
        let mut t = 0.0f64;
        // Bursty-state bookkeeping (unused by the other processes).
        let mut in_burst = false;
        let mut dwell_end = match spec.process {
            ArrivalProcess::Bursty { mean_dwell, .. } => {
                assert!(mean_dwell > 0.0, "mean dwell must be positive");
                rng.exp(1.0 / mean_dwell)
            }
            _ => f64::INFINITY,
        };
        let mut requests = Vec::with_capacity(n);
        for _ in 0..n {
            match spec.process {
                ArrivalProcess::Uniform { rate } => {
                    assert!(rate > 0.0, "arrival rate must be positive");
                    t += 1.0 / rate;
                }
                ArrivalProcess::Poisson { rate } => {
                    assert!(rate > 0.0, "arrival rate must be positive");
                    t += rng.exp(rate);
                }
                ArrivalProcess::Bursty { calm_rate, burst_rate, mean_dwell } => {
                    assert!(calm_rate > 0.0 && burst_rate > 0.0, "rates must be positive");
                    loop {
                        let rate = if in_burst { burst_rate } else { calm_rate };
                        let gap = rng.exp(rate);
                        if t + gap <= dwell_end {
                            t += gap;
                            break;
                        }
                        // Dwell expired before the next arrival: switch
                        // state at the boundary and redraw from there.
                        t = dwell_end;
                        in_burst = !in_burst;
                        dwell_end = t + rng.exp(1.0 / mean_dwell);
                    }
                }
                ArrivalProcess::Diurnal { mean_rate, swing, period } => {
                    assert!(mean_rate > 0.0 && period > 0.0, "rate and period must be positive");
                    assert!((0.0..1.0).contains(&swing), "swing must be in [0, 1)");
                    let peak = mean_rate * (1.0 + swing);
                    loop {
                        t += rng.exp(peak);
                        let lambda = mean_rate
                            * (1.0 + swing * (std::f64::consts::TAU * t / period).sin());
                        if rng.uniform() * peak <= lambda {
                            break; // thinning: accept with prob λ(t)/λmax
                        }
                    }
                }
            }
            let prompt_len = spec.prompt.draw(&mut rng);
            let gen_len = spec.output.draw(&mut rng);
            let u = rng.uniform();
            let priority = if u < spec.high_fraction {
                Priority::High
            } else if u < spec.high_fraction + spec.low_fraction {
                Priority::Low
            } else {
                Priority::Normal
            };
            requests.push(TraceRequest { arrival: t, prompt_len, gen_len, priority });
        }
        ArrivalTrace { requests }
    }

    /// Arrival instants alone (feeds the fixed-shape [`simulate`]).
    #[must_use]
    pub fn arrivals(&self) -> Vec<Seconds> {
        self.requests.iter().map(|r| r.arrival).collect()
    }

    /// Total output tokens the trace asks for.
    #[must_use]
    pub fn offered_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.gen_len).sum()
    }

    /// Seconds between the first and last arrival.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.arrival - a.arrival,
            _ => 0.0,
        }
    }

    /// Offered load in generated tokens per second over the trace span.
    #[must_use]
    pub fn offered_token_rate(&self) -> f64 {
        self.offered_tokens() as f64 / self.duration().max(f64::MIN_POSITIVE)
    }

    /// Requests in the given class.
    #[must_use]
    pub fn class_count(&self, class: Priority) -> usize {
        self.requests.iter().filter(|r| r.priority == class).count()
    }
}

// ---------------------------------------------------------------------------
// SLO-aware overload scheduling (simulated time).
// ---------------------------------------------------------------------------

/// Admission/scheduling policy of the overload simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Waiting requests (arrived, not yet in a decode slot) the scheduler
    /// tolerates before shedding; `None` queues without bound. Shedding
    /// removes the *newest lowest-priority* waiting request — the one
    /// whose loss costs the least committed work.
    pub queue_limit: Option<usize>,
    /// Per-class TTFT deadline (indexed by [`Priority::index`]): a waiting
    /// request that can no longer meet its class deadline even if admitted
    /// immediately is shed instead of served uselessly late. `None`
    /// disables the deadline for that class.
    pub ttft_deadline: [Option<Seconds>; 3],
    /// Preempt strictly-lower-priority in-flight requests when a higher
    /// class is waiting and no slot is free. The victim re-enters its
    /// class queue and later *replays* (re-prefill plus one decode step
    /// per already-emitted token) before producing new tokens — exactly
    /// the runtime's evict-and-replay cost.
    pub preemption: bool,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy { queue_limit: None, ttft_deadline: [None; 3], preemption: true }
    }
}

/// Why the scheduler refused a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedReason {
    /// The waiting queue was at its limit.
    QueueFull {
        /// Requests waiting when the shed happened.
        waiting: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The request could no longer meet its class TTFT deadline.
    DeadlineExpired {
        /// Best-case TTFT at the moment of shedding.
        projected_ttft: Seconds,
        /// The class deadline it missed.
        deadline: Seconds,
    },
}

/// One shed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedRecord {
    /// Index into the trace.
    pub index: usize,
    /// The request's class.
    pub priority: Priority,
    /// Why it was shed.
    pub reason: ShedReason,
}

/// Everything a trace-driven overload run produces.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Stats for the *completed* requests (shed requests have no latency),
    /// in trace order.
    pub report: ServingReport,
    /// Trace index of each row of `report.requests`.
    pub completed: Vec<usize>,
    /// Class of each row of `report.requests`.
    pub priorities: Vec<Priority>,
    /// Requests refused under overload, with typed reasons.
    pub shed: Vec<ShedRecord>,
    /// Preemptions performed (victims re-queued and replayed).
    pub preemptions: usize,
    /// Decode tokens re-derived during preemption replays (pure overhead).
    pub replayed_tokens: usize,
    /// The serving capacity ceiling in generated tokens/second: the slower
    /// of the full-batch decode rate and the prefill tier's request rate
    /// times the mean generation length. Goodput cannot exceed it.
    pub capacity_tokens_per_sec: f64,
}

impl OverloadReport {
    /// Useful work completed per second: generated tokens of *completed*
    /// requests over the span from first arrival to last completion.
    /// Tokens burned on shed requests or preemption replays don't count —
    /// that is what distinguishes goodput from throughput.
    #[must_use]
    pub fn goodput_tokens_per_sec(&self) -> f64 {
        let tokens: usize = self.report.requests.iter().map(|r| r.generated).sum();
        self.report.generated_throughput(tokens)
    }

    /// Goodput as a fraction of the capacity ceiling (the offered-capacity
    /// utilization an overloaded-but-healthy scheduler should keep high).
    #[must_use]
    pub fn goodput_ratio(&self) -> f64 {
        self.goodput_tokens_per_sec() / self.capacity_tokens_per_sec
    }

    /// Completed requests in `class`.
    #[must_use]
    pub fn class_completed(&self, class: Priority) -> usize {
        self.priorities.iter().filter(|&&p| p == class).count()
    }

    /// Shed requests in `class`.
    #[must_use]
    pub fn class_shed(&self, class: Priority) -> usize {
        self.shed.iter().filter(|s| s.priority == class).count()
    }

    /// Nearest-rank TTFT percentile over the completed requests of one
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if the class completed no requests or `p` is out of range.
    #[must_use]
    pub fn class_ttft_percentile(&self, class: Priority, p: f64) -> Seconds {
        let ttfts: Vec<f64> = self
            .report
            .requests
            .iter()
            .zip(&self.priorities)
            .filter(|&(_, &c)| c == class)
            .map(|(r, _)| r.ttft())
            .collect();
        percentile(ttfts, p)
    }

    /// Nearest-rank TPOT percentile over one class's completed requests
    /// that generated at least two tokens.
    ///
    /// # Panics
    ///
    /// Panics if the class has no such requests or `p` is out of range.
    #[must_use]
    pub fn class_tpot_percentile(&self, class: Priority, p: f64) -> Seconds {
        let tpots: Vec<f64> = self
            .report
            .requests
            .iter()
            .zip(&self.priorities)
            .filter(|&(_, &c)| c == class)
            .filter_map(|(r, _)| r.tpot())
            .collect();
        percentile(tpots, p)
    }
}

/// A request occupying a decode slot of the overload simulator.
#[derive(Clone, Copy)]
struct SimSlot {
    idx: usize,
    /// When its (re-)prefill completes and the row starts decoding.
    ready_at: Seconds,
    /// Already-emitted tokens to re-derive before new ones (preemption
    /// replay; each costs a decode step and emits nothing).
    replay: usize,
}

/// Analytic phase costs of the overload simulator, cached per shape.
struct SimCosts {
    model: ModelConfig,
    cfg: ServingConfig,
    prefill_cache: HashMap<usize, Seconds>,
    /// Decode step time per batch occupancy `0..=max_decode_batch`.
    step_time: Vec<Seconds>,
}

impl SimCosts {
    fn new(model: &ModelConfig, cfg: &ServingConfig, trace: &ArrivalTrace) -> Self {
        // Characteristic KV context for decode-step pricing: the trace's
        // mean prompt plus half its mean generation.
        let n = trace.requests.len().max(1);
        let mean_prompt: usize =
            trace.requests.iter().map(|r| r.prompt_len).sum::<usize>() / n;
        let mean_gen: usize = trace.requests.iter().map(|r| r.gen_len).sum::<usize>() / n;
        let context = (mean_prompt + mean_gen / 2).max(1);
        let step_time: Vec<Seconds> = (0..=cfg.max_decode_batch)
            .map(|b| {
                if b == 0 {
                    0.0
                } else {
                    let layout = planner::decode_layout_for_batch(model, &cfg.decode_machine, b);
                    estimate(
                        &cfg.decode_machine,
                        model,
                        &layout,
                        &PhaseSpec::decode(b, context),
                        cfg.weight_dtype,
                    )
                    .step_time
                }
            })
            .collect();
        SimCosts {
            model: model.clone(),
            cfg: cfg.clone(),
            prefill_cache: HashMap::new(),
            step_time,
        }
    }

    fn prefill_time(&mut self, prompt_len: usize) -> Seconds {
        let model = &self.model;
        let cfg = &self.cfg;
        *self.prefill_cache.entry(prompt_len).or_insert_with(|| {
            let layout = planner::prefill_layout(
                model,
                &cfg.prefill_machine,
                1,
                prompt_len,
                cfg.weight_dtype,
            );
            estimate(
                &cfg.prefill_machine,
                model,
                &layout,
                &PhaseSpec::prefill(1, prompt_len),
                cfg.weight_dtype,
            )
            .step_time
        })
    }
}

/// Serves an [`ArrivalTrace`] through the two-tier system in simulated
/// time with SLO-aware scheduling: priority-ordered admission and prefill,
/// optional preemption of lower classes, TTFT-deadline and queue-depth
/// shedding. Costs come from the same analytical model as [`simulate`],
/// so an overload run's numbers stay consistent with every figure. Handles
/// 10⁵–10⁶-request traces in seconds — the loop is O(steps · batch).
///
/// Scheduling contract (all deterministic):
///
/// * waiting requests are admitted highest class first, FIFO within a
///   class; the serial prefill tier serves admissions in that same order;
/// * with [`OverloadPolicy::preemption`], a waiting request whose class
///   strictly exceeds the lowest in-flight class preempts that slot (the
///   victim with the most remaining work loses, so the least replay is
///   wasted); victims re-enter their class queue *front* and replay;
/// * a waiting request that can no longer meet its class TTFT deadline is
///   shed ([`ShedReason::DeadlineExpired`]); when the waiting count
///   exceeds [`OverloadPolicy::queue_limit`], the newest request of the
///   lowest waiting class is shed ([`ShedReason::QueueFull`]) — typed
///   shed records instead of unbounded queue growth.
///
/// # Panics
///
/// Panics if the trace is empty or not sorted by arrival.
#[must_use]
#[allow(clippy::too_many_lines)] // one function = one faithful serve loop.
pub fn simulate_trace(
    model: &ModelConfig,
    cfg: &ServingConfig,
    trace: &ArrivalTrace,
    policy: &OverloadPolicy,
) -> OverloadReport {
    let reqs = &trace.requests;
    assert!(!reqs.is_empty(), "no requests to simulate");
    assert!(
        reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "trace must be sorted by arrival"
    );
    let mut costs = SimCosts::new(model, cfg, trace);
    let cap = cfg.max_decode_batch;
    assert!(cap > 0, "decode batch cap must be positive");

    let n = reqs.len();
    let mut prefilled_at = vec![f64::NAN; n];
    let mut finished_at = vec![f64::NAN; n];
    let mut emitted = vec![0usize; n];
    // Waiting queues per class, highest drained first.
    let mut waiting: [VecDeque<usize>; 3] = Default::default();
    let mut shed: Vec<ShedRecord> = Vec::new();
    let mut slots: Vec<Option<SimSlot>> = vec![None; cap];
    let mut now: Seconds = reqs[0].arrival;
    let mut prefill_free: Seconds = now;
    let mut cursor = 0usize;
    let mut steps = 0usize;
    let mut occupancy_sum = 0usize;
    let mut preemptions = 0usize;
    let mut replayed_tokens = 0usize;
    let mut outstanding = n;

    while outstanding > 0 {
        // Arrivals up to `now` join their class queue.
        while cursor < n && reqs[cursor].arrival <= now {
            waiting[reqs[cursor].priority.index()].push_back(cursor);
            cursor += 1;
        }

        // Deadline shedding: within a class the queue is FIFO by arrival,
        // so the front is (near-)stalest; shed from the front while the
        // best-case TTFT (admitted and prefilled right now) already misses
        // the class deadline.
        for class in Priority::ALL {
            let Some(deadline) = policy.ttft_deadline[class.index()] else { continue };
            while let Some(&idx) = waiting[class.index()].front() {
                let projected = now.max(prefill_free) + costs.prefill_time(reqs[idx].prompt_len)
                    - reqs[idx].arrival;
                if projected <= deadline {
                    break;
                }
                waiting[class.index()].pop_front();
                shed.push(ShedRecord {
                    index: idx,
                    priority: class,
                    reason: ShedReason::DeadlineExpired { projected_ttft: projected, deadline },
                });
                outstanding -= 1;
            }
        }

        // Queue-depth shedding: newest of the lowest waiting class first.
        if let Some(limit) = policy.queue_limit {
            let mut total: usize = waiting.iter().map(VecDeque::len).sum();
            while total > limit {
                let class =
                    Priority::ALL.into_iter().find(|c| !waiting[c.index()].is_empty());
                let Some(class) = class else { break };
                let Some(idx) = waiting[class.index()].pop_back() else { break };
                shed.push(ShedRecord {
                    index: idx,
                    priority: class,
                    reason: ShedReason::QueueFull { waiting: total, limit },
                });
                outstanding -= 1;
                total -= 1;
            }
        }

        // Admission, highest class first. Preemption frees a slot when a
        // strictly lower class holds one.
        while let Some(class) = Priority::ALL
            .into_iter()
            .rev()
            .find(|c| !waiting[c.index()].is_empty())
        {
            let slot = match slots.iter().position(Option::is_none) {
                Some(s) => s,
                None if policy.preemption => {
                    // Victim: the lowest-class slot, strictly below the
                    // admitted class; among equals, the most remaining
                    // work (least already-emitted tokens wasted on
                    // replay... the *least* progress means the least
                    // replay, so prefer the least-emitted victim).
                    let victim = slots
                        .iter()
                        .enumerate()
                        .filter_map(|(s, o)| o.map(|sl| (s, sl)))
                        .filter(|&(_, sl)| reqs[sl.idx].priority < class)
                        .min_by_key(|&(s, sl)| {
                            (reqs[sl.idx].priority, emitted[sl.idx], s)
                        });
                    let Some((s, sl)) = victim else { break };
                    // Re-queue at the front of its class (it keeps FIFO
                    // standing) with its recording intact; re-admission
                    // replays the emitted suffix.
                    waiting[reqs[sl.idx].priority.index()].push_front(sl.idx);
                    slots[s] = None;
                    preemptions += 1;
                    s
                }
                None => break,
            };
            let Some(idx) = waiting[class.index()].pop_front() else { break };
            let start = now.max(prefill_free);
            let done = start + costs.prefill_time(reqs[idx].prompt_len);
            prefill_free = done;
            let replay = emitted[idx].saturating_sub(1);
            if emitted[idx] == 0 {
                // First admission: the first token comes from the prefill
                // logits, so TTFT is the prefill completion.
                prefilled_at[idx] = done;
                emitted[idx] = 1;
            } else {
                // Re-admission after preemption: re-prefill re-derives
                // token 0; the emitted decode suffix replays step by step.
                replayed_tokens += replay;
            }
            if reqs[idx].gen_len <= 1 {
                finished_at[idx] = done;
                outstanding -= 1;
                slots[slot] = None;
                continue;
            }
            slots[slot] = Some(SimSlot { idx, ready_at: done, replay });
        }

        // Nothing decodable? Jump to the next event (a slot becoming
        // ready, or the next arrival).
        let ready = slots.iter().flatten().filter(|s| s.ready_at <= now).count();
        if ready == 0 {
            let next_ready = slots
                .iter()
                .flatten()
                .map(|s| s.ready_at)
                .fold(f64::INFINITY, f64::min);
            let next_arrival =
                if cursor < n { reqs[cursor].arrival } else { f64::INFINITY };
            let next = next_ready.min(next_arrival);
            if !next.is_finite() {
                break; // queues empty, slots empty: done (or all shed).
            }
            now = next.max(now);
            continue;
        }

        // One decode step over the ready rows.
        now += costs.step_time[ready];
        steps += 1;
        occupancy_sum += ready;
        for slot in &mut slots {
            let Some(s) = slot else { continue };
            if s.ready_at > now - costs.step_time[ready] {
                continue; // still prefilling during this step
            }
            let idx = s.idx;
            if s.replay > 0 {
                s.replay -= 1; // re-derives a recorded token, emits nothing
                continue;
            }
            emitted[idx] += 1;
            if emitted[idx] == reqs[idx].gen_len {
                finished_at[idx] = now;
                outstanding -= 1;
                *slot = None;
            }
        }
    }

    // Capacity ceiling: the slower of full-batch decode and the serial
    // prefill tier (requests/second × mean generation length).
    let mean_gen = trace.offered_tokens() as f64 / n as f64;
    let mean_prefill = reqs
        .iter()
        .map(|r| costs.prefill_time(r.prompt_len))
        .sum::<f64>()
        / n as f64;
    let decode_ceiling = cap as f64 / costs.step_time[cap];
    let prefill_ceiling = mean_gen / mean_prefill;
    let capacity_tokens_per_sec = decode_ceiling.min(prefill_ceiling);

    let mut completed = Vec::new();
    let mut priorities = Vec::new();
    let mut stats = Vec::new();
    for (idx, r) in reqs.iter().enumerate() {
        if finished_at[idx].is_nan() {
            continue;
        }
        completed.push(idx);
        priorities.push(r.priority);
        stats.push(RequestStats {
            arrival: r.arrival,
            prefilled: prefilled_at[idx],
            finished: finished_at[idx],
            generated: r.gen_len,
        });
    }
    debug_assert_eq!(completed.len() + shed.len(), n, "every request completes or sheds");
    OverloadReport {
        report: ServingReport::new(stats, steps, occupancy_sum),
        completed,
        priorities,
        shed,
        preemptions,
        replayed_tokens,
        capacity_tokens_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> (ModelConfig, ServingConfig) {
        let model = ModelConfig::palm_540b_padded();
        let cfg = ServingConfig {
            prefill_machine: Machine::tpu_v4_slice(64).unwrap(),
            decode_machine: Machine::tpu_v4_slice(64).unwrap(),
            max_decode_batch: 64,
            input_len: 64,
            gen_len: 64,
            weight_dtype: DType::Int8,
        };
        (model, cfg)
    }

    #[test]
    fn single_request_matches_phase_sum() {
        let (model, cfg) = config();
        let report = simulate(&model, &cfg, &[0.0]);
        assert_eq!(report.requests.len(), 1);
        let r = report.requests[0];
        assert!(r.prefilled > 0.0);
        assert!(r.finished > r.prefilled);
        // 64 decode steps at batch 1.
        assert_eq!(report.decode_steps, 64);
        assert!((report.mean_decode_batch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_load_fills_the_decode_batch() {
        let (model, cfg) = config();
        // A burst of 128 simultaneous requests: the decode tier should run
        // near its batch cap.
        let arrivals = vec![0.0; 128];
        let report = simulate(&model, &cfg, &arrivals);
        assert!(report.mean_decode_batch > 32.0, "occupancy {}", report.mean_decode_batch);
        assert!(report.latency_percentile(99.0) >= report.latency_percentile(50.0));
    }

    #[test]
    fn batching_improves_throughput_at_bounded_latency_cost() {
        // The paper's point: decode batch 64 costs little latency but
        // multiplies throughput.
        let (model, cfg) = config();
        let mut solo = cfg.clone();
        solo.max_decode_batch = 1;
        // A saturating burst, so the serial tier cannot hide behind idle
        // time between arrivals.
        let arrivals = vec![0.0; 32];
        let batched = simulate(&model, &cfg, &arrivals);
        let serial = simulate(&model, &solo, &arrivals);
        let tput_b = batched.throughput_tokens_per_sec(cfg.gen_len);
        let tput_s = serial.throughput_tokens_per_sec(cfg.gen_len);
        assert!(tput_b > 3.0 * tput_s, "batched {tput_b} vs serial {tput_s}");
        assert!(batched.mean_latency() < serial.mean_latency());
    }

    #[test]
    fn light_load_latency_close_to_paper_chatbot() {
        // At low arrival rate each request sees roughly the 1.9s chatbot
        // turn of Section 1 (we use a 64-token prompt + 64 generated).
        let (model, cfg) = config();
        let arrivals = uniform_arrivals(4, 0.2); // one request per 5s
        let report = simulate(&model, &cfg, &arrivals);
        let mean = report.mean_latency();
        assert!(mean > 0.3 && mean < 3.0, "mean latency {mean}");
    }

    #[test]
    fn throughput_saturates_with_offered_load() {
        let (model, cfg) = config();
        let low = simulate(&model, &cfg, &uniform_arrivals(16, 1.0));
        let high = simulate(&model, &cfg, &uniform_arrivals(256, 1e6));
        let t_low = low.throughput_tokens_per_sec(cfg.gen_len);
        let t_high = high.throughput_tokens_per_sec(cfg.gen_len);
        assert!(t_high > t_low);
        // The cap: batch-64 decode step bounds tokens/sec.
        let (model2, _) = config();
        let layout = planner::decode_layout_for_batch(&model2, &cfg.decode_machine, 64);
        let step = estimate(
            &cfg.decode_machine,
            &model2,
            &layout,
            &PhaseSpec::decode(64, cfg.input_len + cfg.gen_len / 2),
            cfg.weight_dtype,
        )
        .step_time;
        let cap = 64.0 / step;
        assert!(t_high <= cap * 1.05, "throughput {t_high} above cap {cap}");
        assert!(t_high > cap * 0.5, "throughput {t_high} far below cap {cap}");
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_rate_accurate() {
        let arr = poisson_arrivals(2000, 4.0, 9);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ~ 1/rate within 10%.
        let mean_gap = arr.last().unwrap() / 2000.0;
        assert!((mean_gap - 0.25).abs() < 0.025, "mean gap {mean_gap}");
        // Deterministic per seed, different across seeds.
        assert_eq!(arr, poisson_arrivals(2000, 4.0, 9));
        assert_ne!(arr, poisson_arrivals(2000, 4.0, 10));
    }

    #[test]
    fn bursty_load_raises_tail_latency() {
        // Poisson burstiness should not lower the p99 below the uniform
        // schedule's at the same rate.
        let (model, cfg) = config();
        let uni = simulate(&model, &cfg, &uniform_arrivals(64, 8.0));
        let poi = simulate(&model, &cfg, &poisson_arrivals(64, 8.0, 3));
        assert!(poi.latency_percentile(99.0) >= uni.latency_percentile(99.0) * 0.9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_arrivals_rejected() {
        let (model, cfg) = config();
        let _ = simulate(&model, &cfg, &[1.0, 0.5]);
    }

    fn fixture_report(lats: &[f64]) -> ServingReport {
        let requests = lats
            .iter()
            .map(|&l| RequestStats { arrival: 0.0, prefilled: l / 2.0, finished: l, generated: 8 })
            .collect();
        ServingReport::new(requests, 0, 0)
    }

    #[test]
    fn percentile_is_true_nearest_rank() {
        // Hand-checked 4-element fixture. Nearest-rank: the value at
        // 1-based rank ceil(p/100 * 4). The old round(p/100 * (n-1))
        // formula gave 3.0 at p50 — neither nearest-rank nor interpolation.
        let r = fixture_report(&[4.0, 2.0, 1.0, 3.0]);
        assert_eq!(r.latency_percentile(0.0), 1.0);
        assert_eq!(r.latency_percentile(25.0), 1.0);
        assert_eq!(r.latency_percentile(50.0), 2.0);
        assert_eq!(r.latency_percentile(75.0), 3.0);
        assert_eq!(r.latency_percentile(100.0), 4.0);
        // Just past a rank boundary, the next order statistic is taken.
        assert_eq!(r.latency_percentile(50.1), 3.0);
    }

    #[test]
    fn throughput_measures_from_first_arrival() {
        // A trace that starts 100s in: dead time before the first arrival
        // must not dilute throughput.
        let requests = vec![
            RequestStats { arrival: 100.0, prefilled: 101.0, finished: 104.0, generated: 5 },
            RequestStats { arrival: 102.0, prefilled: 103.0, finished: 110.0, generated: 5 },
        ];
        let r = ServingReport::new(requests, 10, 15);
        assert_eq!(r.first_arrival(), 100.0);
        // 2 requests x 5 tokens over (110 - 100) seconds.
        assert!((r.throughput_tokens_per_sec(5) - 1.0).abs() < 1e-12);
        assert!((r.generated_throughput(20) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_decode_steps_yield_finite_stats() {
        let (model, mut cfg) = config();
        cfg.gen_len = 0;
        let report = simulate(&model, &cfg, &[0.0, 1.0]);
        assert_eq!(report.decode_steps, 0);
        assert_eq!(report.mean_decode_batch, 0.0);
        assert!(report.mean_decode_batch.is_finite(), "must not be NaN");
        // Requests finish when prefilled.
        for r in &report.requests {
            assert_eq!(r.finished, r.prefilled);
        }
    }

    #[test]
    fn ttft_and_tpot_percentiles() {
        let requests = vec![
            RequestStats { arrival: 0.0, prefilled: 1.0, finished: 5.0, generated: 5 },
            RequestStats { arrival: 0.0, prefilled: 3.0, finished: 4.0, generated: 1 },
        ];
        let r = ServingReport::new(requests, 0, 0);
        assert_eq!(r.ttft_percentile(50.0), 1.0);
        assert_eq!(r.ttft_percentile(100.0), 3.0);
        // Only the first request generated >= 2 tokens: 4s over 4 gaps.
        assert_eq!(r.tpot_percentile(50.0), 1.0);
        assert_eq!(r.tpot_percentile(99.0), 1.0);
    }

    fn trace_spec(process: ArrivalProcess) -> TraceSpec {
        TraceSpec {
            process,
            prompt: LengthDist::LogNormal { median: 64.0, sigma: 0.7, max: 512 },
            output: LengthDist::Uniform { lo: 8, hi: 64 },
            high_fraction: 0.1,
            low_fraction: 0.3,
        }
    }

    #[test]
    fn traces_are_seed_deterministic_and_sorted() {
        for process in [
            ArrivalProcess::Uniform { rate: 10.0 },
            ArrivalProcess::Poisson { rate: 10.0 },
            ArrivalProcess::Bursty { calm_rate: 2.0, burst_rate: 50.0, mean_dwell: 3.0 },
            ArrivalProcess::Diurnal { mean_rate: 10.0, swing: 0.8, period: 60.0 },
        ] {
            let spec = trace_spec(process);
            let a = ArrivalTrace::generate(&spec, 2000, 7);
            let b = ArrivalTrace::generate(&spec, 2000, 7);
            let c = ArrivalTrace::generate(&spec, 2000, 8);
            assert_eq!(a.requests, b.requests, "{process:?} not deterministic");
            assert_ne!(a.requests, c.requests, "{process:?} ignores the seed");
            assert!(
                a.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
                "{process:?} arrivals unsorted"
            );
            assert!(a.requests.iter().all(|r| r.prompt_len >= 1 && r.gen_len >= 1));
        }
    }

    #[test]
    fn trace_rates_and_priority_mix_are_roughly_honored() {
        let n = 20_000;
        let spec = trace_spec(ArrivalProcess::Poisson { rate: 10.0 });
        let t = ArrivalTrace::generate(&spec, n, 42);
        let rate = n as f64 / t.duration();
        assert!((rate - 10.0).abs() < 0.5, "poisson rate {rate}");
        let high = t.class_count(Priority::High) as f64 / n as f64;
        let low = t.class_count(Priority::Low) as f64 / n as f64;
        assert!((high - 0.1).abs() < 0.02, "high fraction {high}");
        assert!((low - 0.3).abs() < 0.02, "low fraction {low}");
        // Diurnal: mean over a whole number of periods ~ mean_rate.
        let d = ArrivalTrace::generate(
            &trace_spec(ArrivalProcess::Diurnal { mean_rate: 10.0, swing: 0.8, period: 10.0 }),
            n,
            42,
        );
        let drate = n as f64 / d.duration();
        assert!((drate - 10.0).abs() < 1.0, "diurnal mean rate {drate}");
    }

    #[test]
    fn bursty_interarrivals_are_overdispersed() {
        // MMPP gap variance must exceed a plain Poisson's at equal mean —
        // the whole point of the bursty process.
        let n = 20_000;
        let spec = trace_spec(ArrivalProcess::Bursty {
            calm_rate: 2.0,
            burst_rate: 50.0,
            mean_dwell: 2.0,
        });
        let t = ArrivalTrace::generate(&spec, n, 5);
        let arr = t.arrivals();
        let gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Exponential gaps have cv^2 = 1; MMPP well above.
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.5, "bursty cv^2 {cv2} not overdispersed");
    }

    fn overload_fixture(n: usize) -> (ModelConfig, ServingConfig, ArrivalTrace) {
        let (model, cfg) = config();
        // Long outputs make decode slots (not the prefill tier) the scarce
        // resource: mean offered load ~2x the decode ceiling, bursts near
        // 3.7x — a genuine overload where preemption decisions matter.
        let spec = TraceSpec {
            process: ArrivalProcess::Bursty {
                calm_rate: 5.0,
                burst_rate: 50.0,
                mean_dwell: 5.0,
            },
            prompt: LengthDist::Uniform { lo: 32, hi: 96 },
            output: LengthDist::Uniform { lo: 128, hi: 256 },
            high_fraction: 0.1,
            low_fraction: 0.3,
        };
        (model, cfg, ArrivalTrace::generate(&spec, n, 11))
    }

    #[test]
    fn unpoliced_overload_completes_everything() {
        let (model, cfg, trace) = overload_fixture(512);
        let r = simulate_trace(&model, &cfg, &trace, &OverloadPolicy::default());
        assert_eq!(r.shed.len(), 0);
        assert_eq!(r.completed.len(), 512);
        assert!(r.goodput_tokens_per_sec() > 0.0);
        assert!(r.goodput_ratio() <= 1.0 + 1e-9, "goodput above capacity");
    }

    #[test]
    fn queue_limit_sheds_lowest_priority_first() {
        let (model, cfg, trace) = overload_fixture(1024);
        let policy = OverloadPolicy {
            queue_limit: Some(32),
            ttft_deadline: [None; 3],
            preemption: true,
        };
        let r = simulate_trace(&model, &cfg, &trace, &policy);
        assert!(!r.shed.is_empty(), "2x overload with a short queue must shed");
        assert_eq!(r.completed.len() + r.shed.len(), 1024);
        // Shedding starts from the lowest waiting class.
        assert!(
            r.class_shed(Priority::Low) > r.class_shed(Priority::High),
            "low sheds {} vs high sheds {}",
            r.class_shed(Priority::Low),
            r.class_shed(Priority::High)
        );
        assert!(matches!(
            r.shed[0].reason,
            ShedReason::QueueFull { limit: 32, .. }
        ));
    }

    #[test]
    fn ttft_deadline_sheds_stale_requests() {
        let (model, cfg, trace) = overload_fixture(1024);
        let policy = OverloadPolicy {
            queue_limit: None,
            ttft_deadline: [Some(5.0), Some(5.0), Some(5.0)],
            preemption: false,
        };
        let r = simulate_trace(&model, &cfg, &trace, &policy);
        assert!(!r.shed.is_empty(), "a 5s TTFT deadline under overload must shed");
        assert!(r
            .shed
            .iter()
            .all(|s| matches!(s.reason, ShedReason::DeadlineExpired { .. })));
        // Whoever completed met a TTFT not far above the deadline (the
        // shed decision uses the best-case projection, so a small
        // overshoot from queueing behind the current prefill is possible).
        let p100 = r.report.ttft_percentile(100.0);
        assert!(p100 <= 6.0, "completed TTFT p100 {p100} far above deadline");
    }

    #[test]
    fn preemption_protects_high_priority_ttft() {
        let (model, cfg, trace) = overload_fixture(1024);
        let base = OverloadPolicy {
            queue_limit: Some(64),
            ttft_deadline: [None; 3],
            preemption: false,
        };
        let pre = OverloadPolicy { preemption: true, ..base };
        let fifo = simulate_trace(&model, &cfg, &trace, &base);
        let slo = simulate_trace(&model, &cfg, &trace, &pre);
        assert!(slo.preemptions > 0, "2x overload must trigger preemption");
        assert!(slo.replayed_tokens > 0, "victims re-derive their streams");
        let fifo_p99 = fifo.class_ttft_percentile(Priority::High, 99.0);
        let slo_p99 = slo.class_ttft_percentile(Priority::High, 99.0);
        assert!(
            slo_p99 < fifo_p99,
            "preemption must cut high-priority p99 TTFT ({slo_p99} vs {fifo_p99})"
        );
        // Low-priority pays, but every admitted request still completes or
        // sheds — none are lost.
        assert_eq!(slo.completed.len() + slo.shed.len(), 1024);
    }

    #[test]
    fn simulate_trace_scales_to_1e5_requests() {
        let (model, cfg, trace) = overload_fixture(100_000);
        let policy = OverloadPolicy {
            queue_limit: Some(256),
            ttft_deadline: [Some(20.0), Some(30.0), Some(60.0)],
            preemption: true,
        };
        let r = simulate_trace(&model, &cfg, &trace, &policy);
        assert_eq!(r.completed.len() + r.shed.len(), 100_000);
        assert!(r.completed.len() > 10_000, "overload must not starve everyone");
        assert!(r.goodput_ratio() > 0.3, "goodput ratio {}", r.goodput_ratio());
    }
}
