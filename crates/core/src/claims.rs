//! The paper's quantitative claims as a checkable scoreboard.
//!
//! Unit tests verify code; this module audits the *reproduction*: each
//! entry states one claim from the paper, how we evaluate it on the
//! simulated hardware, and whether the measured shape supports it. The
//! `check_claims` binary prints the scoreboard; `all_claims()` lets tests
//! assert that no claim regresses as the model evolves.

use esti_hal::DType;
use esti_model::{BlockKind, ModelConfig};

use crate::layout::{AttnSharding, FfnLayout, GatherExtent, Layout};
use crate::machine::Machine;
use crate::memory;
use crate::pareto::{decode_sweep, pareto_frontier};
use crate::perf::{estimate, PhaseSpec};
use crate::planner;

/// One audited claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Where the paper makes it.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub statement: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub holds: bool,
}

fn machine64() -> Machine {
    Machine::tpu_v4_slice(64).expect("catalog slice")
}

fn ws2d(model: &ModelConfig, attn: AttnSharding) -> Layout {
    Layout {
        ffn: FfnLayout::WeightStationary2D,
        attn,
        mesh: Layout::ws2d_mesh(64, model.d_model, model.d_ff),
    }
}

/// Evaluates every audited claim. Deterministic and reasonably fast
/// (a few hundred milliseconds).
#[must_use]
pub fn all_claims() -> Vec<Claim> {
    let mut claims = Vec::new();
    let palm = ModelConfig::palm_540b_padded();
    let m = machine64();

    // -- Section 1 headline: 29 ms/token decode -----------------------------
    {
        let est = estimate(
            &m,
            &palm,
            &ws2d(&palm, AttnSharding::Batch),
            &PhaseSpec::decode(64, 2048),
            DType::Int8,
        );
        let ms = est.step_time * 1e3;
        claims.push(Claim {
            source: "Section 1",
            statement: "PaLM 540B decodes at ~29 ms/token (batch 64, int8, 64 chips)",
            measured: format!("{ms:.1} ms/token"),
            holds: (10.0..60.0).contains(&ms),
        });
    }

    // -- Section 1: 76% MFU large-batch prefill ------------------------------
    {
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Batch,
            mesh: Layout::ws2d_mesh(64, palm.d_model, palm.d_ff),
        };
        let est = estimate(&m, &palm, &layout, &PhaseSpec::prefill(512, 2048), DType::Bf16);
        claims.push(Claim {
            source: "Section 1 / Table 2",
            statement: "~76% MFU processing 1M input tokens with weight-gathered layouts",
            measured: format!("{:.1}% MFU", est.mfu * 100.0),
            holds: est.mfu > 0.6,
        });
    }

    // -- Table 1: 32x context window ----------------------------------------
    {
        let mh = memory::table1_row(&ModelConfig::palm_540b_multihead(), AttnSharding::Head, &m, 512);
        let opt = memory::table1_row(&ModelConfig::palm_540b(), AttnSharding::Batch, &m, 512);
        let ratio = opt as f64 / mh as f64;
        claims.push(Claim {
            source: "Table 1 / abstract",
            statement: "optimized multiquery supports up to 32x longer contexts than multihead",
            measured: format!("{ratio:.1}x ({opt} vs {mh} tokens at batch 512)"),
            holds: ratio >= 30.0,
        });
    }

    // -- Section 3.2.2: 2D beats 1D past ~16 chips ---------------------------
    {
        let spec = PhaseSpec::decode(512, 2048);
        let t = |n: usize, ffn: FfnLayout| {
            let machine = Machine::tpu_v4_slice(n).expect("catalog");
            let mesh = match ffn {
                FfnLayout::WeightStationary1D => Layout::ws1d_mesh(n),
                _ => Layout::ws2d_mesh(n, palm.d_model, palm.d_ff),
            };
            estimate(
                &machine,
                &palm,
                &Layout { ffn, attn: AttnSharding::Batch, mesh },
                &spec,
                DType::Int8,
            )
            .step_time
        };
        let better_at_64 = t(64, FfnLayout::WeightStationary2D) < t(64, FfnLayout::WeightStationary1D);
        let better_at_256 = t(256, FfnLayout::WeightStationary2D) < t(256, FfnLayout::WeightStationary1D);
        claims.push(Claim {
            source: "Section 3.2.2 / Figure 6",
            statement: "2D weight-stationary outperforms 1D once chip count is large (n > 16)",
            measured: format!("2D faster at 64 chips: {better_at_64}; at 256: {better_at_256}"),
            holds: better_at_64 && better_at_256,
        });
    }

    // -- Section 3.2.3: weight-gathered wins large-batch prefill -------------
    {
        let high = planner::prefill_layout(&palm, &m, 512, 2048, DType::Bf16);
        let low = planner::prefill_layout(&palm, &m, 1, 2048, DType::Bf16);
        claims.push(Claim {
            source: "Sections 3.2.3, 4.1 / Figure 7",
            statement: "the optimal prefill layout switches from weight-stationary to weight-gathered as batch grows",
            measured: format!("batch 1 -> {}, batch 512 -> {}", low.ffn.name(), high.ffn.name()),
            holds: low.ffn == FfnLayout::WeightStationary2D
                && matches!(high.ffn, FfnLayout::WeightGathered(_)),
        });
    }

    // -- Section 4.3: serialized blocks ~14% slower decode -------------------
    {
        let mut serial = palm.clone();
        serial.block = BlockKind::Serial;
        let spec = PhaseSpec::decode(512, 2048);
        let layout = ws2d(&palm, AttnSharding::Batch);
        let t_par = estimate(&m, &palm, &layout, &spec, DType::Bf16).step_time;
        let t_ser = estimate(&m, &serial, &layout, &spec, DType::Bf16).step_time;
        let overhead = (t_ser / t_par - 1.0) * 100.0;
        claims.push(Claim {
            source: "Section 4.3",
            statement: "the serialized block formulation costs ~14% extra decode latency",
            measured: format!("+{overhead:.1}%"),
            holds: (5.0..40.0).contains(&overhead),
        });
    }

    // -- Section 4.4: int8 halves low-latency cost, neutral at large batch ---
    {
        let layout = ws2d(&palm, AttnSharding::Batch);
        let low_ratio = estimate(&m, &palm, &layout, &PhaseSpec::decode(16, 2048), DType::Int8).step_time
            / estimate(&m, &palm, &layout, &PhaseSpec::decode(16, 2048), DType::Bf16).step_time;
        let hi_ratio = estimate(&m, &palm, &layout, &PhaseSpec::decode(1024, 2048), DType::Int8).step_time
            / estimate(&m, &palm, &layout, &PhaseSpec::decode(1024, 2048), DType::Bf16).step_time;
        claims.push(Claim {
            source: "Section 4.4 / Figure 1",
            statement: "int8 weights help at low batch (weight-loading bound) and are neutral at large batch",
            measured: format!("int8/bf16 step ratio: {low_ratio:.2} at batch 16, {hi_ratio:.2} at batch 1024"),
            holds: low_ratio < 0.85 && hi_ratio > 0.9,
        });
    }

    // -- Section 4.4: min latency ~3x below batch-512 latency ----------------
    {
        let sweep = decode_sweep(&palm, DType::Int8, 2048);
        let min = sweep.iter().map(|p| p.latency).fold(f64::INFINITY, f64::min);
        let b512 = sweep
            .iter()
            .filter(|p| p.batch == 512)
            .map(|p| p.latency)
            .fold(f64::INFINITY, f64::min);
        let ratio = b512 / min;
        claims.push(Claim {
            source: "Section 4.4",
            statement: "minimum generation latency is ~3x lower than batch-512 latency",
            measured: format!("{ratio:.1}x"),
            holds: (1.8..8.0).contains(&ratio),
        });
    }

    // -- Section 4.4: cost falls monotonically along the Pareto frontier -----
    {
        let sweep = decode_sweep(&palm, DType::Bf16, 2048);
        let frontier = pareto_frontier(&sweep, |p| p.cost);
        let monotone = frontier.windows(2).all(|w| w[1].cost <= w[0].cost);
        claims.push(Claim {
            source: "Section 4.4 / Figure 1",
            statement: "lower latency is bought with higher cost per token (a real tradeoff curve)",
            measured: format!("{} frontier points, cost monotone: {monotone}", frontier.len()),
            holds: monotone && frontier.len() >= 3,
        });
    }

    // -- Section 4.4: latency grows sublinearly (≈sqrt) with model size ------
    {
        let lat = |model: &ModelConfig| {
            decode_sweep(model, DType::Int8, 2048)
                .iter()
                .map(|p| p.latency)
                .fold(f64::INFINITY, f64::min)
        };
        let ratio = lat(&palm) / lat(&ModelConfig::palm_8b());
        claims.push(Claim {
            source: "Section 4.4",
            statement: "low-batch latency grows sublinearly (~sqrt) with model size",
            measured: format!("540B/8B min-latency ratio {ratio:.1}x vs 63x parameters"),
            holds: ratio > 1.5 && ratio < 31.0,
        });
    }

    // -- Section 5: PaLM beats our MT-NLG implementation in MFU --------------
    {
        let mt = ModelConfig::mt_nlg_530b();
        let mfu = |model: &ModelConfig| {
            let p = planner::prefill_layout(model, &m, 64, 60, DType::Bf16);
            let d = planner::decode_layout_for_batch(model, &m, 64);
            let pre = estimate(&m, model, &p, &PhaseSpec::prefill(64, 60), DType::Bf16);
            let gen = crate::perf::generate_latency(&m, model, &d, 64, 60, 20, DType::Bf16);
            let total = pre.step_time + gen.step_time;
            model.flops_per_token() * (64.0 * 80.0) / (total * m.peak_flops())
        };
        let (palm_mfu, mt_mfu) = (mfu(&palm), mfu(&mt));
        claims.push(Claim {
            source: "Section 5 / Figure 9",
            statement: "the PaLM architecture out-MFUs Megatron-style MT-NLG under the same serving stack",
            measured: format!("{:.1}% vs {:.1}% at batch 64, 60/20", palm_mfu * 100.0, mt_mfu * 100.0),
            holds: palm_mfu > mt_mfu,
        });
    }

    claims
}

/// Number of claims that hold.
#[must_use]
pub fn holding(claims: &[Claim]) -> usize {
    claims.iter().filter(|c| c.holds).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_audited_claim_holds() {
        let claims = all_claims();
        assert!(claims.len() >= 10, "claim inventory shrank to {}", claims.len());
        for c in &claims {
            assert!(c.holds, "CLAIM REGRESSED [{}] {} — measured {}", c.source, c.statement, c.measured);
        }
    }

    #[test]
    fn claims_have_nonempty_measurements() {
        for c in all_claims() {
            assert!(!c.measured.is_empty());
            assert!(!c.statement.is_empty());
        }
    }
}
