//! Partitioning layouts and their communication volumes.
//!
//! Feedforward layouts (Section 3.2):
//!
//! * **1D weight-stationary** — `EF_xyz` / `F_xyz E` (Megatron-style): one
//!   all-gather + reduce-scatter pair of the *full* `BLE` activation per
//!   layer; communication constant in chip count.
//! * **2D weight-stationary** — `E_x F_yz`: activations aggregate
//!   alternately over `x` and `yz`, communication
//!   `2BL(E/X + F/YZ)`, optimal at `X = √(n·E/F)` so time scales as
//!   `1/√n` (Appendix A.2.1).
//! * **Weight-gathered** (X / XY / XYZ): weights start in `E_x F_yz` and are
//!   all-gathered over `N` chips just before each einsum, in exchange for
//!   activation traffic dropping by `N` (Appendix A.2.2, Figure 3).
//!
//! Attention shardings (Section 3.3): head-sharded (the classic layout,
//! matching the feedforward partitioning) or batch-sharded (the paper's
//! optimized multiquery layout, which pays two small all-to-alls to divide
//! the KV cache across chips).

use esti_model::{BlockKind, ModelConfig};
use esti_topology::{Axis, AxisSet};

use crate::sharding::ShardingSpec;

/// Logical mesh factorization `X × Y × Z = n_chips` used by a layout.
///
/// The factors are *logical*: a physically `4×4×4` slice may be viewed as
/// `8×8×1` when a layout calls for it (the torus supports such foldings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshFactors {
    /// Partitions along the logical `x` axis (shards `d_model` in 2D WS).
    pub x: usize,
    /// Partitions along the logical `y` axis.
    pub y: usize,
    /// Partitions along the logical `z` axis.
    pub z: usize,
}

impl MeshFactors {
    /// Creates mesh factors.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    #[must_use]
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "mesh factors must be positive");
        MeshFactors { x, y, z }
    }

    /// Total chips `X·Y·Z`.
    #[must_use]
    pub const fn n_chips(self) -> usize {
        self.x * self.y * self.z
    }

    /// The `Y·Z` product that shards `d_ff` in the 2D layouts.
    #[must_use]
    pub const fn yz(self) -> usize {
        self.y * self.z
    }
}

/// How far weights are gathered in a weight-gathered layout (Section 3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GatherExtent {
    /// all-gather(x): weights gathered over `X` chips.
    X,
    /// all-gather(xy): over `X·Y` chips.
    Xy,
    /// all-gather(xyz): over all chips; activations fully stationary.
    Xyz,
}

impl GatherExtent {
    /// All extents, in increasing gather size.
    pub const ALL: [GatherExtent; 3] = [GatherExtent::X, GatherExtent::Xy, GatherExtent::Xyz];

    /// Number of chips `N` the weights are gathered over.
    #[must_use]
    pub fn n_gather(self, mesh: MeshFactors) -> usize {
        match self {
            GatherExtent::X => mesh.x,
            GatherExtent::Xy => mesh.x * mesh.y,
            GatherExtent::Xyz => mesh.n_chips(),
        }
    }

    /// Number of torus axes the weight all-gather runs over.
    #[must_use]
    pub const fn gather_axes(self) -> u32 {
        match self {
            GatherExtent::X => 1,
            GatherExtent::Xy => 2,
            GatherExtent::Xyz => 3,
        }
    }
}

/// Feedforward-layer partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FfnLayout {
    /// 1D weight-stationary (Section 3.2.1).
    WeightStationary1D,
    /// 2D weight-stationary (Section 3.2.2).
    WeightStationary2D,
    /// Weight-gathered over the given extent (Section 3.2.3).
    WeightGathered(GatherExtent),
}

impl FfnLayout {
    /// Short display name matching the paper's tables ("WS 1D", "WS 2D",
    /// "WG X", "WG XY", "WG XYZ").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FfnLayout::WeightStationary1D => "WS 1D",
            FfnLayout::WeightStationary2D => "WS 2D",
            FfnLayout::WeightGathered(GatherExtent::X) => "WG X",
            FfnLayout::WeightGathered(GatherExtent::Xy) => "WG XY",
            FfnLayout::WeightGathered(GatherExtent::Xyz) => "WG XYZ",
        }
    }
}

/// Attention-layer sharding (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnSharding {
    /// Q/K/V partitioned over the heads dimension (Figure 4a/4b). For
    /// multiquery attention this replicates the single KV head on every
    /// chip (the "baseline multiquery" of Section 4.2).
    Head,
    /// Q/K/V partitioned over the batch dimension (Figure 4c) — the
    /// paper's optimized multiquery layout; costs two all-to-alls.
    Batch,
}

impl AttnSharding {
    /// Display name used in the tables ("Head" / "Batch").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttnSharding::Head => "Head",
            AttnSharding::Batch => "Batch",
        }
    }
}

/// A complete per-phase partitioning: feedforward layout, attention
/// sharding, and the logical mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Feedforward strategy.
    pub ffn: FfnLayout,
    /// Attention sharding.
    pub attn: AttnSharding,
    /// Logical mesh factorization.
    pub mesh: MeshFactors,
}

/// One collective's contribution to a layer's communication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommPiece {
    /// What the bytes are for (reporting).
    pub label: &'static str,
    /// Collective kind (determines the time formula).
    pub kind: PieceKind,
    /// Per-chip volume in *elements* (all-gather: output; reduce-scatter:
    /// input; all-to-all: payload) — multiply by dtype width for bytes.
    pub elements: f64,
    /// Torus axes the collective runs over (bandwidth scales with this).
    pub axes: u32,
    /// Group size `K` (the `(K-1)/K` factor; `K = 1` means free).
    pub group: f64,
    /// True if the volume is weights (stored dtype) rather than
    /// activations (bf16).
    pub is_weights: bool,
}

/// Collective kind of a [`CommPiece`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PieceKind {
    /// all-gather / reduce-scatter (same cost formula).
    GatherScatter,
    /// all-to-all (≈4x cheaper per byte on a ring).
    AllToAll,
}

impl Layout {
    /// Optimal 2D weight-stationary mesh for `n_chips` chips and the given
    /// model dimensions: `X ≈ √(n·E/F)` rounded to the best power-of-two
    /// divisor (Appendix A.2.1; for `F = 4E` this is `X = ½√n`).
    #[must_use]
    pub fn ws2d_mesh(n_chips: usize, d_model: usize, d_ff: usize) -> MeshFactors {
        let best_x = (1..=n_chips)
            .filter(|x| n_chips.is_multiple_of(*x))
            .min_by(|&a, &b| {
                let cost = |x: usize| {
                    d_model as f64 / x as f64 + d_ff as f64 / (n_chips / x) as f64
                };
                cost(a).partial_cmp(&cost(b)).expect("finite costs")
            })
            .expect("n_chips >= 1");
        let yz = n_chips / best_x;
        let (y, z) = balanced_split(yz);
        MeshFactors::new(best_x, y, z)
    }

    /// The 1D weight-stationary mesh: everything shards `d_ff`.
    #[must_use]
    pub fn ws1d_mesh(n_chips: usize) -> MeshFactors {
        let (y, z) = balanced_split(n_chips);
        MeshFactors::new(1, y, z)
    }

    /// 2D weight-stationary layout with head-sharded attention — the
    /// paper's default for prefill at small batch.
    #[must_use]
    pub fn ws2d(model: &ModelConfig, n_chips: usize) -> Layout {
        Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: Layout::ws2d_mesh(n_chips, model.d_model, model.d_ff),
        }
    }

    /// Communication pieces for one Transformer layer at `batch_tokens`
    /// (`B·L`) tokens per forward pass.
    ///
    /// The parallel block (Section 3.4) needs one all-gather +
    /// reduce-scatter pair per aggregation axis; the serialized block emits
    /// each activation piece twice. Batch-sharded attention adds its two
    /// all-to-alls (Figure 5b).
    #[must_use]
    pub fn layer_comm(&self, model: &ModelConfig, batch_tokens: f64) -> Vec<CommPiece> {
        let mut pieces = Vec::new();
        let e = model.d_model as f64;
        let f = model.d_ff as f64;
        let n = self.mesh.n_chips() as f64;
        let bl = batch_tokens;
        let serial_factor = match model.block {
            BlockKind::Parallel => 1.0,
            BlockKind::Serial => 2.0,
        };
        match self.ffn {
            FfnLayout::WeightStationary1D => {
                for label in ["acts all-gather", "acts reduce-scatter"] {
                    pieces.push(CommPiece {
                        label,
                        kind: PieceKind::GatherScatter,
                        elements: bl * e * serial_factor,
                        axes: 3,
                        group: n,
                        is_weights: false,
                    });
                }
            }
            FfnLayout::WeightStationary2D => {
                // Dataflow (Appendix A.2.1): activations sharded E_xyz at
                // layer boundaries; the E/X-sized transfers run over the yz
                // axes (gathering/scattering the d_model shards) and the
                // F/YZ-sized transfers over the x axis (around the hidden
                // activation). The parallel block's fusion halves the
                // d_ff/n_heads-axis pieces only (Section 3.4).
                let x = self.mesh.x as f64;
                let yz = self.mesh.yz() as f64;
                for label in ["acts all-gather(yz)", "acts reduce-scatter(yz)"] {
                    pieces.push(CommPiece {
                        label,
                        kind: PieceKind::GatherScatter,
                        elements: bl * e / x,
                        axes: 2,
                        group: yz,
                        is_weights: false,
                    });
                }
                for label in ["acts all-gather(x)", "acts reduce-scatter(x)"] {
                    pieces.push(CommPiece {
                        label,
                        kind: PieceKind::GatherScatter,
                        elements: bl * f / yz * serial_factor,
                        axes: 1,
                        group: x,
                        is_weights: false,
                    });
                }
            }
            FfnLayout::WeightGathered(extent) => {
                let n_gather = extent.n_gather(self.mesh) as f64;
                // Per-chip weight shard W/n grows to W·N/n after the gather.
                let w_layer = model.params_per_layer() as f64;
                pieces.push(CommPiece {
                    label: "weights all-gather",
                    kind: PieceKind::GatherScatter,
                    elements: w_layer * n_gather / n,
                    axes: extent.gather_axes(),
                    group: n_gather,
                    is_weights: true,
                });
                // One activation pair remains, at volume reduced by N
                // (Appendix A.2.2), over the axes weights were not
                // gathered over.
                let act_axes = 3 - extent.gather_axes();
                let act_group = n / n_gather;
                if act_group > 1.0 {
                    for label in ["acts all-gather", "acts reduce-scatter"] {
                        pieces.push(CommPiece {
                            label,
                            kind: PieceKind::GatherScatter,
                            elements: bl * e / n_gather * serial_factor,
                            axes: act_axes.max(1),
                            group: act_group,
                            is_weights: false,
                        });
                    }
                }
            }
        }
        if self.attn == AttnSharding::Batch {
            // Reshard Q/K/V to batch layout and the attention output back
            // (Figure 5b). Tensors are fully sharded, so per-chip payload is
            // the fused projection width over n chips.
            let qkv = (model.attn_dim() + 2 * model.n_kv_heads() * model.d_head) as f64;
            pieces.push(CommPiece {
                label: "attn qkv all-to-all",
                kind: PieceKind::AllToAll,
                elements: bl * qkv / n,
                axes: 3,
                group: n,
                is_weights: false,
            });
            pieces.push(CommPiece {
                label: "attn out all-to-all",
                kind: PieceKind::AllToAll,
                elements: bl * model.attn_dim() as f64 / n,
                axes: 3,
                group: n,
                is_weights: false,
            });
        }
        pieces
    }

    /// Total per-layer communication volume in elements, the quantity
    /// plotted in Figure 3 (weights and activations summed).
    #[must_use]
    pub fn layer_comm_elements(&self, model: &ModelConfig, batch_tokens: f64) -> f64 {
        self.layer_comm(model, batch_tokens)
            .iter()
            .map(|p| p.elements)
            .sum()
    }

    /// The weight sharding in the paper's subscript notation (Section 3.1):
    /// `EF_xyz` for 1D weight-stationary, `E_xF_yz` for 2D and the
    /// weight-gathered layouts (which store weights in the 2D layout and
    /// gather at use, Section 3.2.3).
    #[must_use]
    pub fn weight_spec(&self) -> ShardingSpec {
        match self.ffn {
            FfnLayout::WeightStationary1D => {
                ShardingSpec::new("EF").shard('F', AxisSet::all())
            }
            FfnLayout::WeightStationary2D | FfnLayout::WeightGathered(_) => ShardingSpec::new("EF")
                .shard('E', AxisSet::single(Axis::X))
                .shard('F', AxisSet::of(&[Axis::Y, Axis::Z])),
        }
    }

    /// The layer-boundary activation sharding in subscript notation:
    /// `BLE_xyz` for the weight-stationary layouts (d_model fully sharded
    /// between layers), `B_xyz LE` for XYZ-weight-gathered (batch
    /// stationary), and batch-over-gather-axes for the hybrids.
    #[must_use]
    pub fn activation_spec(&self) -> ShardingSpec {
        match self.ffn {
            FfnLayout::WeightStationary1D | FfnLayout::WeightStationary2D => {
                ShardingSpec::new("BLE").shard('E', AxisSet::all())
            }
            FfnLayout::WeightGathered(GatherExtent::Xyz) => {
                ShardingSpec::new("BLE").shard('B', AxisSet::all())
            }
            FfnLayout::WeightGathered(GatherExtent::X) => ShardingSpec::new("BLE")
                .shard('B', AxisSet::single(Axis::X))
                .shard('E', AxisSet::of(&[Axis::Y, Axis::Z])),
            FfnLayout::WeightGathered(GatherExtent::Xy) => ShardingSpec::new("BLE")
                .shard('B', AxisSet::of(&[Axis::X, Axis::Y]))
                .shard('E', AxisSet::single(Axis::Z)),
        }
    }

    /// One-line description, e.g. `"WS 2D / Batch on 4x4x4"`.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} / {} on {}x{}x{}",
            self.ffn.name(),
            self.attn.name(),
            self.mesh.x,
            self.mesh.y,
            self.mesh.z
        )
    }
}

/// Appendix A.2.1's closed-form optimum for the 2D weight-stationary
/// communication time (elements per layer, both collective pairs):
/// `2·BL·(E/X* + F/(n/X*))` at `X* = √(n·E/F)` — which simplifies to
/// `8·BL·E/√n` when `F = 4E`.
///
/// This is the *continuous* optimum; [`Layout::ws2d_mesh`] rounds `X*` to
/// a feasible divisor, so the realized volume is never below this bound.
#[must_use]
pub fn ws2d_comm_elements_bound(d_model: usize, d_ff: usize, n_chips: usize, batch_tokens: f64) -> f64 {
    let (e, f, n) = (d_model as f64, d_ff as f64, n_chips as f64);
    let x_star = (n * e / f).sqrt();
    2.0 * batch_tokens * (e / x_star + f / (n / x_star))
}

/// Appendix A.2.2's optimal number of chips `N*` to all-gather weights
/// over in a weight-gathered layout: `N* = √(B·L·n / F)`, balancing weight
/// traffic (∝ N) against activation traffic (∝ 1/N).
#[must_use]
pub fn optimal_gather_chips(batch_tokens: f64, n_chips: usize, d_ff: usize) -> f64 {
    (batch_tokens * n_chips as f64 / d_ff as f64).sqrt()
}

/// Appendix A.2.2's closed-form optimum for weight-gathered communication
/// (elements per layer, weights + activations, assuming a plain two-matrix
/// FFN): `4·E·√(B·L·F / n)` per chip... expressed here as the total volume
/// `2·E·F·N/n + 2·B·L·E/N` evaluated at [`optimal_gather_chips`].
#[must_use]
pub fn wg_comm_elements_bound(d_model: usize, d_ff: usize, n_chips: usize, batch_tokens: f64) -> f64 {
    let (e, f, n) = (d_model as f64, d_ff as f64, n_chips as f64);
    let n_star = optimal_gather_chips(batch_tokens, n_chips, d_ff).clamp(1.0, n);
    2.0 * e * f * n_star / n + 2.0 * batch_tokens * e / n_star
}

/// The weight-gathered extent whose gather size is closest (in log space)
/// to the A.2.2 optimum `N*` for this batch — the rule Figure 3 and the
/// prefill planner realize by explicit enumeration.
#[must_use]
pub fn best_gather_extent(mesh: MeshFactors, batch_tokens: f64, d_ff: usize) -> GatherExtent {
    let n_star = optimal_gather_chips(batch_tokens, mesh.n_chips(), d_ff).max(1.0);
    GatherExtent::ALL
        .into_iter()
        .min_by(|a, b| {
            let d = |ext: GatherExtent| {
                (ext.n_gather(mesh) as f64).ln() - n_star.ln()
            };
            d(*a).abs().partial_cmp(&d(*b).abs()).expect("finite")
        })
        .expect("non-empty extent list")
}

/// Splits `n` into two factors as close to `√n` as possible (`y ≥ z`).
fn balanced_split(n: usize) -> (usize, usize) {
    let mut best = (n, 1);
    for z in 1..=n {
        if z * z > n {
            break;
        }
        if n.is_multiple_of(z) {
            best = (n / z, z);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ws2d_mesh_is_half_sqrt_for_4x() {
        // F = 4E, n = 64: X = 0.5·√64 = 4 (Appendix A.2.1).
        let mesh = Layout::ws2d_mesh(64, 16384, 65536);
        assert_eq!(mesh.x, 4);
        assert_eq!(mesh.yz(), 16);
        assert_eq!(mesh.n_chips(), 64);
        // n = 256: X = 8.
        assert_eq!(Layout::ws2d_mesh(256, 16384, 65536).x, 8);
    }

    #[test]
    fn balanced_split_examples() {
        assert_eq!(balanced_split(16), (4, 4));
        assert_eq!(balanced_split(32), (8, 4));
        assert_eq!(balanced_split(1), (1, 1));
        assert_eq!(balanced_split(7), (7, 1));
    }

    fn fig3_model() -> ModelConfig {
        // Figure 3's feedforward-only setting: E=16384, F=65536, plain
        // two-matrix MLP so params_per_layer ≈ 2EF.
        let mut m = ModelConfig::mt_nlg_530b();
        m.d_model = 16384;
        m.d_ff = 65536;
        m.n_heads = 1;
        m.d_head = 1;
        m.block = BlockKind::Parallel;
        m
    }

    #[test]
    fn ws2d_volume_matches_formula() {
        let model = fig3_model();
        let mesh = MeshFactors::new(4, 4, 4);
        let layout = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Head, mesh };
        let bl = 4096.0;
        let expect = 2.0 * bl * (16384.0 / 4.0 + 65536.0 / 16.0);
        assert!((layout.layer_comm_elements(&model, bl) - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn figure3_crossover_structure() {
        // As batch tokens grow, the communication-minimal layout moves
        // WS2D -> WG X -> WG XY -> WG XYZ (Figure 3).
        let model = fig3_model();
        let mesh = MeshFactors::new(4, 4, 4);
        let layouts: Vec<Layout> = [
            FfnLayout::WeightStationary2D,
            FfnLayout::WeightGathered(GatherExtent::X),
            FfnLayout::WeightGathered(GatherExtent::Xy),
            FfnLayout::WeightGathered(GatherExtent::Xyz),
        ]
        .into_iter()
        .map(|ffn| Layout { ffn, attn: AttnSharding::Head, mesh })
        .collect();
        let argmin = |bl: f64| {
            (0..layouts.len())
                .min_by(|&a, &b| {
                    layouts[a]
                        .layer_comm_elements(&model, bl)
                        .partial_cmp(&layouts[b].layer_comm_elements(&model, bl))
                        .unwrap()
                })
                .unwrap()
        };
        let winners: Vec<usize> =
            [2e3, 3e4, 3e5, 8e6].iter().map(|&bl| argmin(bl)).collect();
        assert_eq!(winners, vec![0, 1, 2, 3], "crossover order should be WS2D, X, XY, XYZ");
    }

    #[test]
    fn ws1d_volume_constant_in_chip_count() {
        let model = fig3_model();
        let bl = 1024.0;
        let v = |n: usize| {
            Layout {
                ffn: FfnLayout::WeightStationary1D,
                attn: AttnSharding::Head,
                mesh: Layout::ws1d_mesh(n),
            }
            .layer_comm_elements(&model, bl)
        };
        assert_eq!(v(8), v(256));
    }

    #[test]
    fn ws2d_volume_shrinks_with_chip_count() {
        let model = fig3_model();
        let bl = 1024.0;
        let v = |n: usize| {
            Layout {
                ffn: FfnLayout::WeightStationary2D,
                attn: AttnSharding::Head,
                mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
            }
            .layer_comm_elements(&model, bl)
        };
        // Doubling chips 4x should halve per-chip activation volume.
        let ratio = v(16) / v(256);
        assert!((ratio - 4.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn serial_block_doubles_ffn_axis_comm_only() {
        // Section 3.4: the parallel formulation halves communication over
        // the d_ff/n_heads axis; the d_model-axis pieces are unaffected.
        let mut model = fig3_model();
        let mesh = MeshFactors::new(4, 4, 4);
        let layout = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Head, mesh };
        let parallel = layout.layer_comm_elements(&model, 512.0);
        model.block = BlockKind::Serial;
        let serial = layout.layer_comm_elements(&model, 512.0);
        assert!(serial > parallel);
        assert!(serial < 2.0 * parallel);
        // For 1D weight-stationary (only one aggregation axis), serial
        // exactly doubles the volume.
        let l1 = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: Layout::ws1d_mesh(64),
        };
        let mut par = fig3_model();
        let v_par = l1.layer_comm_elements(&par, 512.0);
        par.block = BlockKind::Serial;
        assert_eq!(l1.layer_comm_elements(&par, 512.0), 2.0 * v_par);
    }

    #[test]
    fn batch_sharded_attention_adds_small_all_to_alls() {
        let model = ModelConfig::palm_540b_padded();
        let mesh = Layout::ws2d_mesh(64, model.d_model, model.d_ff);
        let head = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Head, mesh };
        let batch = Layout { ffn: FfnLayout::WeightStationary2D, attn: AttnSharding::Batch, mesh };
        let bl = 512.0;
        let extra = batch.layer_comm_elements(&model, bl) - head.layer_comm_elements(&model, bl);
        assert!(extra > 0.0);
        // The all-to-alls are on per-token tensors: tiny relative to the
        // activation collectives ("very profitable", Section 3.3).
        assert!(extra < 0.05 * head.layer_comm_elements(&model, bl));
        let a2a: Vec<_> = batch
            .layer_comm(&model, bl)
            .into_iter()
            .filter(|p| p.kind == PieceKind::AllToAll)
            .collect();
        assert_eq!(a2a.len(), 2);
    }

    #[test]
    fn xyz_gathered_has_no_activation_pieces() {
        let model = fig3_model();
        let mesh = MeshFactors::new(4, 4, 4);
        let layout = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xyz),
            attn: AttnSharding::Head,
            mesh,
        };
        let pieces = layout.layer_comm(&model, 1e6);
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].is_weights);
    }

    #[test]
    fn sharding_specs_match_paper_notation() {
        let model = ModelConfig::palm_62b();
        let l2 = Layout::ws2d(&model, 64);
        assert_eq!(l2.weight_spec().to_string(), "E_xF_yz");
        assert_eq!(l2.activation_spec().to_string(), "BLE_xyz");
        let l1 = Layout {
            ffn: FfnLayout::WeightStationary1D,
            attn: AttnSharding::Head,
            mesh: Layout::ws1d_mesh(64),
        };
        assert_eq!(l1.weight_spec().to_string(), "EF_xyz");
        let wg = Layout {
            ffn: FfnLayout::WeightGathered(GatherExtent::Xy),
            attn: AttnSharding::Batch,
            mesh: MeshFactors::new(4, 4, 4),
        };
        // Weights stored as in 2D WS; activations B_xy L E_z (Figure A.2).
        assert_eq!(wg.weight_spec().to_string(), "E_xF_yz");
        assert_eq!(wg.activation_spec().to_string(), "B_xyLE_z");
    }

    #[test]
    fn layout_names() {
        assert_eq!(FfnLayout::WeightStationary2D.name(), "WS 2D");
        assert_eq!(FfnLayout::WeightGathered(GatherExtent::Xyz).name(), "WG XYZ");
        assert_eq!(AttnSharding::Batch.name(), "Batch");
        let l = Layout::ws2d(&ModelConfig::palm_62b(), 16);
        assert!(l.describe().contains("WS 2D"));
    }

    #[test]
    fn ws2d_bound_is_8ble_over_sqrt_n_for_4x() {
        // F = 4E: bound = 8·BL·E/√n (Section 3.2.2).
        let (e, n, bl) = (16384usize, 64usize, 1000.0);
        let bound = ws2d_comm_elements_bound(e, 4 * e, n, bl);
        let expect = 8.0 * bl * e as f64 / (n as f64).sqrt();
        assert!((bound - expect).abs() / expect < 1e-12);
        // The realized mesh (rounded to divisors) is never below the bound.
        let model = fig3_model();
        let layout = Layout {
            ffn: FfnLayout::WeightStationary2D,
            attn: AttnSharding::Head,
            mesh: Layout::ws2d_mesh(n, model.d_model, model.d_ff),
        };
        let realized = layout.layer_comm_elements(&model, bl);
        let model_bound =
            ws2d_comm_elements_bound(model.d_model, model.d_ff, n, bl);
        assert!(realized >= model_bound * 0.999, "{realized} vs bound {model_bound}");
        assert!(realized <= model_bound * 1.3, "rounding slack too large");
    }

    #[test]
    fn optimal_gather_chips_near_enumeration() {
        // The closed-form N* is a continuous optimum; snapping it to the
        // discrete extent grid must land within a small factor of the
        // brute-force best volume (they may differ in label right at a
        // crossover, where the two volumes are nearly equal anyway).
        let model = fig3_model();
        let mesh = MeshFactors::new(4, 4, 4);
        let vol = |ext: GatherExtent, bl: f64| {
            Layout { ffn: FfnLayout::WeightGathered(ext), attn: AttnSharding::Head, mesh }
                .layer_comm_elements(&model, bl)
        };
        for bl in [1e4f64, 1e5, 1e6, 1e7] {
            let best_by_enum = GatherExtent::ALL
                .into_iter()
                .map(|e| vol(e, bl))
                .fold(f64::INFINITY, f64::min);
            let chosen = best_gather_extent(mesh, bl, model.d_ff);
            let achieved = vol(chosen, bl);
            assert!(
                achieved <= 1.35 * best_by_enum,
                "batch {bl}: formula pick {chosen:?} at {achieved:.3e} vs best {best_by_enum:.3e}"
            );
        }
        // Far from any crossover, labels agree exactly.
        assert_eq!(best_gather_extent(mesh, 1e3, model.d_ff), GatherExtent::X);
        assert_eq!(best_gather_extent(mesh, 1e8, model.d_ff), GatherExtent::Xyz);
    }

    #[test]
    fn wg_bound_scales_with_sqrt_batch() {
        // T ∝ √(BL): quadrupling the batch doubles the bound (Section 3.2.3).
        let b1 = wg_comm_elements_bound(16384, 65536, 64, 1e6);
        let b4 = wg_comm_elements_bound(16384, 65536, 64, 4e6);
        assert!((b4 / b1 - 2.0).abs() < 0.01, "ratio {}", b4 / b1);
    }

    proptest! {
        #[test]
        fn prop_ws2d_mesh_divides(n_pow in 0u32..9) {
            let n = 1usize << n_pow;
            let mesh = Layout::ws2d_mesh(n, 8192, 32768);
            prop_assert_eq!(mesh.n_chips(), n);
        }

        #[test]
        fn prop_comm_monotone_in_tokens(bl1 in 1.0f64..1e5, extra in 1.0f64..1e5) {
            let model = fig3_model();
            let mesh = MeshFactors::new(4, 4, 4);
            for ffn in [FfnLayout::WeightStationary1D, FfnLayout::WeightStationary2D,
                        FfnLayout::WeightGathered(GatherExtent::Xy)] {
                let layout = Layout { ffn, attn: AttnSharding::Head, mesh };
                prop_assert!(
                    layout.layer_comm_elements(&model, bl1 + extra)
                        >= layout.layer_comm_elements(&model, bl1)
                );
            }
        }
    }
}
