//! A machine: a chip specification plus a torus slice.

use esti_hal::ChipSpec;
use esti_topology::TorusShape;

/// A slice of identical accelerator chips on a 3D torus — the hardware a
/// partitioning is laid out on.
///
/// # Examples
///
/// ```
/// use esti_core::Machine;
///
/// let m = Machine::tpu_v4_slice(64).unwrap();
/// assert_eq!(m.n_chips(), 64);
/// assert_eq!(m.torus.to_string(), "4x4x4");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Per-chip specification.
    pub chip: ChipSpec,
    /// Slice shape.
    pub torus: TorusShape,
}

impl Machine {
    /// A TPU v4 slice from the catalog, or `None` for chip counts without a
    /// catalog shape.
    #[must_use]
    pub fn tpu_v4_slice(n_chips: usize) -> Option<Self> {
        Some(Machine {
            chip: ChipSpec::tpu_v4(),
            torus: TorusShape::for_chip_count(n_chips)?,
        })
    }

    /// Number of chips in the slice.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.torus.chip_count()
    }

    /// Aggregate peak FLOP/s of the slice.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.chip.peak_flops * self.n_chips() as f64
    }

    /// Aggregate HBM capacity of the slice in bytes.
    #[must_use]
    pub fn total_hbm(&self) -> f64 {
        self.chip.hbm_capacity * self.n_chips() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_construction() {
        let m = Machine::tpu_v4_slice(256).unwrap();
        assert_eq!(m.n_chips(), 256);
        assert!(Machine::tpu_v4_slice(100).is_none());
    }

    #[test]
    fn aggregates() {
        let m = Machine::tpu_v4_slice(64).unwrap();
        assert_eq!(m.peak_flops(), 64.0 * 275e12);
        assert_eq!(m.total_hbm(), 64.0 * 32.0 * (1u64 << 30) as f64);
    }
}
